//! The sharded session runtime: many chains and sessions multiplexed over a
//! **fixed** pool of workers.
//!
//! The thread-per-filter [`ThreadedChain`](crate::ThreadedChain) is the
//! faithful port of the paper's architecture, but it spends one OS thread
//! per filter and one more per fanout session — at hundreds of concurrent
//! sessions the thread count, stack memory, and context-switch load topple
//! the proxy long before the hardware does.  This module is the scalable
//! alternative, shaped like the worker-multiplexed stage executors of
//! streaming-pipe systems: a [`Runtime`] owns `shards` worker threads, each
//! with its own run queue of **chain tasks**, and every
//! [`PooledChain`]/[`PooledSession`] is a set of such tasks instead of a
//! set of threads.
//!
//! ```text
//!                 ┌─ shard 0: [task][task][task…]  ◀─ steal ─┐
//!   N sessions ──▶┤  shard 1: [task][task…]                  ├─ workers
//!   (tasks)       └─ shard …: [task…]             ◀─ steal ──┘
//!
//!   chain task:  inbox ─try_recv_up_to(batch)─▶ FilterChain::process_batch
//!                  ─▶ pending_out ─try_send_batch─▶ outbox
//! ```
//!
//! A chain task drains up to `batch_size` packets from its inbox pipe,
//! pushes them through its (synchronous, re-entrant) `FilterChain`, and
//! forwards the results to its outbox with
//! [`try_send_batch`](rapidware_streams::DetachableSender::try_send_batch).
//! When the
//! downstream pipe is full the task parks — **without** holding a worker —
//! until the pipe's space watcher fires; when its inbox is empty it parks
//! until the data watcher fires.  Workers steal queued tasks from sibling
//! shards, so a skewed session population cannot idle half the pool.
//!
//! Live reconfiguration needs no pipe splicing here: the filters live in a
//! mutex-guarded `FilterChain`, so insert/remove serialise with batch
//! processing and take effect exactly between two batches.  The
//! control-marker quiescence protocol used by the scenario engine works
//! unchanged: markers ride the same FIFO path as data.
//!
//! ```
//! use rapidware_packet::{Packet, PacketKind, SeqNo, StreamId};
//! use rapidware_proxy::runtime::{Runtime, RuntimeConfig};
//!
//! # fn main() -> Result<(), rapidware_proxy::ProxyError> {
//! let runtime = Runtime::start(RuntimeConfig::new(4, 16));
//! let chain = runtime.add_chain("audio");
//! let input = chain.input();
//! let output = chain.output();
//! input.send(Packet::new(StreamId::new(1), SeqNo::new(0), PacketKind::AudioData, vec![1, 2]))
//!     .expect("pooled chain accepts packets");
//! assert_eq!(output.recv().expect("forwarded").seq().value(), 0);
//! chain.shutdown()?;
//! runtime.shutdown()?;
//! # Ok(())
//! # }
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::net::UdpSocket;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use rapidware_filters::{ChainSpans, FecDecoderStats, Filter, FilterChain};
use rapidware_telemetry::{now_ns, Histogram, Registry};
use rapidware_packet::Packet;
use rapidware_streams::{pipe, DetachableReceiver, DetachableSender, PipeWatcher, TryRecvError};

use crate::error::ProxyError;
use crate::registry::{FilterRegistry, FilterSpec};
use crate::session::{build_lane_filter, LaneStatus, SessionStatus};
use crate::threaded::ChainStats;

/// How long a graceful [`PooledChain::shutdown`] waits for the chain's task
/// to finish before reporting it leaked.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(10);

/// Configuration of a [`Runtime`]: how many workers to run and how many
/// packets a chain task drains from its inbox per scheduling step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Number of shards — each shard owns one worker thread and one run
    /// queue.  The pool size is fixed for the runtime's lifetime.
    pub shards: usize,
    /// Maximum packets a chain task drains (and processes as one
    /// `process_batch` call) per step.
    pub batch_size: usize,
    /// Buffer capacity, in packets, of the inbox and outbox pipes of chains
    /// created through this runtime.
    pub pipe_capacity: usize,
}

impl RuntimeConfig {
    /// A configuration with `shards` workers and `batch_size`-packet steps,
    /// using the default pipe capacity.
    ///
    /// Zero values are clamped to one.
    pub fn new(shards: usize, batch_size: usize) -> Self {
        Self {
            shards: shards.max(1),
            batch_size: batch_size.max(1),
            pipe_capacity: 128,
        }
    }

    /// Overrides the pipe capacity of chains created through the runtime.
    #[must_use]
    pub fn with_pipe_capacity(mut self, capacity: usize) -> Self {
        self.pipe_capacity = capacity.max(1);
        self
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self::new(4, 32)
    }
}

/// A snapshot of one shard's run queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStatus {
    /// Tasks currently waiting in this shard's run queue.
    pub queued: usize,
    /// Task steps this shard's queue has handed to workers so far.
    pub executed: u64,
}

/// A snapshot of a whole [`Runtime`], reported through
/// [`ProxyStatus`](crate::ProxyStatus) when the proxy runs in pooled mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeStatus {
    /// Number of worker threads (== number of shards).
    pub workers: usize,
    /// Per-shard queue depths and execution counters.
    pub shards: Vec<ShardStatus>,
    /// Tasks registered with the runtime that have not yet completed.
    pub live_tasks: usize,
    /// Tasks a worker executed from a shard other than its own.
    pub steals: u64,
    /// Task steps workers have actually run (a step is one `poll` of a
    /// chain, fanout, or socket task).
    pub polls: u64,
}

impl rapidware_telemetry::StatSource for RuntimeStatus {
    fn snapshot(&self) -> Vec<rapidware_telemetry::Metric> {
        use rapidware_telemetry::Metric;
        let queued: usize = self.shards.iter().map(|shard| shard.queued).sum();
        let executed: u64 = self.shards.iter().map(|shard| shard.executed).sum();
        vec![
            Metric::new("workers", self.workers as u64),
            Metric::new("live_tasks", self.live_tasks as u64),
            Metric::new("queued", queued as u64),
            Metric::new("executed", executed),
            Metric::new("steals", self.steals),
            Metric::new("polls", self.polls),
        ]
    }
}

/// The pool's own profiling instruments, installed by
/// [`Runtime::enable_telemetry`].  Everything here is a registry histogram;
/// the hot path holds pre-resolved `Arc` handles and records with relaxed
/// atomics — no locks, no allocation.
struct RuntimeTelemetry {
    /// Wall time of each task step (one chain/fanout/socket poll).
    poll_ns: Arc<Histogram>,
    /// Delay between a task entering a run queue and a worker picking its
    /// step up — the scheduling latency the paper's adaptation loop rides
    /// on.
    queue_wait_ns: Arc<Histogram>,
    /// Wall time of each reactor pass over the socket registration table.
    scan_ns: Arc<Histogram>,
}

impl RuntimeTelemetry {
    fn new(registry: &Arc<Registry>) -> Arc<Self> {
        Arc::new(Self {
            poll_ns: registry.histogram("runtime.poll_ns"),
            queue_wait_ns: registry.histogram("runtime.queue_wait_ns"),
            scan_ns: registry.histogram("runtime.reactor.scan_ns"),
        })
    }
}

// ---------------------------------------------------------------------------
// Task scheduling.
// ---------------------------------------------------------------------------

/// What a task step reports back to the worker that ran it.
enum StepOutcome {
    /// The task made progress and may have more work: requeue it.
    Progress,
    /// The task cannot progress until a watcher fires: park it.
    Idle,
    /// The task is finished and must never be stepped again.
    Done,
}

/// The work a task performs when stepped.  `step` must never block: it uses
/// only the non-blocking pipe operations and returns `Idle` when it cannot
/// progress.
trait TaskWork: Send + Sync {
    fn step(&self) -> StepOutcome;
}

/// Task scheduling states (the classic notify-while-running machine: a wake
/// that arrives during a step re-queues the task after the step, so no
/// notification is ever lost).
const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const RUNNING_NOTIFIED: u8 = 3;
const DONE: u8 = 4;

struct Task {
    /// Scheduling state (`IDLE`/`QUEUED`/`RUNNING`/`RUNNING_NOTIFIED`/`DONE`).
    state: AtomicU8,
    /// Home shard this task is enqueued to when woken.
    shard: usize,
    pool: Weak<PoolShared>,
    /// When this task last entered a run queue (`now_ns`; 0 = unstamped).
    /// Only written while pool telemetry is enabled; consumed (and reset)
    /// by the worker that picks the task up, yielding queue-wait latency.
    enqueued_ns: AtomicU64,
    work: Box<dyn TaskWork>,
    /// Completion latch `PooledChain::shutdown` waits on.
    done: Mutex<bool>,
    done_cv: Condvar,
}

impl Task {
    /// Transitions the task towards `QUEUED` and enqueues it if it was
    /// idle.  Safe to call from any thread, any number of times.
    fn schedule(self: &Arc<Self>) {
        loop {
            match self.state.load(Ordering::SeqCst) {
                IDLE => {
                    if self
                        .state
                        .compare_exchange(IDLE, QUEUED, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        if let Some(pool) = self.pool.upgrade() {
                            pool.enqueue(Arc::clone(self));
                        }
                        return;
                    }
                }
                RUNNING => {
                    if self
                        .state
                        .compare_exchange(
                            RUNNING,
                            RUNNING_NOTIFIED,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        )
                        .is_ok()
                    {
                        return;
                    }
                }
                // Already queued, already notified, or finished.
                _ => return,
            }
        }
    }

    fn finish(&self) {
        self.state.store(DONE, Ordering::SeqCst);
        if let Some(pool) = self.pool.upgrade() {
            pool.live_tasks.fetch_sub(1, Ordering::SeqCst);
        }
        let mut done = self.done.lock();
        *done = true;
        self.done_cv.notify_all();
    }

    fn is_done(&self) -> bool {
        *self.done.lock()
    }

    /// `true` while the pool that would run this task still has workers.
    fn pool_running(&self) -> bool {
        self.pool
            .upgrade()
            .is_some_and(|pool| !pool.shutdown.load(Ordering::SeqCst))
    }

    /// Waits (bounded) for the task to finish.
    fn wait_done(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut done = self.done.lock();
        while !*done {
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            self.done_cv.wait_for(&mut done, deadline - now);
        }
        true
    }
}

impl fmt::Debug for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Task")
            .field("shard", &self.shard)
            .field("state", &self.state.load(Ordering::SeqCst))
            .finish()
    }
}

/// A [`PipeWatcher`] that wakes a task.  Holds the task weakly so the pipes
/// of a dropped chain cannot keep its task alive.
struct TaskWaker {
    task: Weak<Task>,
}

impl PipeWatcher for TaskWaker {
    fn notify(&self) {
        if let Some(task) = self.task.upgrade() {
            task.schedule();
        }
    }
}

struct ShardQueue {
    queue: Mutex<VecDeque<Arc<Task>>>,
    executed: AtomicU64,
}

struct PoolShared {
    shards: Vec<ShardQueue>,
    /// Total tasks currently sitting in run queues (the workers' sleep
    /// condition; checked under the `sleepers` lock so a concurrent enqueue
    /// can never slip between "saw zero" and "went to sleep").
    queued: AtomicUsize,
    sleepers: Mutex<usize>,
    wake: Condvar,
    shutdown: AtomicBool,
    live_tasks: AtomicUsize,
    next_shard: AtomicUsize,
    steals: AtomicU64,
    /// Task steps workers have run (every poll, across all shards).
    polls: AtomicU64,
    /// Profiling instruments; empty until [`Runtime::enable_telemetry`].
    telemetry: OnceLock<Arc<RuntimeTelemetry>>,
    #[cfg(any(test, feature = "chaos"))]
    chaos: ChaosState,
}

/// Test-only fault injection for the worker pool (compiled in only for the
/// proxy crate's own tests or under the `chaos` cargo feature).
///
/// The single fault on offer is a **shard stall**: the targeted shard's
/// worker sleeps for a fixed duration before every task step it executes,
/// simulating a worker wedged on a slow syscall or a noisy neighbour.  The
/// stalled shard keeps its run queue, so the fault specifically exercises
/// the pool's work stealing: sibling workers must pick the queue up or the
/// whole session wedges.  Conservation invariants must hold regardless.
#[cfg(any(test, feature = "chaos"))]
#[derive(Debug)]
struct ChaosState {
    /// Shard whose worker is stalled (`usize::MAX` = none).
    stall_shard: AtomicUsize,
    /// Stall duration before each step, in microseconds.
    stall_micros: AtomicU64,
    /// Stall pauses workers have actually served.
    stalls_served: AtomicU64,
}

#[cfg(any(test, feature = "chaos"))]
impl Default for ChaosState {
    fn default() -> Self {
        Self {
            stall_shard: AtomicUsize::new(usize::MAX),
            stall_micros: AtomicU64::new(0),
            stalls_served: AtomicU64::new(0),
        }
    }
}

#[cfg(any(test, feature = "chaos"))]
impl ChaosState {
    fn maybe_stall(&self, home: usize) {
        if self.stall_shard.load(Ordering::Relaxed) != home {
            return;
        }
        let micros = self.stall_micros.load(Ordering::Relaxed);
        if micros == 0 {
            return;
        }
        self.stalls_served.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(Duration::from_micros(micros));
    }
}

impl PoolShared {
    fn enqueue(&self, task: Arc<Task>) {
        if self.telemetry.get().is_some() {
            task.enqueued_ns.store(now_ns(), Ordering::Relaxed);
        }
        let shard = task.shard;
        self.shards[shard].queue.lock().push_back(task);
        self.queued.fetch_add(1, Ordering::SeqCst);
        let sleepers = self.sleepers.lock();
        if *sleepers > 0 {
            self.wake.notify_one();
        }
    }

    /// Pops a task for worker `home`: own queue front first, then steal
    /// from the back of sibling queues.
    fn pop(&self, home: usize) -> Option<Arc<Task>> {
        if let Some(task) = self.shards[home].queue.lock().pop_front() {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            self.shards[home].executed.fetch_add(1, Ordering::Relaxed);
            return Some(task);
        }
        let count = self.shards.len();
        for offset in 1..count {
            let victim = (home + offset) % count;
            if let Some(task) = self.shards[victim].queue.lock().pop_back() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                self.shards[victim].executed.fetch_add(1, Ordering::Relaxed);
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(task);
            }
        }
        None
    }
}

/// Runs one task step and applies the resulting state transition.
fn run_task(task: &Arc<Task>, pool: &PoolShared) {
    if task
        .state
        .compare_exchange(QUEUED, RUNNING, Ordering::SeqCst, Ordering::SeqCst)
        .is_err()
    {
        // Only a finished task can be popped in a non-QUEUED state (its
        // final wake raced its completion); there is nothing left to run.
        return;
    }
    pool.polls.fetch_add(1, Ordering::Relaxed);
    let telemetry = pool.telemetry.get();
    let step_start = telemetry.map(|telemetry| {
        let now = now_ns();
        let enqueued = task.enqueued_ns.swap(0, Ordering::Relaxed);
        if enqueued != 0 {
            telemetry.queue_wait_ns.record(now.saturating_sub(enqueued));
        }
        now
    });
    let outcome = task.work.step();
    if let (Some(telemetry), Some(start)) = (telemetry, step_start) {
        telemetry.poll_ns.record(now_ns().saturating_sub(start));
    }
    match outcome {
        StepOutcome::Done => task.finish(),
        StepOutcome::Progress => {
            task.state.store(QUEUED, Ordering::SeqCst);
            pool.enqueue(Arc::clone(task));
        }
        StepOutcome::Idle => {
            if task
                .state
                .compare_exchange(RUNNING, IDLE, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                // A watcher fired while the step ran: the condition it
                // signalled may be the one the step just failed on, so the
                // task goes straight back to the queue.
                task.state.store(QUEUED, Ordering::SeqCst);
                pool.enqueue(Arc::clone(task));
            }
        }
    }
}

fn worker_loop(pool: &Arc<PoolShared>, home: usize) {
    loop {
        if pool.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if let Some(task) = pool.pop(home) {
            #[cfg(any(test, feature = "chaos"))]
            pool.chaos.maybe_stall(home);
            run_task(&task, pool);
            continue;
        }
        let mut sleepers = pool.sleepers.lock();
        if pool.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if pool.queued.load(Ordering::SeqCst) > 0 {
            continue;
        }
        *sleepers += 1;
        pool.wake.wait(&mut sleepers);
        *sleepers -= 1;
    }
}

// ---------------------------------------------------------------------------
// The runtime.
// ---------------------------------------------------------------------------

/// A fixed-size sharded worker pool hosting many [`PooledChain`]s and
/// [`PooledSession`]s cooperatively.
///
/// See the [module documentation](self) for the execution model.  Shut
/// chains and sessions down **before** the runtime: a task can only finish
/// while workers are running.
pub struct Runtime {
    shared: Arc<PoolShared>,
    config: RuntimeConfig,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// The socket readiness loop, started lazily by the first
    /// [`drive_socket`](Self::drive_socket) call so socket-free runtimes
    /// spend no extra thread.
    reactor: Mutex<Option<ReactorHandle>>,
}

impl fmt::Debug for Runtime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runtime")
            .field("shards", &self.config.shards)
            .field("batch_size", &self.config.batch_size)
            .field("live_tasks", &self.live_tasks())
            .finish()
    }
}

impl Runtime {
    /// Starts the worker pool described by `config`.
    pub fn start(config: RuntimeConfig) -> Arc<Self> {
        let shared = Arc::new(PoolShared {
            shards: (0..config.shards)
                .map(|_| ShardQueue {
                    queue: Mutex::new(VecDeque::new()),
                    executed: AtomicU64::new(0),
                })
                .collect(),
            queued: AtomicUsize::new(0),
            sleepers: Mutex::new(0),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            live_tasks: AtomicUsize::new(0),
            next_shard: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
            polls: AtomicU64::new(0),
            telemetry: OnceLock::new(),
            #[cfg(any(test, feature = "chaos"))]
            chaos: ChaosState::default(),
        });
        let workers = (0..config.shards)
            .map(|home| {
                let pool = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rapidware-shard-{home}"))
                    .spawn(move || worker_loop(&pool, home))
                    .expect("spawning a shard worker thread never fails")
            })
            .collect();
        Arc::new(Self {
            shared,
            config,
            workers: Mutex::new(workers),
            reactor: Mutex::new(None),
        })
    }

    /// The configuration this runtime was started with.
    pub fn config(&self) -> RuntimeConfig {
        self.config
    }

    /// Tasks registered with this runtime that have not completed yet.
    /// Zero after every chain and session has shut down cleanly.
    pub fn live_tasks(&self) -> usize {
        self.shared.live_tasks.load(Ordering::SeqCst)
    }

    /// A snapshot of the pool: per-shard queue depths, live tasks, steals,
    /// and total task polls.
    ///
    /// The queue depths describe **one coherent instant**: every shard's
    /// queue lock is held at once while the depths are read, so a task
    /// migrating between queues (a steal, or a re-enqueue) is never counted
    /// twice or missed.  The sweep locks shards in index order and every
    /// other locker holds at most one queue lock at a time, so it cannot
    /// deadlock.
    pub fn status(&self) -> RuntimeStatus {
        let guards: Vec<_> = self
            .shared
            .shards
            .iter()
            .map(|shard| shard.queue.lock())
            .collect();
        let shards = guards
            .iter()
            .zip(self.shared.shards.iter())
            .map(|(queue, shard)| ShardStatus {
                queued: queue.len(),
                executed: shard.executed.load(Ordering::Relaxed),
            })
            .collect();
        drop(guards);
        RuntimeStatus {
            workers: self.config.shards,
            shards,
            live_tasks: self.live_tasks(),
            steals: self.shared.steals.load(Ordering::Relaxed),
            polls: self.shared.polls.load(Ordering::Relaxed),
        }
    }

    /// Installs the pool's profiling instruments into `registry`: task poll
    /// durations (`runtime.poll_ns`), run-queue wait (`runtime.queue_wait_ns`),
    /// and reactor scan latency (`runtime.reactor.scan_ns`).  Until this is
    /// called the hot path pays nothing beyond one relaxed poll counter.
    ///
    /// Idempotent: the first registry wins; later calls are no-ops.
    pub fn enable_telemetry(&self, registry: &Arc<Registry>) {
        let telemetry = Arc::clone(
            self.shared
                .telemetry
                .get_or_init(|| RuntimeTelemetry::new(registry)),
        );
        // The reactor may already be running (drive_socket installs the
        // instruments for the reverse ordering).
        if let Some(reactor) = self.reactor.lock().as_ref() {
            let _ = reactor.shared.telemetry.set(telemetry);
        }
    }

    /// Registers a work item as a task on the next shard (round robin) and
    /// gives it an initial kick.
    fn register(self: &Arc<Self>, work: Box<dyn TaskWork>) -> Arc<Task> {
        let shard = self.shared.next_shard.fetch_add(1, Ordering::Relaxed) % self.config.shards;
        let task = Arc::new(Task {
            state: AtomicU8::new(IDLE),
            shard,
            pool: Arc::downgrade(&self.shared),
            enqueued_ns: AtomicU64::new(0),
            work,
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        self.shared.live_tasks.fetch_add(1, Ordering::SeqCst);
        task.schedule();
        task
    }

    /// Creates a chain hosted on this pool (the pooled analogue of
    /// [`ThreadedChain::new`](crate::ThreadedChain::new)): a null proxy
    /// with an input and an output endpoint, reconfigurable while packets
    /// flow.
    pub fn add_chain(self: &Arc<Self>, name: impl Into<String>) -> PooledChain {
        self.add_chain_with(name, self.config.pipe_capacity, self.config.batch_size)
    }

    /// Creates a pooled chain with explicit pipe capacity and batch size.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `batch_size` is zero.
    pub fn add_chain_with(
        self: &Arc<Self>,
        name: impl Into<String>,
        capacity: usize,
        batch_size: usize,
    ) -> PooledChain {
        assert!(batch_size > 0, "batch size must be non-zero");
        let (in_tx, in_rx) = pipe::<Packet>(capacity);
        let (out_tx, out_rx) = pipe::<Packet>(capacity);
        let work = Arc::new(ChainWork {
            inner: Mutex::new(ChainWorkInner {
                chain: FilterChain::new(),
                pending_out: Vec::new(),
                draining: false,
            }),
            in_rx: in_rx.clone(),
            out_tx: out_tx.clone(),
            batch_size,
            errors: AtomicU64::new(0),
            splices: AtomicU64::new(0),
        });
        let task = self.register(Box::new(Arc::clone(&work)));
        // The task wakes when its inbox has data, when its outbox frees
        // space, and when its outbox sender becomes usable again after a
        // pause/reconnect splice.
        in_rx.set_data_watcher(Arc::new(TaskWaker {
            task: Arc::downgrade(&task),
        }));
        out_rx.set_space_watcher(Arc::new(TaskWaker {
            task: Arc::downgrade(&task),
        }));
        out_tx.set_ready_watcher(Arc::new(TaskWaker {
            task: Arc::downgrade(&task),
        }));
        PooledChain {
            name: name.into(),
            runtime: Arc::clone(self),
            work,
            task,
            input: in_tx,
            input_rx: in_rx,
            output: out_rx,
        }
    }

    /// Creates a fanout session hosted on this pool (the pooled analogue of
    /// [`Session`](crate::Session)): one input, a shared head chain task, a
    /// fanout task, and live-addable receiver lanes, each a chain task of
    /// its own.
    pub fn add_session(self: &Arc<Self>, name: impl Into<String>) -> PooledSession {
        self.add_session_with(
            name,
            FilterRegistry::with_builtins(),
            self.config.pipe_capacity,
            self.config.batch_size,
        )
    }

    /// Creates a pooled session with an explicit registry, pipe capacity,
    /// and batch size.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `batch_size` is zero.
    pub fn add_session_with(
        self: &Arc<Self>,
        name: impl Into<String>,
        registry: FilterRegistry,
        capacity: usize,
        batch_size: usize,
    ) -> PooledSession {
        let name = name.into();
        let head = self.add_chain_with(format!("{name}/head"), capacity, batch_size);
        let head_out = head.output();
        let fanout_work = Arc::new(FanoutWork {
            head_rx: head_out.clone(),
            inner: Mutex::new(FanoutInner {
                lanes: Vec::new(),
                eof: false,
            }),
            batch_size,
        });
        let fanout_task = self.register(Box::new(Arc::clone(&fanout_work)));
        head_out.set_data_watcher(Arc::new(TaskWaker {
            task: Arc::downgrade(&fanout_task),
        }));
        PooledSession {
            name,
            registry,
            runtime: Arc::clone(self),
            head,
            fanout_work,
            fanout_task,
            lanes: Mutex::new(PooledLanes {
                live: Vec::new(),
                retired: Vec::new(),
                closed: false,
            }),
            capacity,
            batch_size,
            telemetry: Mutex::new(None),
        }
    }

    /// Chaos hook: stalls the worker of `shard` for `duration` before every
    /// task step it executes, until [`chaos_clear`](Self::chaos_clear).
    ///
    /// Only compiled for tests or under the `chaos` feature.  Out-of-range
    /// shards simply never match, which disables the stall.
    #[cfg(any(test, feature = "chaos"))]
    pub fn chaos_stall_shard(&self, shard: usize, duration: Duration) {
        self.shared
            .chaos
            .stall_micros
            .store(duration.as_micros().min(u128::from(u64::MAX)) as u64, Ordering::SeqCst);
        self.shared.chaos.stall_shard.store(shard, Ordering::SeqCst);
    }

    /// Chaos hook: removes any stall installed with
    /// [`chaos_stall_shard`](Self::chaos_stall_shard).
    #[cfg(any(test, feature = "chaos"))]
    pub fn chaos_clear(&self) {
        self.shared.chaos.stall_shard.store(usize::MAX, Ordering::SeqCst);
        self.shared.chaos.stall_micros.store(0, Ordering::SeqCst);
    }

    /// Chaos hook: stall pauses workers have actually served so far — lets
    /// a test assert the fault it configured really fired.
    #[cfg(any(test, feature = "chaos"))]
    pub fn chaos_stalls_served(&self) -> u64 {
        self.shared.chaos.stalls_served.load(Ordering::SeqCst)
    }

    /// Registers socket-backed work as a pool task woken by the socket
    /// reactor: the readiness analogue of a chain task's `PipeWatcher`
    /// wiring, and the replacement for per-socket pump threads.
    ///
    /// The task is stepped whenever the reactor observes the registered
    /// interest on `socket` (or [`SocketDriver::kick`] / a watcher
    /// installed via [`SocketDriver::watch_source`] fires), and calls
    /// `work.service()` each step; see [`SocketWork`] for the contract.
    /// The reactor thread itself is started lazily by the first driver and
    /// is shared by every socket on this runtime — session counts scale
    /// with **zero** additional threads.
    pub fn drive_socket(
        self: &Arc<Self>,
        socket: Arc<UdpSocket>,
        interest: SocketInterest,
        work: Arc<dyn SocketWork>,
    ) -> SocketDriver {
        let stop = Arc::new(AtomicBool::new(false));
        let armed = Arc::new(AtomicBool::new(false));
        let task = self.register(Box::new(SocketTaskWork {
            work,
            stop: Arc::clone(&stop),
            armed: Arc::clone(&armed),
        }));
        let entry = ReactorEntry {
            socket,
            task: Arc::downgrade(&task),
            armed,
            readable: matches!(interest, SocketInterest::Readable),
        };
        let mut slot = self.reactor.lock();
        let handle = slot.get_or_insert_with(ReactorHandle::start);
        // A reactor started after enable_telemetry still gets the
        // instruments (enable_telemetry handles the other ordering).
        if let Some(telemetry) = self.shared.telemetry.get() {
            let _ = handle.shared.telemetry.set(Arc::clone(telemetry));
        }
        handle.register(entry);
        SocketDriver { task, stop }
    }

    /// Sockets currently registered with the reactor — zero when no
    /// [`drive_socket`](Self::drive_socket) driver is live (entries for
    /// finished drivers are pruned on the next tick).
    pub fn reactor_sockets(&self) -> usize {
        self.reactor
            .lock()
            .as_ref()
            .map_or(0, |handle| handle.shared.entries.lock().len())
    }

    /// Stops the worker pool: workers finish their current step and exit.
    ///
    /// Chains and sessions must be shut down first — a task that still has
    /// in-flight work when the pool stops can never complete, which
    /// [`live_tasks`](Self::live_tasks) will report as a leak.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::WorkerFailed`] if a worker thread panicked.
    pub fn shutdown(&self) -> Result<(), ProxyError> {
        // The reactor goes first: with the wake source gone, no new socket
        // work can be scheduled while the workers drain and exit.
        if let Some(reactor) = self.reactor.lock().take() {
            reactor.stop();
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _sleepers = self.shared.sleepers.lock();
            self.shared.wake.notify_all();
        }
        let mut failure = None;
        for (index, handle) in self.workers.lock().drain(..).enumerate() {
            if handle.join().is_err() && failure.is_none() {
                failure = Some(ProxyError::WorkerFailed(format!("shard worker {index}")));
            }
        }
        match failure {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Socket reactor.
// ---------------------------------------------------------------------------

/// The reactor's probe cadence: how long a registered socket can be
/// readable before its task is scheduled, and the retry latency after a
/// `Blocked` send.  Latency only — while a drain keeps reporting
/// [`SocketStep::Progress`], the task requeues itself through the pool and
/// the reactor is not involved at all.
const REACTOR_TICK: Duration = Duration::from_micros(250);

/// Which readiness events should wake a [`drive_socket`] task.
///
/// [`drive_socket`]: Runtime::drive_socket
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketInterest {
    /// Wake whenever the socket holds readable datagrams (a receive-side
    /// driver).
    Readable,
    /// Wake only when armed by a [`SocketStep::Blocked`] service pass (a
    /// send-side driver: new frames arrive via pipe watchers installed
    /// with [`SocketDriver::watch_source`], so readability is noise).
    Writable,
}

/// How socket-backed work left its socket after one service pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketStep {
    /// Work moved and more may be pending: step again immediately.
    Progress,
    /// Nothing to do until the socket or a watched pipe becomes ready.
    Idle,
    /// The OS refused a send (`WouldBlock`): retry after a reactor tick.
    Blocked,
}

/// Non-blocking socket work driven as a pool task — the socket analogue of
/// the (private) chain/fanout task work.  `service` must never block: it
/// drains or flushes at most one batch against a non-blocking socket and
/// reports how it left things.
pub trait SocketWork: Send + Sync {
    /// Runs one bounded drain/flush pass.
    fn service(&self) -> SocketStep;
}

/// Adapts a [`SocketWork`] to the pool's task state machine.  `stop` is
/// the driver's abort flag: the task runs one final service pass (a
/// best-effort flush) and finishes.
struct SocketTaskWork {
    work: Arc<dyn SocketWork>,
    stop: Arc<AtomicBool>,
    /// Set on `Blocked` so the reactor schedules the task on its next tick
    /// even without socket readability (write-retry arming).
    armed: Arc<AtomicBool>,
}

impl TaskWork for SocketTaskWork {
    fn step(&self) -> StepOutcome {
        if self.stop.load(Ordering::SeqCst) {
            let _ = self.work.service();
            return StepOutcome::Done;
        }
        match self.work.service() {
            SocketStep::Progress => StepOutcome::Progress,
            SocketStep::Idle => StepOutcome::Idle,
            SocketStep::Blocked => {
                self.armed.store(true, Ordering::SeqCst);
                StepOutcome::Idle
            }
        }
    }
}

/// One registered socket: who to wake, and when.
struct ReactorEntry {
    socket: Arc<UdpSocket>,
    task: Weak<Task>,
    armed: Arc<AtomicBool>,
    /// Probe for readable datagrams (ingress) or only honour arms
    /// (egress).
    readable: bool,
}

struct ReactorShared {
    entries: Mutex<Vec<ReactorEntry>>,
    shutdown: AtomicBool,
    /// Profiling instruments shared with the pool; empty until telemetry
    /// is enabled on the owning runtime.
    telemetry: OnceLock<Arc<RuntimeTelemetry>>,
}

/// The running reactor: one thread for *all* registered sockets.
struct ReactorHandle {
    shared: Arc<ReactorShared>,
    /// Unpark handle, so registration and shutdown cut the current tick
    /// short instead of waiting it out.
    thread: std::thread::Thread,
    join: Option<JoinHandle<()>>,
}

impl ReactorHandle {
    fn start() -> Self {
        let shared = Arc::new(ReactorShared {
            entries: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
            telemetry: OnceLock::new(),
        });
        let loop_shared = Arc::clone(&shared);
        let join = std::thread::Builder::new()
            .name("rapidware-reactor".to_string())
            .spawn(move || reactor_loop(&loop_shared))
            .expect("spawning the reactor thread never fails");
        let thread = join.thread().clone();
        Self {
            shared,
            thread,
            join: Some(join),
        }
    }

    fn register(&self, entry: ReactorEntry) {
        self.shared.entries.lock().push(entry);
        self.thread.unpark();
    }

    fn stop(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.thread.unpark();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// The readiness loop: a level-triggered scan over the registration table.
///
/// Each tick, every live entry is probed with a non-blocking 1-byte
/// `peek_from` (`MSG_PEEK`: nothing is consumed, truncation is harmless) —
/// a readable socket schedules its task, exactly the wake a `PipeWatcher`
/// would deliver for a pipe.  Level triggering means a wake can never be
/// lost: if the task goes idle with data still queued, the next tick
/// re-schedules it.  Spurious wakes are free — the task model already
/// tolerates them.  Entries whose task finished (or was dropped) are
/// pruned in place.
fn reactor_loop(shared: &ReactorShared) {
    let mut probe = [0u8; 1];
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        {
            let telemetry = shared.telemetry.get();
            let scan_start = telemetry.map(|_| now_ns());
            let mut entries = shared.entries.lock();
            entries.retain(|entry| {
                let Some(task) = entry.task.upgrade() else {
                    return false;
                };
                if task.is_done() {
                    return false;
                }
                if entry.armed.swap(false, Ordering::SeqCst) {
                    task.schedule();
                } else if entry.readable {
                    match entry.socket.peek_from(&mut probe) {
                        Ok(_) => task.schedule(),
                        Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {}
                        // Let the driver observe and classify the error.
                        Err(_) => task.schedule(),
                    }
                }
                true
            });
            drop(entries);
            if let (Some(telemetry), Some(start)) = (telemetry, scan_start) {
                telemetry.scan_ns.record(now_ns().saturating_sub(start));
            }
        }
        std::thread::park_timeout(REACTOR_TICK);
    }
}

/// Handle to a task registered with [`Runtime::drive_socket`]: the socket
/// analogue of a [`PooledChain`]'s control surface.
pub struct SocketDriver {
    task: Arc<Task>,
    stop: Arc<AtomicBool>,
}

impl fmt::Debug for SocketDriver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SocketDriver")
            .field("task", &self.task)
            .field("stopping", &self.stop.load(Ordering::SeqCst))
            .finish()
    }
}

impl SocketDriver {
    /// Schedules the task now (e.g. after attaching a new egress lane).
    pub fn kick(&self) {
        self.task.schedule();
    }

    /// Wakes the task whenever `source` has data, hits EOF, or closes —
    /// the same `TaskWaker` wiring chain tasks get on their inboxes.  Use
    /// this on every pipe a send-side [`SocketWork`] drains.
    pub fn watch_source(&self, source: &DetachableReceiver<Packet>) {
        source.set_data_watcher(Arc::new(TaskWaker {
            task: Arc::downgrade(&self.task),
        }));
    }

    /// `true` once the task has finished (after [`shutdown`](Self::shutdown),
    /// or a service pass observed a terminal condition).
    pub fn is_done(&self) -> bool {
        self.task.is_done()
    }

    /// Stops the driver: the task runs one final service pass (best-effort
    /// flush) and finishes; the reactor prunes the socket on its next
    /// tick.  Call while the runtime's workers are still running.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::WorkerFailed`] if the task cannot complete
    /// because the pool stopped first.
    pub fn shutdown(&self) -> Result<(), ProxyError> {
        self.stop.store(true, Ordering::SeqCst);
        self.task.schedule();
        if self.task.is_done()
            || (self.task.pool_running() && self.task.wait_done(SHUTDOWN_GRACE))
        {
            Ok(())
        } else {
            Err(ProxyError::WorkerFailed(
                "socket driver task never finished".to_string(),
            ))
        }
    }
}

// ---------------------------------------------------------------------------
// Chain tasks.
// ---------------------------------------------------------------------------

struct ChainWorkInner {
    chain: FilterChain,
    /// Output the downstream pipe had no room for yet; the task's
    /// back-pressure buffer.
    pending_out: Vec<Packet>,
    /// Set once the inbox reported EOF/close and the chain was flushed:
    /// only `pending_out` remains to be forwarded.
    draining: bool,
}

struct ChainWork {
    inner: Mutex<ChainWorkInner>,
    in_rx: DetachableReceiver<Packet>,
    out_tx: DetachableSender<Packet>,
    batch_size: usize,
    errors: AtomicU64,
    splices: AtomicU64,
}

impl ChainWork {
    /// Forwards as much of `pending_out` as the outbox accepts.  Returns
    /// `true` when nothing is left to forward (a closed outbox counts: the
    /// packets are dropped, exactly as a threaded stage drops output for a
    /// departed consumer).
    fn flush_pending(&self, inner: &mut ChainWorkInner) -> bool {
        if inner.pending_out.is_empty() {
            return true;
        }
        match self.out_tx.try_send_batch(std::mem::take(&mut inner.pending_out)) {
            Ok(leftover) => {
                inner.pending_out = leftover;
                inner.pending_out.is_empty()
            }
            Err(error) => {
                // Sender or receiver closed: the downstream consumer is
                // gone, so the backlog can only be discarded — keeping its
                // allocation for the next batch.
                let mut items = error.into_inner();
                items.clear();
                inner.pending_out = items;
                true
            }
        }
    }
}

impl TaskWork for Arc<ChainWork> {
    fn step(&self) -> StepOutcome {
        let mut inner = self.inner.lock();
        // 1. Clear the back-pressure buffer first: nothing new may be
        //    processed while older output waits, or order would be lost.
        if !self.flush_pending(&mut inner) {
            return StepOutcome::Idle;
        }
        if inner.draining {
            // Everything flushed after EOF: propagate end of stream.
            self.out_tx.close();
            return StepOutcome::Done;
        }
        // 2. Drain one batch from the inbox and run it through the chain.
        match self.in_rx.try_recv_up_to(self.batch_size) {
            Ok(batch) => {
                let inner = &mut *inner;
                if inner.chain.process_batch_into(batch, &mut inner.pending_out).is_err() {
                    self.errors.fetch_add(1, Ordering::Relaxed);
                }
                if !self.flush_pending(inner) {
                    return StepOutcome::Idle;
                }
                StepOutcome::Progress
            }
            Err(TryRecvError::Empty) => StepOutcome::Idle,
            Err(TryRecvError::Eof) | Err(TryRecvError::Closed) => {
                // End of stream (or forced close): flush the chain's
                // buffered state, then drain what the flush produced.
                let inner = &mut *inner;
                match inner.chain.flush() {
                    Ok(residue) => inner.pending_out.extend(residue),
                    Err(_) => {
                        self.errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
                inner.draining = true;
                if self.flush_pending(inner) {
                    self.out_tx.close();
                    return StepOutcome::Done;
                }
                StepOutcome::Idle
            }
        }
    }
}

/// A filter chain hosted on a [`Runtime`] worker pool instead of
/// thread-per-filter.
///
/// The public surface mirrors [`ThreadedChain`](crate::ThreadedChain) —
/// `input`/`output` endpoints, live `insert`/`remove`/`move_filter`,
/// `stats`, `shutdown` — so the proxy can place a stream on either runtime
/// behind one API.  Reconfiguration takes effect between two batches and
/// never loses, duplicates, or reorders a packet: the residue flushed out
/// of a removed filter is forwarded ahead of all later traffic.
pub struct PooledChain {
    name: String,
    /// Keeps the hosting pool alive: a chain's task can only run while its
    /// workers do, so dropping every *other* handle to the runtime must
    /// not stop the pool under a live chain.
    runtime: Arc<Runtime>,
    work: Arc<ChainWork>,
    task: Arc<Task>,
    input: DetachableSender<Packet>,
    /// The task-side handle of the inbox, kept so a session can watch the
    /// inbox for space on behalf of its fanout task.
    input_rx: DetachableReceiver<Packet>,
    output: DetachableReceiver<Packet>,
}

impl fmt::Debug for PooledChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PooledChain")
            .field("name", &self.name)
            .field("filters", &self.names())
            .finish()
    }
}

impl PooledChain {
    /// The name this chain was created under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The runtime hosting this chain's task (kept alive by the chain: a
    /// pooled chain can outlive every other handle to its pool).
    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.runtime
    }

    /// A handle for pushing packets into the chain.
    pub fn input(&self) -> DetachableSender<Packet> {
        self.input.clone()
    }

    /// A handle for reading packets out of the chain.
    pub fn output(&self) -> DetachableReceiver<Packet> {
        self.output.clone()
    }

    /// Closes the chain input: once in-flight packets drain, the chain
    /// flushes and the output observes end of stream.
    pub fn close_input(&self) {
        self.input.close();
    }

    /// Names of the installed filters, in stream order.
    pub fn names(&self) -> Vec<String> {
        self.work.inner.lock().chain.names()
    }

    /// Number of installed filters.
    pub fn len(&self) -> usize {
        self.work.inner.lock().chain.len()
    }

    /// Returns `true` if no filters are installed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The per-step batch size of this chain's task.
    pub fn batch_size(&self) -> usize {
        self.work.batch_size
    }

    /// Secure-channel counters summed over the installed crypto stages
    /// (all-zero when no encrypt/decrypt filter is installed).
    pub fn secure_snapshot(&self) -> rapidware_filters::SecureChannelSnapshot {
        self.work.inner.lock().chain.secure_snapshot()
    }

    /// Attaches latency spans: every batch the chain task processes records
    /// into `spans`' instruments, and egress spans additionally record each
    /// packet's ingress-to-exit latency as it leaves the chain.
    pub fn set_spans(&self, spans: Arc<ChainSpans>) {
        self.work.inner.lock().chain.set_spans(spans);
    }

    /// Current chain statistics (same counters as a threaded chain).
    pub fn stats(&self) -> ChainStats {
        ChainStats {
            filters: self.len(),
            packets_in: self.input.stats().items(),
            packets_out: self.output.stats().items(),
            splices: self.work.splices.load(Ordering::Relaxed),
            filter_errors: self.work.errors.load(Ordering::Relaxed),
        }
    }

    /// Inserts `filter` at `position` while packets flow.  The insertion
    /// serialises with batch processing (it waits for the in-flight batch,
    /// bounded by `batch_size` packets) and affects every packet the task
    /// has not yet pulled from its inbox.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::PositionOutOfRange`] for a bad position or
    /// [`ProxyError::ChainClosed`] once the chain has finished.
    pub fn insert(&self, position: usize, filter: Box<dyn Filter>) -> Result<(), ProxyError> {
        let mut inner = self.work.inner.lock();
        if inner.draining || self.task.is_done() {
            return Err(ProxyError::ChainClosed);
        }
        inner.chain.insert(position, filter).map_err(map_chain_error)?;
        self.work.splices.fetch_add(1, Ordering::Relaxed);
        drop(inner);
        self.task.schedule();
        Ok(())
    }

    /// Appends `filter` after the last installed filter.
    ///
    /// # Errors
    ///
    /// Same as [`insert`](Self::insert).
    pub fn push_back(&self, filter: Box<dyn Filter>) -> Result<(), ProxyError> {
        let position = self.len();
        self.insert(position, filter)
    }

    /// Removes and returns the filter at `position`.  Anything the filter
    /// had buffered is flushed through the remaining downstream filters and
    /// forwarded ahead of later traffic, exactly like a threaded splice.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::PositionOutOfRange`] or
    /// [`ProxyError::ChainClosed`].
    pub fn remove(&self, position: usize) -> Result<Box<dyn Filter>, ProxyError> {
        let mut inner = self.work.inner.lock();
        if inner.draining || self.task.is_done() {
            return Err(ProxyError::ChainClosed);
        }
        let inner = &mut *inner;
        let (filter, residue) = inner.chain.remove(position).map_err(map_chain_error)?;
        inner.pending_out.extend(residue);
        self.work.splices.fetch_add(1, Ordering::Relaxed);
        self.task.schedule();
        Ok(filter)
    }

    /// Moves the filter at `from` to position `to`.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::PositionOutOfRange`] or
    /// [`ProxyError::ChainClosed`].
    pub fn move_filter(&self, from: usize, to: usize) -> Result<(), ProxyError> {
        let mut inner = self.work.inner.lock();
        if inner.draining || self.task.is_done() {
            return Err(ProxyError::ChainClosed);
        }
        inner.chain.move_filter(from, to).map_err(map_chain_error)?;
        self.work.splices.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Shuts the chain down: closes both endpoints (undrained output is
    /// discarded) and waits for the task to finish its final flush.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::WorkerFailed`] if the task did not finish
    /// within the shutdown grace period (e.g. because the runtime's workers
    /// were stopped first).
    pub fn shutdown(&self) -> Result<(), ProxyError> {
        self.input.close();
        self.output.close();
        // Both closes fire the task's watchers; all that remains is to wait
        // for the final step to observe them.
        self.task.schedule();
        if self.task.is_done()
            || (self.task.pool_running() && self.task.wait_done(SHUTDOWN_GRACE))
        {
            Ok(())
        } else {
            Err(ProxyError::WorkerFailed(format!("pooled chain {}", self.name)))
        }
    }
}

/// Egress spans for one session lane (`session.<session>.lane.<lane>`).
fn lane_spans(registry: &Arc<Registry>, session: &str, lane: &str) -> Arc<ChainSpans> {
    ChainSpans::egress(registry, format!("session.{session}.lane.{lane}"))
}

fn map_chain_error(err: rapidware_filters::FilterError) -> ProxyError {
    match err {
        rapidware_filters::FilterError::IndexOutOfRange { index, len } => {
            ProxyError::PositionOutOfRange {
                position: index,
                len,
            }
        }
        other => ProxyError::Filter(other),
    }
}

// ---------------------------------------------------------------------------
// Pooled sessions.
// ---------------------------------------------------------------------------

/// One lane slot inside the fanout task.
struct FanLaneSlot {
    name: String,
    tx: DetachableSender<Packet>,
    /// Clones of the current head batch this lane had no room for yet.
    pending: Vec<Packet>,
    dead: bool,
}

struct FanoutInner {
    lanes: Vec<FanLaneSlot>,
    eof: bool,
}

struct FanoutWork {
    head_rx: DetachableReceiver<Packet>,
    inner: Mutex<FanoutInner>,
    batch_size: usize,
}

impl FanoutWork {
    /// Flushes per-lane pendings; returns `true` when every live lane's
    /// pending buffer is empty.
    fn flush_lanes(inner: &mut FanoutInner) -> bool {
        let mut clear = true;
        for lane in inner.lanes.iter_mut() {
            if lane.dead || lane.pending.is_empty() {
                continue;
            }
            match lane.tx.try_send_batch(std::mem::take(&mut lane.pending)) {
                Ok(leftover) => {
                    lane.pending = leftover;
                    clear &= lane.pending.is_empty();
                }
                Err(_) => {
                    // The lane's chain went away: stop feeding it.
                    lane.dead = true;
                }
            }
        }
        clear
    }
}

impl TaskWork for Arc<FanoutWork> {
    fn step(&self) -> StepOutcome {
        let mut inner = self.inner.lock();
        // A lane still owed part of an earlier batch gates the head drain:
        // this is the back-pressure that stops one slow receiver's backlog
        // from growing without bound.
        if !FanoutWork::flush_lanes(&mut inner) {
            return StepOutcome::Idle;
        }
        if inner.eof {
            for lane in inner.lanes.iter() {
                lane.tx.close();
            }
            return StepOutcome::Done;
        }
        match self.head_rx.try_recv_up_to(self.batch_size) {
            Ok(batch) => {
                // Clone to all but the last live lane, reusing each lane's
                // pending allocation (flush_lanes just emptied them); move
                // the batch itself into the last.  Payloads are Arc-backed,
                // so a clone is a refcount bump.
                if let Some(last) = inner.lanes.iter().rposition(|lane| !lane.dead) {
                    for lane in inner.lanes[..last].iter_mut().filter(|lane| !lane.dead) {
                        lane.pending.clear();
                        lane.pending.extend(batch.iter().cloned());
                    }
                    inner.lanes[last].pending = batch;
                }
                if FanoutWork::flush_lanes(&mut inner) {
                    StepOutcome::Progress
                } else {
                    StepOutcome::Idle
                }
            }
            Err(TryRecvError::Empty) => StepOutcome::Idle,
            Err(TryRecvError::Eof) | Err(TryRecvError::Closed) => {
                inner.eof = true;
                for lane in inner.lanes.iter() {
                    lane.tx.close();
                }
                StepOutcome::Done
            }
        }
    }
}

/// One receiver lane of a [`PooledSession`].
struct PooledLane {
    name: String,
    chain: PooledChain,
    output: DetachableReceiver<Packet>,
    decoder_stats: Vec<Arc<FecDecoderStats>>,
}

struct PooledLanes {
    live: Vec<PooledLane>,
    /// Lanes removed while the session ran; kept so their backlogs can
    /// drain, their stats stay readable, and shutdown can finalise their
    /// tasks (zero leaked tasks even under churn).
    retired: Vec<PooledLane>,
    closed: bool,
}

/// A fanout session hosted on a [`Runtime`] worker pool: the pooled
/// analogue of [`Session`](crate::Session).
///
/// One head chain task does the shared work once per packet, a fanout task
/// clones each batch to every lane (zero-copy: payloads are `Arc`-backed),
/// and each lane is a chain task of its own — so a session costs **zero**
/// dedicated threads, and hundreds of sessions share the pool's fixed
/// workers.  Unlike the threaded session, lanes can also be removed while
/// the session runs ([`remove_lane`](Self::remove_lane)), which the soak
/// suite exercises as continuous churn.
pub struct PooledSession {
    name: String,
    registry: FilterRegistry,
    runtime: Arc<Runtime>,
    head: PooledChain,
    fanout_work: Arc<FanoutWork>,
    fanout_task: Arc<Task>,
    lanes: Mutex<PooledLanes>,
    capacity: usize,
    batch_size: usize,
    /// Registry latency spans are created in, once telemetry is enabled;
    /// lanes added afterwards attach their own spans from here.
    telemetry: Mutex<Option<Arc<Registry>>>,
}

impl fmt::Debug for PooledSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PooledSession")
            .field("name", &self.name)
            .field("lanes", &self.lane_names())
            .finish()
    }
}

impl PooledSession {
    /// Session name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The endpoint the upstream source writes into (feeds the head chain).
    pub fn input(&self) -> DetachableSender<Packet> {
        self.head.input()
    }

    /// Names of the live lanes, in creation order.
    pub fn lane_names(&self) -> Vec<String> {
        self.lanes.lock().live.iter().map(|l| l.name.clone()).collect()
    }

    /// Enables latency spans on this session: the shared head chain records
    /// under `session.<name>.head` (interior — packets exit downstream),
    /// and every lane, current and future, records under
    /// `session.<name>.lane.<lane>` with per-packet end-to-end latency at
    /// lane exit.
    pub fn enable_telemetry(&self, registry: &Arc<Registry>) {
        self.head
            .set_spans(ChainSpans::interior(registry, format!("session.{}.head", self.name)));
        // Publish first, then sweep: a concurrently added lane either sees
        // the registry itself or is already in the list swept below.
        *self.telemetry.lock() = Some(Arc::clone(registry));
        let lanes = self.lanes.lock();
        for lane in lanes.live.iter().chain(lanes.retired.iter()) {
            lane.chain.set_spans(lane_spans(registry, &self.name, &lane.name));
        }
    }

    /// Number of live receiver lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.lock().live.len()
    }

    /// Adds a receiver lane and returns its delivery endpoint.  A lane
    /// added mid-stream sees the stream from its join point onward.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::Splice`] if a lane with this name already
    /// exists or [`ProxyError::ChainClosed`] after shutdown.
    pub fn add_lane(&self, name: impl Into<String>) -> Result<DetachableReceiver<Packet>, ProxyError> {
        let name = name.into();
        // Read before taking the lanes lock (enable_telemetry publishes the
        // registry first and then sweeps the lane list under that lock, so
        // a lane racing it gets spans from one side or the other).
        let spans_registry = self.telemetry.lock().clone();
        let mut lanes = self.lanes.lock();
        if lanes.closed {
            return Err(ProxyError::ChainClosed);
        }
        if lanes.live.iter().any(|l| l.name == name) {
            return Err(ProxyError::Splice(format!("lane {name} already exists")));
        }
        let chain = self.runtime.add_chain_with(
            format!("{}/{name}", self.name),
            self.capacity,
            self.batch_size,
        );
        if let Some(registry) = &spans_registry {
            chain.set_spans(lane_spans(registry, &self.name, &name));
        }
        let output = chain.output();
        // Wake the fanout task whenever this lane's inbox frees space, and
        // publish the lane input to it; the next batch includes this lane.
        chain.input_rx.set_space_watcher(Arc::new(TaskWaker {
            task: Arc::downgrade(&self.fanout_task),
        }));
        {
            let mut fanout = self.fanout_work.inner.lock();
            if fanout.eof {
                // The stream already ended and the fanout task has retired:
                // nothing will ever feed (or close) this lane, so it joins
                // after the last packet — an immediate clean end of stream
                // instead of a consumer hanging forever.
                drop(fanout);
                chain.close_input();
            } else {
                fanout.lanes.push(FanLaneSlot {
                    name: name.clone(),
                    tx: chain.input(),
                    pending: Vec::new(),
                    dead: false,
                });
            }
        }
        lanes.live.push(PooledLane {
            name,
            chain,
            output: output.clone(),
            decoder_stats: Vec::new(),
        });
        Ok(output)
    }

    /// Removes a lane from the running session: the lane stops receiving
    /// new fanout traffic, its chain flushes, and its delivery endpoint
    /// observes a clean end of stream once the backlog drains.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::UnknownLane`] for unknown lanes.
    pub fn remove_lane(&self, name: &str) -> Result<(), ProxyError> {
        let mut lanes = self.lanes.lock();
        let index = lanes
            .live
            .iter()
            .position(|l| l.name == name)
            .ok_or_else(|| ProxyError::UnknownLane(name.to_string()))?;
        let lane = lanes.live.remove(index);
        {
            // Drop the fanout slot: whatever the fanout still owed this
            // lane goes with it, but the lane's own inbox backlog drains.
            let mut fanout = self.fanout_work.inner.lock();
            fanout.lanes.retain(|slot| slot.name != name);
        }
        // The fanout may be parked on the removed lane's full inbox, and
        // with the slot gone no watcher of that pipe will ever wake it
        // again — kick it explicitly so the surviving lanes keep flowing.
        self.fanout_task.schedule();
        // EOF the lane's chain so its task flushes and completes once the
        // consumer drains the endpoint.
        lane.chain.close_input();
        lanes.retired.push(lane);
        Ok(())
    }

    /// A (new) handle on a lane's delivery endpoint.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::UnknownLane`] for unknown lanes.
    pub fn lane_output(&self, lane: &str) -> Result<DetachableReceiver<Packet>, ProxyError> {
        let lanes = self.lanes.lock();
        Ok(find_pooled_lane(&lanes.live, lane)?.output.clone())
    }

    /// Instantiates a filter from `spec` and splices it into the shared
    /// head chain at `position`.
    ///
    /// # Errors
    ///
    /// Returns registry, spec-validation, or splice errors.
    pub fn insert_head_filter(&self, position: usize, spec: &FilterSpec) -> Result<(), ProxyError> {
        let filter = self.registry.instantiate(spec)?;
        self.head.insert(position, filter)
    }

    /// Removes and returns the head-chain filter at `position`.
    ///
    /// # Errors
    ///
    /// Returns position or splice errors.
    pub fn remove_head_filter(&self, position: usize) -> Result<Box<dyn Filter>, ProxyError> {
        self.head.remove(position)
    }

    /// Names of the filters installed on the head chain.
    pub fn head_filter_names(&self) -> Vec<String> {
        self.head.names()
    }

    /// Instantiates a filter from `spec` and splices it into `lane`'s tail
    /// chain at `position` — the per-receiver adaptation path.  As with the
    /// threaded session, the built-in `fec-decoder` kind keeps its stats
    /// handle so per-lane `recovered` counts surface in the status.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::UnknownLane`], registry, spec-validation, or
    /// splice errors.
    pub fn insert_lane_filter(
        &self,
        lane: &str,
        position: usize,
        spec: &FilterSpec,
    ) -> Result<(), ProxyError> {
        let (filter, decoder_stats) = build_lane_filter(&self.registry, spec)?;
        let mut lanes = self.lanes.lock();
        let lane = find_pooled_lane_mut(&mut lanes.live, lane)?;
        lane.chain.insert(position, filter)?;
        if let Some(stats) = decoder_stats {
            lane.decoder_stats.push(stats);
        }
        Ok(())
    }

    /// Removes and returns the filter at `position` on `lane`'s tail chain.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::UnknownLane`], position, or splice errors.
    pub fn remove_lane_filter(
        &self,
        lane: &str,
        position: usize,
    ) -> Result<Box<dyn Filter>, ProxyError> {
        let lanes = self.lanes.lock();
        find_pooled_lane(&lanes.live, lane)?.chain.remove(position)
    }

    /// Names of the filters installed on `lane`'s tail chain.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::UnknownLane`] for unknown lanes.
    pub fn lane_filter_names(&self, lane: &str) -> Result<Vec<String>, ProxyError> {
        let lanes = self.lanes.lock();
        Ok(find_pooled_lane(&lanes.live, lane)?.chain.names())
    }

    /// Chain statistics of a lane — **including** lanes already removed
    /// with [`remove_lane`](Self::remove_lane), whose chains keep draining
    /// (and counting) until the session shuts down.  This is what lets the
    /// soak suite assert per-lane conservation across churn.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::UnknownLane`] if no live or retired lane has
    /// this name.
    pub fn lane_stats(&self, lane: &str) -> Result<ChainStats, ProxyError> {
        let lanes = self.lanes.lock();
        lanes
            .live
            .iter()
            .chain(lanes.retired.iter())
            .find(|l| l.name == lane)
            .map(|l| l.chain.stats())
            .ok_or_else(|| ProxyError::UnknownLane(lane.to_string()))
    }

    /// A full status snapshot, in the same shape as a threaded session's.
    pub fn status(&self) -> SessionStatus {
        let lanes = self.lanes.lock();
        let mut secure = self.head.secure_snapshot();
        for lane in lanes.live.iter().chain(lanes.retired.iter()) {
            secure.merge(lane.chain.secure_snapshot());
        }
        SessionStatus {
            name: self.name.clone(),
            head_filters: self.head.names(),
            head_stats: self.head.stats(),
            lanes: lanes
                .live
                .iter()
                .map(|lane| {
                    let stats = lane.chain.stats();
                    LaneStatus {
                        name: lane.name.clone(),
                        filters: lane.chain.names(),
                        delivered: stats.packets_out,
                        recovered: lane.decoder_stats.iter().map(|s| s.recovered()).sum(),
                        queue_depth: lane.output.available(),
                        stats,
                    }
                })
                .collect(),
            secure,
        }
    }

    /// Closes the session input: once in-flight packets drain through the
    /// head chain and every lane, each lane endpoint observes end of
    /// stream.
    pub fn close_input(&self) {
        self.head.close_input();
    }

    /// Shuts the session down: head, fanout, and every lane task complete
    /// (undrained lane backlogs are discarded), leaving zero tasks behind.
    ///
    /// # Errors
    ///
    /// Returns the first task that failed to finish (only possible if the
    /// runtime's workers were stopped first).
    pub fn shutdown(&self) -> Result<(), ProxyError> {
        let mut lanes = self.lanes.lock();
        if lanes.closed {
            return Ok(());
        }
        lanes.closed = true;
        // Close every lane delivery endpoint first: a lane task parked
        // against an abandoned (full, never drained) endpoint fails its
        // sends immediately instead of wedging the fanout task — same
        // ordering as the threaded session's shutdown.
        for lane in lanes.live.iter().chain(lanes.retired.iter()) {
            lane.output.close();
        }
        let mut first_error = self.head.shutdown().err();
        // Head EOF reaches the fanout task through its data watcher; it
        // closes every lane inbox and completes.
        self.fanout_task.schedule();
        let fanout_done = self.fanout_task.is_done()
            || (self.fanout_task.pool_running() && self.fanout_task.wait_done(SHUTDOWN_GRACE));
        if !fanout_done && first_error.is_none() {
            first_error = Some(ProxyError::WorkerFailed(format!(
                "fanout task of {}",
                self.name
            )));
        }
        for lane in lanes.live.drain(..) {
            if let Err(err) = lane.chain.shutdown() {
                first_error.get_or_insert(err);
            }
        }
        for lane in lanes.retired.drain(..) {
            if let Err(err) = lane.chain.shutdown() {
                first_error.get_or_insert(err);
            }
        }
        match first_error {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }
}

impl Drop for PooledSession {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

fn find_pooled_lane<'a>(
    lanes: &'a [PooledLane],
    name: &str,
) -> Result<&'a PooledLane, ProxyError> {
    lanes
        .iter()
        .find(|l| l.name == name)
        .ok_or_else(|| ProxyError::UnknownLane(name.to_string()))
}

fn find_pooled_lane_mut<'a>(
    lanes: &'a mut [PooledLane],
    name: &str,
) -> Result<&'a mut PooledLane, ProxyError> {
    lanes
        .iter_mut()
        .find(|l| l.name == name)
        .ok_or_else(|| ProxyError::UnknownLane(name.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapidware_filters::{DropEveryNth, FecDecoderFilter, FecEncoderFilter, NullFilter};
    use rapidware_packet::{PacketKind, SeqNo, StreamId};

    fn packet(seq: u64) -> Packet {
        Packet::new(
            StreamId::new(1),
            SeqNo::new(seq),
            PacketKind::AudioData,
            vec![(seq % 251) as u8; 64],
        )
    }

    fn collect_all(rx: &DetachableReceiver<Packet>) -> Vec<Packet> {
        let mut out = Vec::new();
        while let Ok(p) = rx.recv() {
            out.push(p);
        }
        out
    }

    #[test]
    fn pooled_null_chain_forwards_everything_in_order() {
        let runtime = Runtime::start(RuntimeConfig::new(2, 8));
        let chain = runtime.add_chain("s");
        let input = chain.input();
        let output = chain.output();
        let producer = std::thread::spawn(move || {
            for seq in 0..5_000u64 {
                input.send(packet(seq)).unwrap();
            }
        });
        let mut received = Vec::new();
        while received.len() < 5_000 {
            received.push(output.recv().unwrap());
        }
        producer.join().unwrap();
        for (i, p) in received.iter().enumerate() {
            assert_eq!(p.seq().value(), i as u64);
        }
        chain.shutdown().unwrap();
        assert_eq!(runtime.live_tasks(), 0);
        runtime.shutdown().unwrap();
    }

    #[test]
    fn pooled_fec_chain_recovers_like_threaded() {
        let runtime = Runtime::start(RuntimeConfig::new(4, 16));
        let chain = runtime.add_chain("fec");
        chain.push_back(Box::new(FecEncoderFilter::fec_6_4().unwrap())).unwrap();
        chain.push_back(Box::new(DropEveryNth::new(5))).unwrap();
        chain.push_back(Box::new(FecDecoderFilter::fec_6_4().unwrap())).unwrap();
        let input = chain.input();
        let output = chain.output();
        let consumer = std::thread::spawn(move || collect_all(&output));
        for seq in 0..400u64 {
            input.send(packet(seq)).unwrap();
        }
        chain.close_input();
        let received = consumer.join().unwrap();
        let mut seqs: Vec<u64> = received.iter().map(|p| p.seq().value()).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert!(seqs.len() >= 395, "near-complete recovery, got {} of 400", seqs.len());
        chain.shutdown().unwrap();
        runtime.shutdown().unwrap();
    }

    #[test]
    fn live_insert_and_remove_lose_nothing() {
        let runtime = Runtime::start(RuntimeConfig::new(2, 4));
        let chain = runtime.add_chain("live");
        let input = chain.input();
        let output = chain.output();
        let producer = {
            let input = input.clone();
            std::thread::spawn(move || {
                for seq in 0..2_000u64 {
                    input.send(packet(seq)).unwrap();
                }
            })
        };
        let consumer = std::thread::spawn(move || collect_all(&output));
        chain.insert(0, Box::new(NullFilter::new())).unwrap();
        chain.push_back(Box::new(NullFilter::new())).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        let removed = chain.remove(0).unwrap();
        assert_eq!(removed.name(), "null");
        producer.join().unwrap();
        chain.close_input();
        let received = consumer.join().unwrap();
        assert_eq!(received.len(), 2_000, "no packet lost or duplicated");
        for (i, p) in received.iter().enumerate() {
            assert_eq!(p.seq().value(), i as u64, "order preserved across splices");
        }
        assert_eq!(chain.stats().splices, 3);
        chain.shutdown().unwrap();
        runtime.shutdown().unwrap();
    }

    #[test]
    fn backpressure_parks_the_task_instead_of_spinning() {
        // Tiny pipes, no consumer: the task must go idle (not busy-loop)
        // once the outbox fills, then finish the stream when the consumer
        // appears.
        let runtime = Runtime::start(RuntimeConfig::new(1, 4));
        let chain = runtime.add_chain_with("bp", 8, 4);
        let input = chain.input();
        let output = chain.output();
        let producer = std::thread::spawn(move || {
            for seq in 0..100u64 {
                input.send(packet(seq)).unwrap();
            }
        });
        std::thread::sleep(Duration::from_millis(30));
        // The outbox (8) is full and the worker is idle; executed counters
        // must stop growing while nothing changes.
        let before: u64 = runtime.status().shards.iter().map(|s| s.executed).sum();
        std::thread::sleep(Duration::from_millis(50));
        let after: u64 = runtime.status().shards.iter().map(|s| s.executed).sum();
        assert_eq!(before, after, "blocked task must not spin through the queue");
        let consumer = std::thread::spawn(move || collect_all(&output));
        producer.join().unwrap();
        chain.close_input();
        assert_eq!(consumer.join().unwrap().len(), 100);
        chain.shutdown().unwrap();
        runtime.shutdown().unwrap();
    }

    #[test]
    fn many_chains_share_a_small_pool() {
        let runtime = Runtime::start(RuntimeConfig::new(2, 8));
        let chains: Vec<PooledChain> =
            (0..32).map(|i| runtime.add_chain(format!("c{i}"))).collect();
        let consumers: Vec<_> = chains
            .iter()
            .map(|chain| {
                let rx = chain.output();
                std::thread::spawn(move || collect_all(&rx).len())
            })
            .collect();
        for chain in &chains {
            let input = chain.input();
            for seq in 0..200u64 {
                input.send(packet(seq)).unwrap();
            }
            chain.close_input();
        }
        for consumer in consumers {
            assert_eq!(consumer.join().unwrap(), 200);
        }
        for chain in &chains {
            chain.shutdown().unwrap();
        }
        assert_eq!(runtime.live_tasks(), 0, "no leaked chain tasks");
        runtime.shutdown().unwrap();
    }

    #[test]
    fn pooled_session_fans_out_in_order_and_zero_copy() {
        let runtime = Runtime::start(RuntimeConfig::new(2, 8));
        let session = runtime.add_session("fan");
        let lanes: Vec<_> =
            (0..4).map(|i| session.add_lane(format!("lane-{i}")).unwrap()).collect();
        let input = session.input();
        let consumers: Vec<_> = lanes
            .into_iter()
            .map(|rx| std::thread::spawn(move || collect_all(&rx)))
            .collect();
        for seq in 0..2_000u64 {
            input.send(packet(seq)).unwrap();
        }
        session.close_input();
        let mut outputs = Vec::new();
        for consumer in consumers {
            let received = consumer.join().unwrap();
            assert_eq!(received.len(), 2_000);
            for (i, p) in received.iter().enumerate() {
                assert_eq!(p.seq().value(), i as u64);
            }
            outputs.push(received);
        }
        assert!(
            outputs[0][0].shares_payload_with(&outputs[1][0]),
            "fanout must be zero-copy"
        );
        session.shutdown().unwrap();
        assert_eq!(runtime.live_tasks(), 0, "no leaked session tasks");
        runtime.shutdown().unwrap();
    }

    #[test]
    fn lane_churn_mid_stream_keeps_remaining_lanes_whole() {
        let runtime = Runtime::start(RuntimeConfig::new(2, 4));
        let session = runtime.add_session("churn");
        let keeper = session.add_lane("keeper").unwrap();
        let victim = session.add_lane("victim").unwrap();
        let keeper_consumer = std::thread::spawn(move || collect_all(&keeper));
        let victim_consumer = std::thread::spawn(move || collect_all(&victim));
        let input = session.input();
        for seq in 0..200u64 {
            input.send(packet(seq)).unwrap();
        }
        session.remove_lane("victim").unwrap();
        assert_eq!(session.lane_names(), vec!["keeper"]);
        // A late joiner sees the stream from its join point onward.
        let late = session.add_lane("late").unwrap();
        let late_consumer = std::thread::spawn(move || collect_all(&late));
        for seq in 200..400u64 {
            input.send(packet(seq)).unwrap();
        }
        session.close_input();
        let keeper_seqs: Vec<u64> =
            keeper_consumer.join().unwrap().iter().map(|p| p.seq().value()).collect();
        assert_eq!(keeper_seqs, (0..400).collect::<Vec<u64>>());
        let victim_seqs = victim_consumer.join().unwrap();
        assert!(victim_seqs.len() <= 200, "removed lane must stop receiving");
        let late_seqs: Vec<u64> =
            late_consumer.join().unwrap().iter().map(|p| p.seq().value()).collect();
        assert!(!late_seqs.is_empty());
        assert_eq!(late_seqs.last(), Some(&399));
        session.shutdown().unwrap();
        assert_eq!(runtime.live_tasks(), 0, "churned lanes must not leak tasks");
        runtime.shutdown().unwrap();
    }

    #[test]
    fn remove_lane_unblocks_a_fanout_stalled_on_it() {
        // Regression: the fanout task can be parked on a stalled lane's
        // full inbox when remove_lane drops that lane's slot; with the
        // slot gone, no pipe watcher will ever wake the fanout again, so
        // remove_lane must kick it explicitly or the healthy lanes starve.
        let runtime = Runtime::start(RuntimeConfig::new(2, 4));
        let session =
            runtime.add_session_with("stall", FilterRegistry::with_builtins(), 4, 4);
        let ok = session.add_lane("ok").unwrap();
        let _stuck = session.add_lane("stuck").unwrap();
        let input = session.input();
        let producer = std::thread::spawn(move || {
            for seq in 0..200u64 {
                if input.send(packet(seq)).is_err() {
                    break;
                }
            }
        });
        // Drain only the healthy lane until the fanout wedges behind the
        // never-drained sibling, then remove the sibling.
        let mut seqs: Vec<u64> = Vec::new();
        let mut removed = false;
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while seqs.len() < 200 {
            assert!(
                std::time::Instant::now() < deadline,
                "healthy lane starved: fanout stayed wedged ({} of 200 delivered, \
                 removed: {removed})",
                seqs.len()
            );
            match ok.recv_timeout(Duration::from_millis(20)) {
                Ok(p) => seqs.push(p.seq().value()),
                Err(rapidware_streams::TryRecvError::Empty) => {
                    if !removed {
                        session.remove_lane("stuck").unwrap();
                        removed = true;
                    }
                }
                Err(other) => panic!("unexpected error on the healthy lane: {other}"),
            }
        }
        assert!(removed, "the stalled sibling should have wedged the fanout first");
        assert_eq!(seqs, (0..200).collect::<Vec<u64>>());
        producer.join().unwrap();
        session.shutdown().unwrap();
        runtime.shutdown().unwrap();
    }

    #[test]
    fn lane_added_after_stream_end_sees_immediate_eof() {
        // Regression: a lane added after the fanout task retired (head
        // EOF observed) used to register a slot nothing would ever feed or
        // close, hanging its consumer forever.
        let runtime = Runtime::start(RuntimeConfig::new(2, 4));
        let session = runtime.add_session("ended");
        let first = session.add_lane("first").unwrap();
        let input = session.input();
        input.send(packet(0)).unwrap();
        session.close_input();
        // Draining the first lane to EOF proves the fanout observed the
        // end of stream and retired.
        assert_eq!(collect_all(&first).len(), 1);
        let late = session.add_lane("late-joiner").unwrap();
        match late.recv_timeout(Duration::from_secs(10)) {
            Err(rapidware_streams::TryRecvError::Eof) => {}
            other => panic!("late lane must observe a clean end of stream, got {other:?}"),
        }
        session.shutdown().unwrap();
        assert_eq!(runtime.live_tasks(), 0);
        runtime.shutdown().unwrap();
    }

    #[test]
    fn pooled_session_per_lane_filters_and_status() {
        let runtime = Runtime::start(RuntimeConfig::new(2, 8));
        let session = runtime.add_session("status");
        let plain = session.add_lane("plain").unwrap();
        let lossy = session.add_lane("lossy").unwrap();
        session
            .insert_lane_filter("lossy", 0, &FilterSpec::new("fec-encoder"))
            .unwrap();
        session
            .insert_lane_filter("lossy", 1, &FilterSpec::new("drop-every").with_param("n", "5"))
            .unwrap();
        session
            .insert_lane_filter("lossy", 2, &FilterSpec::new("fec-decoder"))
            .unwrap();
        session
            .insert_head_filter(0, &FilterSpec::new("tap").with_param("name", "head-tap"))
            .unwrap();
        assert_eq!(session.head_filter_names(), vec!["head-tap"]);
        let plain_consumer = std::thread::spawn(move || collect_all(&plain));
        let lossy_consumer = std::thread::spawn(move || collect_all(&lossy));
        let input = session.input();
        for seq in 0..400u64 {
            input.send(packet(seq)).unwrap();
        }
        session.close_input();
        assert_eq!(plain_consumer.join().unwrap().len(), 400, "plain lane untouched");
        assert!(lossy_consumer.join().unwrap().len() >= 395, "FEC repairs the lossy lane");
        let status = session.status();
        assert_eq!(status.name, "status");
        assert_eq!(status.head_filters, vec!["head-tap"]);
        assert_eq!(status.lanes.len(), 2);
        assert!(status.lanes[1].recovered > 0, "decoder stats wired into lane status");
        assert_eq!(status.lanes[0].delivered, 400);
        session.shutdown().unwrap();
        runtime.shutdown().unwrap();
    }

    #[test]
    fn shutdown_with_undrained_lanes_does_not_hang() {
        let runtime = Runtime::start(RuntimeConfig::new(2, 4));
        let session = runtime.add_session_with(
            "abandoned",
            FilterRegistry::with_builtins(),
            16,
            4,
        );
        let _never_drained = session.add_lane("a").unwrap();
        let input = session.input();
        let producer = std::thread::spawn(move || {
            for seq in 0..300u64 {
                if input.send(packet(seq)).is_err() {
                    break;
                }
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        session.shutdown().unwrap();
        producer.join().unwrap();
        assert_eq!(runtime.live_tasks(), 0);
        runtime.shutdown().unwrap();
    }

    #[test]
    fn errors_and_validation() {
        let runtime = Runtime::start(RuntimeConfig::new(1, 1));
        let chain = runtime.add_chain("v");
        assert!(matches!(
            chain.insert(3, Box::new(NullFilter::new())),
            Err(ProxyError::PositionOutOfRange { .. })
        ));
        assert!(matches!(chain.remove(0), Err(ProxyError::PositionOutOfRange { .. })));
        chain.shutdown().unwrap();
        assert!(matches!(
            chain.insert(0, Box::new(NullFilter::new())),
            Err(ProxyError::ChainClosed)
        ));
        let session = runtime.add_session("s");
        session.add_lane("a").unwrap();
        assert!(session.add_lane("a").is_err());
        assert!(matches!(session.remove_lane("nope"), Err(ProxyError::UnknownLane(_))));
        assert!(matches!(session.lane_output("nope"), Err(ProxyError::UnknownLane(_))));
        session.shutdown().unwrap();
        session.shutdown().unwrap();
        assert!(matches!(session.add_lane("b"), Err(ProxyError::ChainClosed)));
        runtime.shutdown().unwrap();
        runtime.shutdown().unwrap();
    }

    #[test]
    fn status_reports_queue_depths_and_config_round_trips() {
        let config = RuntimeConfig::new(3, 7).with_pipe_capacity(64);
        let runtime = Runtime::start(config);
        assert_eq!(runtime.config(), config);
        let status = runtime.status();
        assert_eq!(status.workers, 3);
        assert_eq!(status.shards.len(), 3);
        assert!(!format!("{runtime:?}").is_empty());
        let chain = runtime.add_chain("c");
        assert_eq!(chain.batch_size(), 7);
        assert!(!format!("{chain:?}").is_empty());
        let session = runtime.add_session("s");
        assert!(!format!("{session:?}").is_empty());
        assert_eq!(session.lane_count(), 0);
        session.shutdown().unwrap();
        chain.shutdown().unwrap();
        runtime.shutdown().unwrap();
    }

    #[test]
    fn zero_values_are_clamped() {
        let config = RuntimeConfig::new(0, 0);
        assert_eq!(config.shards, 1);
        assert_eq!(config.batch_size, 1);
    }
}
