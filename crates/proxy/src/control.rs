//! The control plane: [`Command`], [`Response`], and [`ControlManager`].
//!
//! The paper's `ControlManager` is a Swing GUI that queries proxies for
//! their state, renders the current filter configuration, and lets an
//! administrator insert and remove filters at specified locations on a
//! given stream.  The reproduction keeps the protocol and drops the GUI:
//! commands are structured values with a stable one-line text encoding
//! (easy to ship over any control connection and to script in tests), and
//! the manager applies them to a [`Proxy`] and returns structured
//! responses.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::ProxyError;
use crate::proxy::{Proxy, ProxyStatus};
use crate::registry::FilterSpec;

/// A management command addressed to a proxy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Report the proxy's full status.
    Query,
    /// Report the proxy's telemetry snapshot as JSON (requires
    /// [`Proxy::enable_telemetry`]).
    QueryTelemetry,
    /// List the filter kinds the proxy can instantiate.
    ListKinds,
    /// Create a new stream.
    AddStream {
        /// Stream name.
        stream: String,
    },
    /// Instantiate a filter from a spec and splice it into a stream.
    Insert {
        /// Stream name.
        stream: String,
        /// Position in the chain.
        position: usize,
        /// What to instantiate.
        spec: FilterSpec,
    },
    /// Remove the filter at a position.
    Remove {
        /// Stream name.
        stream: String,
        /// Position in the chain.
        position: usize,
    },
    /// Move a filter between positions.
    Move {
        /// Stream name.
        stream: String,
        /// Current position.
        from: usize,
        /// Target position.
        to: usize,
    },
}

/// The proxy's reply to a [`Command`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Command applied; nothing further to report.
    Ok,
    /// Full status snapshot (reply to [`Command::Query`]).
    Status(ProxyStatus),
    /// Telemetry snapshot as JSON (reply to [`Command::QueryTelemetry`]).
    /// The one multi-line response in the protocol: the payload is the
    /// [`Proxy::telemetry_json`] document verbatim.
    Telemetry(String),
    /// Available filter kinds (reply to [`Command::ListKinds`]).
    Kinds(Vec<String>),
    /// The command failed.
    Error(String),
}

impl Command {
    /// Parses the one-line text encoding, e.g.
    /// `insert stream=audio pos=0 kind=fec-encoder n=6 k=4`.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::MalformedCommand`] if the verb is unknown or a
    /// required field is missing or malformed.
    pub fn parse(line: &str) -> Result<Command, ProxyError> {
        let mut words = line.split_whitespace();
        let verb = words
            .next()
            .ok_or_else(|| ProxyError::MalformedCommand("empty command".to_string()))?;
        let mut fields: BTreeMap<String, String> = BTreeMap::new();
        for word in words {
            let (key, value) = word.split_once('=').ok_or_else(|| {
                ProxyError::MalformedCommand(format!("expected key=value, got {word}"))
            })?;
            fields.insert(key.to_string(), value.to_string());
        }
        let take = |fields: &mut BTreeMap<String, String>, key: &str| -> Result<String, ProxyError> {
            fields
                .remove(key)
                .ok_or_else(|| ProxyError::MalformedCommand(format!("missing field {key}")))
        };
        let parse_usize = |value: &str, key: &str| -> Result<usize, ProxyError> {
            value
                .parse()
                .map_err(|_| ProxyError::MalformedCommand(format!("field {key} is not a number")))
        };
        match verb {
            "query" => Ok(Command::Query),
            "telemetry" => Ok(Command::QueryTelemetry),
            "kinds" => Ok(Command::ListKinds),
            "add-stream" => Ok(Command::AddStream {
                stream: take(&mut fields, "stream")?,
            }),
            "insert" => {
                let stream = take(&mut fields, "stream")?;
                let position = parse_usize(&take(&mut fields, "pos")?, "pos")?;
                let kind = take(&mut fields, "kind")?;
                let mut spec = FilterSpec::new(kind);
                for (key, value) in fields {
                    spec = spec.with_param(key, value);
                }
                Ok(Command::Insert {
                    stream,
                    position,
                    spec,
                })
            }
            "remove" => Ok(Command::Remove {
                stream: take(&mut fields, "stream")?,
                position: parse_usize(&take(&mut fields, "pos")?, "pos")?,
            }),
            "move" => Ok(Command::Move {
                stream: take(&mut fields, "stream")?,
                from: parse_usize(&take(&mut fields, "from")?, "from")?,
                to: parse_usize(&take(&mut fields, "to")?, "to")?,
            }),
            other => Err(ProxyError::MalformedCommand(format!("unknown verb {other}"))),
        }
    }

    /// The one-line text encoding of this command (inverse of
    /// [`parse`](Self::parse)).
    pub fn encode(&self) -> String {
        match self {
            Command::Query => "query".to_string(),
            Command::QueryTelemetry => "telemetry".to_string(),
            Command::ListKinds => "kinds".to_string(),
            Command::AddStream { stream } => format!("add-stream stream={stream}"),
            Command::Insert {
                stream,
                position,
                spec,
            } => {
                let mut line = format!("insert stream={stream} pos={position} kind={}", spec.kind);
                for (key, value) in &spec.params {
                    line.push_str(&format!(" {key}={value}"));
                }
                line
            }
            Command::Remove { stream, position } => {
                format!("remove stream={stream} pos={position}")
            }
            Command::Move { stream, from, to } => {
                format!("move stream={stream} from={from} to={to}")
            }
        }
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.encode())
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Response::Ok => write!(f, "ok"),
            Response::Kinds(kinds) => write!(f, "kinds {}", kinds.join(",")),
            Response::Error(message) => write!(f, "error {message}"),
            Response::Telemetry(json) => write!(f, "telemetry {json}"),
            Response::Status(status) => {
                write!(f, "status proxy={}", status.name)?;
                for stream in &status.streams {
                    write!(
                        f,
                        " stream={}:[{}] in={} out={}",
                        stream.name,
                        stream.filters.join(","),
                        stream.stats.packets_in,
                        stream.stats.packets_out
                    )?;
                }
                for session in &status.sessions {
                    write!(
                        f,
                        " session={}:head[{}]",
                        session.name,
                        session.head_filters.join(",")
                    )?;
                    for lane in &session.lanes {
                        write!(
                            f,
                            " lane={}:[{}] delivered={} recovered={} queued={}",
                            lane.name,
                            lane.filters.join(","),
                            lane.delivered,
                            lane.recovered,
                            lane.queue_depth
                        )?;
                    }
                }
                for transport in &status.transports {
                    write!(
                        f,
                        " udp={}:{} at={} rx={} tx={} decode-err={} drop={}",
                        transport.name,
                        if transport.shared {
                            "shared"
                        } else if transport.session {
                            "session"
                        } else {
                            "stream"
                        },
                        transport.ingress_addr,
                        transport.ingress.rx_packets,
                        transport.egress.tx_packets,
                        transport.ingress.decode_errors,
                        transport.ingress.dropped + transport.egress.dropped,
                    )?;
                    if transport.shared {
                        write!(f, " unknown-stream={}", transport.unknown_streams)?;
                    }
                }
                if !status.secure.is_empty() {
                    // The stats-struct metrics render in their snapshot
                    // order: sealed, opened, rejected, rekeys.
                    write!(
                        f,
                        " secure={}",
                        rapidware_telemetry::format_metrics(
                            &rapidware_telemetry::StatSource::snapshot(&status.secure)
                        )
                    )?;
                }
                if let Some(runtime) = &status.runtime {
                    write!(
                        f,
                        " runtime=workers:{} live:{} steals:{} polls:{} depths:[{}]",
                        runtime.workers,
                        runtime.live_tasks,
                        runtime.steals,
                        runtime.polls,
                        runtime
                            .shards
                            .iter()
                            .map(|shard| shard.queued.to_string())
                            .collect::<Vec<_>>()
                            .join(",")
                    )?;
                }
                Ok(())
            }
        }
    }
}

/// Applies management commands to a [`Proxy`].
///
/// The control manager supports management of multiple proxies in the
/// paper; here one manager owns one proxy and a higher-level session (see
/// `rapidware-pavilion`) instantiates one manager per proxy.
#[derive(Debug)]
pub struct ControlManager {
    proxy: Proxy,
}

impl ControlManager {
    /// Wraps a proxy for management.
    pub fn new(proxy: Proxy) -> Self {
        Self { proxy }
    }

    /// Read access to the managed proxy.
    pub fn proxy(&self) -> &Proxy {
        &self.proxy
    }

    /// Mutable access to the managed proxy (e.g. to obtain stream
    /// endpoints).
    pub fn proxy_mut(&mut self) -> &mut Proxy {
        &mut self.proxy
    }

    /// Executes a structured command.  Errors are folded into
    /// [`Response::Error`] so a remote administrator always gets a reply.
    pub fn execute(&mut self, command: Command) -> Response {
        let result = match command {
            Command::Query => return Response::Status(self.proxy.status()),
            Command::QueryTelemetry => {
                return match self.proxy.telemetry_json() {
                    Some(json) => Response::Telemetry(json),
                    None => Response::Error("telemetry not enabled".to_string()),
                };
            }
            Command::ListKinds => {
                return Response::Kinds(self.proxy.status().available_kinds);
            }
            Command::AddStream { stream } => self.proxy.add_stream(stream).map(|_| ()),
            Command::Insert {
                stream,
                position,
                spec,
            } => self.proxy.insert_filter(&stream, position, &spec),
            Command::Remove { stream, position } => {
                self.proxy.remove_filter(&stream, position).map(|_| ())
            }
            Command::Move { stream, from, to } => self.proxy.move_filter(&stream, from, to),
        };
        match result {
            Ok(()) => Response::Ok,
            Err(err) => Response::Error(err.to_string()),
        }
    }

    /// Parses and executes one text command line, returning the textual
    /// reply.
    pub fn execute_line(&mut self, line: &str) -> String {
        match Command::parse(line) {
            Ok(command) => self.execute(command).to_string(),
            Err(err) => Response::Error(err.to_string()).to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_round_trip_through_text() {
        let commands = vec![
            Command::Query,
            Command::QueryTelemetry,
            Command::ListKinds,
            Command::AddStream {
                stream: "audio".into(),
            },
            Command::Insert {
                stream: "audio".into(),
                position: 1,
                spec: FilterSpec::new("fec-encoder")
                    .with_param("n", "6")
                    .with_param("k", "4"),
            },
            Command::Remove {
                stream: "audio".into(),
                position: 0,
            },
            Command::Move {
                stream: "audio".into(),
                from: 2,
                to: 0,
            },
        ];
        for command in commands {
            let line = command.encode();
            let parsed = Command::parse(&line).unwrap();
            assert_eq!(parsed, command, "line: {line}");
            assert_eq!(command.to_string(), line);
        }
    }

    #[test]
    fn malformed_commands_are_rejected() {
        for line in [
            "",
            "fire-the-lasers",
            "insert stream=a",
            "insert stream=a pos=zero kind=null",
            "remove stream=a",
            "insert stream=a pos=0",
            "move stream=a from=1",
            "insert notakeyvalue",
        ] {
            assert!(Command::parse(line).is_err(), "should reject: {line:?}");
        }
    }

    #[test]
    fn manager_executes_a_management_session() {
        let mut manager = ControlManager::new(Proxy::new("managed"));
        assert_eq!(manager.execute_line("add-stream stream=audio"), "ok");
        assert_eq!(
            manager.execute_line("insert stream=audio pos=0 kind=fec-encoder n=6 k=4"),
            "ok"
        );
        assert_eq!(
            manager.execute_line("insert stream=audio pos=1 kind=tap name=downlink"),
            "ok"
        );
        let status = manager.execute_line("query");
        assert!(status.contains("fec-encoder(6,4)"));
        assert!(status.contains("downlink"));
        assert_eq!(manager.execute_line("remove stream=audio pos=0"), "ok");
        let status = manager.execute_line("query");
        assert!(!status.contains("fec-encoder"));
        let kinds = manager.execute_line("kinds");
        assert!(kinds.starts_with("kinds "));
        assert!(kinds.contains("transcoder"));
    }

    #[test]
    fn telemetry_verb_returns_json_once_enabled() {
        let mut manager = ControlManager::new(Proxy::new("observed"));
        // Without enable_telemetry the verb reports a clean error.
        let reply = manager.execute_line("telemetry");
        assert!(reply.starts_with("error"), "{reply}");
        assert!(reply.contains("telemetry not enabled"), "{reply}");
        manager.proxy_mut().enable_telemetry();
        manager.execute_line("add-stream stream=audio");
        let reply = manager.execute_line("telemetry");
        assert!(reply.starts_with("telemetry {"), "{reply}");
        assert!(reply.contains("\"stream.audio.packets_in\""), "{reply}");
        match manager.execute(Command::QueryTelemetry) {
            Response::Telemetry(json) => assert!(json.contains("\"histograms\"")),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn manager_reports_errors_as_responses() {
        let mut manager = ControlManager::new(Proxy::new("managed"));
        let reply = manager.execute_line("insert stream=ghost pos=0 kind=null");
        assert!(reply.starts_with("error"));
        assert!(reply.contains("unknown stream"));
        let reply = manager.execute_line("definitely not a command");
        assert!(reply.starts_with("error"));
        // Structured path as well.
        let response = manager.execute(Command::Remove {
            stream: "ghost".into(),
            position: 0,
        });
        assert!(matches!(response, Response::Error(_)));
    }

    #[test]
    fn query_returns_structured_status() {
        let mut manager = ControlManager::new(Proxy::new("p1"));
        manager.execute(Command::AddStream {
            stream: "s".into(),
        });
        match manager.execute(Command::Query) {
            Response::Status(status) => {
                assert_eq!(status.name, "p1");
                assert_eq!(status.streams.len(), 1);
            }
            other => panic!("unexpected response {other:?}"),
        }
        let _ = manager.proxy();
        let _ = manager.proxy_mut();
    }
}
