//! # rapidware-proxy — the RAPIDware proxy runtime
//!
//! This crate assembles detachable streams and composable filters into the
//! proxy described in Sections 3–4 of the paper:
//!
//! * [`ThreadedChain`] — the paper's `ControlThread` plus its filter vector:
//!   every filter runs on its own thread, filters are connected by
//!   detachable pipes, and filters can be **inserted, removed, and
//!   reordered while packets are flowing** using the pause → reconnect
//!   splice protocol.  Two `EndPoint` handles (the chain's input sender and
//!   output receiver) plus an empty chain form the paper's "null proxy".
//! * [`FilterRegistry`] and [`FilterSpec`] — the dynamic-upload path.  The
//!   paper serialises Java filter objects across the network into a running
//!   proxy; the Rust equivalent is a serialisable filter *description*
//!   instantiated through a registry of factories, which exercises the same
//!   control path (a filter arrives over the control channel, is
//!   constructed, and is spliced into a live chain) without unsafe dynamic
//!   code loading.
//! * [`ControlManager`], [`Command`], [`Response`] — the management
//!   interface (the paper's Swing GUI, minus the Swing): query a proxy's
//!   configuration, insert/remove/move filters, upload filter bundles.
//! * [`Proxy`] — one proxy process: a set of named streams, each with its
//!   own reconfigurable chain, plus the registry and control plumbing.
//!
//! ## Example
//!
//! ```
//! use rapidware_proxy::ThreadedChain;
//! use rapidware_filters::NullFilter;
//! use rapidware_packet::{Packet, PacketKind, SeqNo, StreamId};
//!
//! # fn main() -> Result<(), rapidware_proxy::ProxyError> {
//! // A null proxy: two endpoints and no filters.
//! let chain = ThreadedChain::new()?;
//! let input = chain.input();
//! let output = chain.output();
//!
//! input.send(Packet::new(StreamId::new(1), SeqNo::new(0), PacketKind::AudioData, vec![1, 2, 3]))
//!     .expect("chain accepts packets");
//! assert_eq!(output.recv().expect("forwarded").seq(), SeqNo::new(0));
//!
//! // Splice a (do-nothing) filter into the running chain, then keep going.
//! chain.insert(0, Box::new(NullFilter::new()))?;
//!
//! input.send(Packet::new(StreamId::new(1), SeqNo::new(1), PacketKind::AudioData, vec![4, 5, 6]))
//!     .expect("chain still accepts packets");
//! chain.close_input();
//!
//! let delivered: Vec<_> = std::iter::from_fn(|| output.recv().ok()).collect();
//! assert_eq!(delivered.len(), 1);
//! assert_eq!(delivered[0].seq(), SeqNo::new(1));
//! chain.shutdown()?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod control;
mod error;
mod proxy;
mod registry;
pub mod runtime;
mod session;
mod threaded;
mod udp;

pub use control::{Command, ControlManager, Response};
pub use error::ProxyError;
pub use proxy::{Proxy, ProxyStatus, StreamStatus};
pub use registry::{FilterRegistry, FilterSpec};
pub use runtime::{
    PooledChain, PooledSession, Runtime, RuntimeConfig, RuntimeStatus, ShardStatus, SocketDriver,
    SocketInterest, SocketStep, SocketWork,
};
pub use session::{LaneStatus, Session, SessionStatus};
pub use threaded::{ChainStats, ThreadedChain, DEFAULT_BATCH_SIZE};
pub use udp::{
    SharedUdpSessionConfig, SharedUdpSessionHandle, SharedUdpStreamConfig, SharedUdpStreamHandle,
    UdpCarrierConfig, UdpCarrierHandle, UdpSessionConfig, UdpSessionHandle, UdpStreamConfig,
    UdpStreamHandle, UdpTransportStatus,
};
// Re-exported so callers reading `ProxyStatus::transports` (or holding the
// stats handles in a `Udp*Handle`) need not depend on the transport crate.
pub use rapidware_transport::{TransportSnapshot, TransportStats};
// Re-exported so callers consuming `Proxy::telemetry()` snapshots (or
// registering their own instruments on `Proxy::telemetry_registry()`) need
// not depend on the telemetry crate.
pub use rapidware_telemetry::{
    format_metrics, Counter, Gauge, Histogram, HistogramSnapshot, Metric, Registry, StatSource,
    TelemetrySnapshot,
};
