//! The [`Proxy`]: named streams, each with a live-reconfigurable chain.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use rapidware_filters::{ChainSpans, Filter, SecureChannelSnapshot};
use rapidware_packet::Packet;
use rapidware_streams::{DetachableReceiver, DetachableSender};
use rapidware_telemetry::{Registry, StatSource, TelemetrySnapshot};

use rapidware_transport::{SharedUdpEgress, SharedUdpIngress, UdpConfig, UdpEgress, UdpIngress};

use crate::error::ProxyError;
use crate::registry::{FilterRegistry, FilterSpec};
use crate::runtime::{
    PooledChain, PooledSession, Runtime, RuntimeConfig, RuntimeStatus, SocketInterest,
};
use crate::session::{Session, SessionStatus};
use crate::threaded::{ChainStats, ThreadedChain};
use crate::udp::{
    SharedEgressWork, SharedIngressWork, SharedUdpSessionConfig, SharedUdpSessionHandle,
    SharedUdpStreamConfig, SharedUdpStreamHandle, UdpCarrier, UdpCarrierConfig, UdpCarrierHandle,
    UdpSessionConfig, UdpSessionHandle, UdpSessionTransport, UdpStreamConfig, UdpStreamHandle,
    UdpStreamTransport, UdpTransportStatus,
};

/// A snapshot of one stream's configuration and statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamStatus {
    /// Stream name.
    pub name: String,
    /// Installed filter names, in stream order.
    pub filters: Vec<String>,
    /// Runtime counters.
    pub stats: ChainStats,
    /// `true` if this stream runs on the sharded worker pool instead of
    /// thread-per-filter.
    pub pooled: bool,
    /// Secure-channel counters summed over this chain's crypto stages
    /// (all-zero when the chain carries plaintext).
    pub secure: SecureChannelSnapshot,
}

/// One stream's chain, on whichever runtime the caller placed it:
/// thread-per-filter ([`ThreadedChain`]) or the sharded worker pool
/// ([`PooledChain`]).  Both support the same live-reconfiguration surface,
/// so the proxy control plane treats them uniformly.
#[derive(Debug)]
enum StreamChain {
    Threaded(ThreadedChain),
    Pooled(PooledChain),
}

impl StreamChain {
    fn insert(&self, position: usize, filter: Box<dyn Filter>) -> Result<(), ProxyError> {
        match self {
            StreamChain::Threaded(chain) => chain.insert(position, filter),
            StreamChain::Pooled(chain) => chain.insert(position, filter),
        }
    }

    fn remove(&self, position: usize) -> Result<Box<dyn Filter>, ProxyError> {
        match self {
            StreamChain::Threaded(chain) => chain.remove(position),
            StreamChain::Pooled(chain) => chain.remove(position),
        }
    }

    fn names(&self) -> Vec<String> {
        match self {
            StreamChain::Threaded(chain) => chain.names(),
            StreamChain::Pooled(chain) => chain.names(),
        }
    }

    fn len(&self) -> usize {
        match self {
            StreamChain::Threaded(chain) => chain.len(),
            StreamChain::Pooled(chain) => chain.len(),
        }
    }

    fn stats(&self) -> ChainStats {
        match self {
            StreamChain::Threaded(chain) => chain.stats(),
            StreamChain::Pooled(chain) => chain.stats(),
        }
    }

    fn secure_snapshot(&self) -> SecureChannelSnapshot {
        match self {
            StreamChain::Threaded(chain) => chain.secure_snapshot(),
            StreamChain::Pooled(chain) => chain.secure_snapshot(),
        }
    }

    fn shutdown(&self) -> Result<(), ProxyError> {
        match self {
            StreamChain::Threaded(chain) => chain.shutdown(),
            StreamChain::Pooled(chain) => chain.shutdown(),
        }
    }

    fn is_pooled(&self) -> bool {
        matches!(self, StreamChain::Pooled(_))
    }
}

/// A snapshot of a whole proxy, as reported to the control manager.
///
/// Flat streams and fanout sessions are reported separately: a session is
/// *not* flattened into the stream list — it appears once, with its shared
/// head chain and a per-lane breakdown (delivered / recovered / queue
/// depth per receiver lane; see [`LaneStatus`](crate::LaneStatus)), so the
/// control manager can tell one fanout with eight receivers apart from
/// eight unrelated streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProxyStatus {
    /// Proxy name.
    pub name: String,
    /// Per-stream snapshots, sorted by stream name.
    pub streams: Vec<StreamStatus>,
    /// Per-session snapshots (head chain plus per-lane stats), sorted by
    /// session name; pooled and threaded sessions report the same shape.
    pub sessions: Vec<SessionStatus>,
    /// Filter kinds this proxy can instantiate.
    pub available_kinds: Vec<String>,
    /// Sharded-runtime snapshot (per-shard queue depths, live tasks,
    /// steals) when the proxy runs a worker pool; `None` otherwise.
    pub runtime: Option<RuntimeStatus>,
    /// Per-endpoint counters of every UDP-backed stream and session
    /// (rx/tx datagrams and packets, decode errors, drops), sorted by
    /// name.
    pub transports: Vec<UdpTransportStatus>,
    /// Secure-channel counters summed over every stream and session: how
    /// many payloads were sealed, how many verified open, how many were
    /// rejected as tampered (and dropped), and how many key rotations were
    /// installed.  All-zero when the proxy carries only plaintext.
    pub secure: SecureChannelSnapshot,
}

/// One RAPIDware proxy: a set of named streams and fanout sessions, a
/// filter registry, and the machinery to reconfigure any chain at run time.
pub struct Proxy {
    name: String,
    registry: FilterRegistry,
    streams: BTreeMap<String, StreamChain>,
    sessions: BTreeMap<String, Session>,
    pooled_sessions: BTreeMap<String, PooledSession>,
    udp_streams: BTreeMap<String, UdpStreamTransport>,
    udp_sessions: BTreeMap<String, UdpSessionTransport>,
    udp_carriers: BTreeMap<String, UdpCarrier>,
    runtime: Option<Arc<Runtime>>,
    telemetry: Option<Arc<Registry>>,
}

/// Builds the latency spans for a flat stream (`stream.<name>.*`) and
/// installs them on whichever chain variant backs it.
fn attach_stream_spans(registry: &Arc<Registry>, name: &str, chain: &StreamChain) {
    let spans = ChainSpans::egress(registry, format!("stream.{name}"));
    match chain {
        StreamChain::Threaded(chain) => chain.set_spans(spans),
        StreamChain::Pooled(chain) => chain.set_spans(spans),
    }
}

impl fmt::Debug for Proxy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Proxy")
            .field("name", &self.name)
            .field("streams", &self.stream_names())
            .field("sessions", &self.session_names())
            .finish()
    }
}

impl Proxy {
    /// Creates a proxy with the built-in filter registry.
    pub fn new(name: impl Into<String>) -> Self {
        Self::with_registry(name, FilterRegistry::with_builtins())
    }

    /// Creates a proxy with a custom registry (e.g. one extended with
    /// third-party filters).
    pub fn with_registry(name: impl Into<String>, registry: FilterRegistry) -> Self {
        Self {
            name: name.into(),
            registry,
            streams: BTreeMap::new(),
            sessions: BTreeMap::new(),
            pooled_sessions: BTreeMap::new(),
            udp_streams: BTreeMap::new(),
            udp_sessions: BTreeMap::new(),
            udp_carriers: BTreeMap::new(),
            runtime: None,
            telemetry: None,
        }
    }

    /// Creates a proxy with the built-in registry **and** a sharded worker
    /// pool, so streams and sessions can be placed on the pool with
    /// [`add_stream_pooled`](Self::add_stream_pooled) and
    /// [`add_session_pooled`](Self::add_session_pooled) instead of spawning
    /// threads.  Thread-per-filter placement stays available per stream.
    pub fn with_runtime(name: impl Into<String>, config: RuntimeConfig) -> Self {
        let mut proxy = Self::new(name);
        proxy.enable_runtime(config);
        proxy
    }

    /// Starts (or replaces the handle to) the proxy's sharded runtime.
    /// Existing pooled streams and sessions keep running on the pool they
    /// were created on (each holds its own handle to it, so the old pool
    /// stays up as long as they do); new pooled placements use the new
    /// pool.
    pub fn enable_runtime(&mut self, config: RuntimeConfig) -> Arc<Runtime> {
        let runtime = Runtime::start(config);
        if let Some(registry) = &self.telemetry {
            runtime.enable_telemetry(registry);
        }
        self.runtime = Some(Arc::clone(&runtime));
        runtime
    }

    /// Enables the unified telemetry subsystem and returns its registry.
    ///
    /// From this call on, every stream and session (existing and future)
    /// records packet-lifecycle latency spans — per-batch chain latency,
    /// sampled per-filter stage timings, and ingress-to-egress end-to-end
    /// histograms — and the sharded runtime (if enabled, in either order)
    /// records its profiling histograms: task poll duration, run-queue
    /// wait, and reactor scan latency.  Read the result with
    /// [`telemetry`](Self::telemetry) / [`telemetry_json`](Self::telemetry_json)
    /// or the `TELEMETRY` control verb.
    ///
    /// Idempotent: repeat calls return the same registry.  For complete
    /// coverage enable telemetry *before* installing filters on threaded
    /// chains (their stage workers pick the spans up at spawn) and before
    /// binding shared-socket carriers (their drain-batch histogram is wired
    /// at bind time); everything else attaches retroactively.
    pub fn enable_telemetry(&mut self) -> Arc<Registry> {
        if self.telemetry.is_none() {
            self.telemetry = Some(Registry::new());
        }
        let registry = Arc::clone(self.telemetry.as_ref().expect("installed above"));
        if let Some(runtime) = &self.runtime {
            runtime.enable_telemetry(&registry);
        }
        for (name, chain) in &self.streams {
            attach_stream_spans(&registry, name, chain);
        }
        for session in self.sessions.values() {
            session.enable_telemetry(&registry);
        }
        for session in self.pooled_sessions.values() {
            session.enable_telemetry(&registry);
        }
        registry
    }

    /// The telemetry registry, if [`enable_telemetry`](Self::enable_telemetry)
    /// was called — e.g. to register application-level instruments that
    /// surface in the same snapshot.
    pub fn telemetry_registry(&self) -> Option<&Arc<Registry>> {
        self.telemetry.as_ref()
    }

    /// The sharded runtime, if one was enabled.
    pub fn runtime(&self) -> Option<&Arc<Runtime>> {
        self.runtime.as_ref()
    }

    /// Proxy name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The filter registry (e.g. to register additional kinds).
    pub fn registry_mut(&mut self) -> &mut FilterRegistry {
        &mut self.registry
    }

    /// Names of the streams currently handled by this proxy.
    pub fn stream_names(&self) -> Vec<String> {
        self.streams.keys().cloned().collect()
    }

    /// Creates a new stream through this proxy and returns its two
    /// endpoints: a sender the upstream EndPoint writes into and a receiver
    /// the downstream EndPoint reads from.  The stream starts as a null
    /// proxy (no filters).
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::Splice`] if a stream with this name already
    /// exists.
    pub fn add_stream(
        &mut self,
        name: impl Into<String>,
    ) -> Result<(DetachableSender<Packet>, DetachableReceiver<Packet>), ProxyError> {
        self.install_stream(name.into(), StreamChain::Threaded(ThreadedChain::new()?))
    }

    /// Creates a new stream placed on the proxy's sharded worker pool: the
    /// whole filter chain runs as one cooperative task on the pool's fixed
    /// workers instead of one thread per filter.  The stream supports the
    /// same live reconfiguration surface as a threaded stream.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::RuntimeDisabled`] if no runtime was enabled
    /// (see [`with_runtime`](Self::with_runtime)) or [`ProxyError::Splice`]
    /// if a stream with this name already exists.
    pub fn add_stream_pooled(
        &mut self,
        name: impl Into<String>,
    ) -> Result<(DetachableSender<Packet>, DetachableReceiver<Packet>), ProxyError> {
        let name = name.into();
        let runtime = self.runtime.as_ref().ok_or(ProxyError::RuntimeDisabled)?;
        let chain = runtime.add_chain(name.clone());
        self.install_stream(name, StreamChain::Pooled(chain))
    }

    /// Creates a new stream whose filter workers process packets in batches
    /// of up to `batch_size` (see [`ThreadedChain::with_batch_size`]), with
    /// inter-stage pipes buffering up to `capacity` packets.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::Splice`] if a stream with this name already
    /// exists.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `batch_size` is zero.
    pub fn add_stream_batched(
        &mut self,
        name: impl Into<String>,
        capacity: usize,
        batch_size: usize,
    ) -> Result<(DetachableSender<Packet>, DetachableReceiver<Packet>), ProxyError> {
        self.install_stream(
            name.into(),
            StreamChain::Threaded(ThreadedChain::with_batch_size(capacity, batch_size)?),
        )
    }

    fn install_stream(
        &mut self,
        name: String,
        chain: StreamChain,
    ) -> Result<(DetachableSender<Packet>, DetachableReceiver<Packet>), ProxyError> {
        if self.streams.contains_key(&name) {
            return Err(ProxyError::Splice(format!("stream {name} already exists")));
        }
        let (input, output) = match &chain {
            StreamChain::Threaded(chain) => (chain.input(), chain.output()),
            StreamChain::Pooled(chain) => (chain.input(), chain.output()),
        };
        if let Some(registry) = &self.telemetry {
            attach_stream_spans(registry, &name, &chain);
        }
        self.streams.insert(name, chain);
        Ok((input, output))
    }

    fn chain(&self, stream: &str) -> Result<&StreamChain, ProxyError> {
        self.streams
            .get(stream)
            .ok_or_else(|| ProxyError::UnknownStream(stream.to_string()))
    }

    /// Creates a fanout session through this proxy: one upstream input, a
    /// shared head chain, and (initially zero) receiver lanes added through
    /// [`Session::add_lane`].  Returns the session's input endpoint; use
    /// [`session`](Self::session) to add lanes and per-lane filters.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::Splice`] if a session with this name already
    /// exists.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `batch_size` is zero (see
    /// [`Session::with_config`]).
    pub fn add_session(
        &mut self,
        name: impl Into<String>,
        capacity: usize,
        batch_size: usize,
    ) -> Result<DetachableSender<Packet>, ProxyError> {
        let name = name.into();
        if self.sessions.contains_key(&name) || self.pooled_sessions.contains_key(&name) {
            return Err(ProxyError::Splice(format!("session {name} already exists")));
        }
        let session =
            Session::with_config(name.clone(), self.registry.clone(), capacity, batch_size)?;
        if let Some(registry) = &self.telemetry {
            session.enable_telemetry(registry);
        }
        let input = session.input();
        self.sessions.insert(name, session);
        Ok(input)
    }

    /// Creates a fanout session hosted on the sharded worker pool: the
    /// shared head chain, the fanout stage, and every receiver lane run as
    /// cooperative tasks, so the session costs no dedicated threads.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::RuntimeDisabled`] if no runtime was enabled or
    /// [`ProxyError::Splice`] if a session with this name already exists.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `batch_size` is zero.
    pub fn add_session_pooled(
        &mut self,
        name: impl Into<String>,
        capacity: usize,
        batch_size: usize,
    ) -> Result<DetachableSender<Packet>, ProxyError> {
        let name = name.into();
        let runtime = self.runtime.as_ref().ok_or(ProxyError::RuntimeDisabled)?;
        if self.pooled_sessions.contains_key(&name) || self.sessions.contains_key(&name) {
            return Err(ProxyError::Splice(format!("session {name} already exists")));
        }
        let session =
            runtime.add_session_with(name.clone(), self.registry.clone(), capacity, batch_size);
        if let Some(registry) = &self.telemetry {
            session.enable_telemetry(registry);
        }
        let input = session.input();
        self.pooled_sessions.insert(name, session);
        Ok(input)
    }

    /// The named fanout session.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::UnknownSession`] for unknown sessions.
    pub fn session(&self, name: &str) -> Result<&Session, ProxyError> {
        self.sessions
            .get(name)
            .ok_or_else(|| ProxyError::UnknownSession(name.to_string()))
    }

    /// The named pooled fanout session.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::UnknownSession`] for unknown sessions.
    pub fn pooled_session(&self, name: &str) -> Result<&PooledSession, ProxyError> {
        self.pooled_sessions
            .get(name)
            .ok_or_else(|| ProxyError::UnknownSession(name.to_string()))
    }

    /// Names of the fanout sessions on this proxy (threaded and pooled).
    pub fn session_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .sessions
            .keys()
            .chain(self.pooled_sessions.keys())
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Creates a stream whose endpoints are **real UDP sockets**: an
    /// ingress socket decodes arriving datagrams straight into the chain
    /// input, and the chain output is framed and sent to
    /// `config.egress_peer`, one packet per datagram.  The chain itself is
    /// an ordinary stream — it appears in [`stream_names`](Self::stream_names),
    /// accepts live filter splices through the usual control surface, and
    /// runs thread-per-filter or on the worker pool per `config.pooled`.
    ///
    /// The returned [`UdpStreamHandle`] carries the concrete socket
    /// addresses (ports are ephemeral by default), the per-endpoint
    /// counters, and [`close_input`](UdpStreamHandle::close_input) for a
    /// clean end of stream; the same counters surface in
    /// [`ProxyStatus::transports`].
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::Splice`] if the stream name is taken,
    /// [`ProxyError::RuntimeDisabled`] for a pooled placement without a
    /// runtime, or [`ProxyError::Transport`] if a socket cannot be bound.
    ///
    /// # Panics
    ///
    /// Panics if `config.capacity` is zero.
    pub fn add_stream_udp(
        &mut self,
        name: impl Into<String>,
        config: UdpStreamConfig,
    ) -> Result<UdpStreamHandle, ProxyError> {
        let name = name.into();
        let chain = if config.pooled {
            let runtime = self.runtime.as_ref().ok_or(ProxyError::RuntimeDisabled)?;
            StreamChain::Pooled(runtime.add_chain_with(
                name.clone(),
                config.capacity,
                config.batch_size.max(1),
            ))
        } else {
            StreamChain::Threaded(ThreadedChain::with_batch_size(
                config.capacity,
                config.batch_size.max(1),
            )?)
        };
        let (input, output) = self.install_stream(name.clone(), chain)?;
        let udp_config = UdpConfig::default()
            .with_capacity(config.capacity)
            .with_batch_size(config.batch_size.max(1));
        let ingress = UdpIngress::bind_into(config.ingress_bind, input.clone(), &udp_config)
            .map_err(|err| self.transport_failure(&name, err))?;
        let egress = UdpEgress::drain(output, config.egress_peer, &udp_config)
            .map_err(|err| self.transport_failure(&name, err))?;
        let handle = UdpStreamHandle {
            ingress_addr: ingress.local_addr(),
            egress_addr: egress.local_addr(),
            ingress_stats: ingress.stats(),
            egress_stats: egress.stats(),
            input: input.clone(),
        };
        self.udp_streams.insert(
            name,
            UdpStreamTransport {
                ingress,
                egress,
                input,
            },
        );
        Ok(handle)
    }

    /// Removes the half-installed stream after a socket failure and wraps
    /// the error; an `add_stream_udp` that fails leaves no trace behind.
    fn transport_failure(&mut self, name: &str, err: std::io::Error) -> ProxyError {
        if let Some(chain) = self.streams.remove(name) {
            let _ = chain.shutdown();
        }
        ProxyError::Transport(err.to_string())
    }

    /// Creates a fanout session whose endpoints are **real UDP sockets**:
    /// one ingress socket feeding the shared head chain, and one egress
    /// socket per `config.lanes` entry sending that lane's packets to its
    /// peer.  The session is an ordinary session otherwise — it appears in
    /// [`session_names`](Self::session_names) and accepts per-lane filter
    /// splices through [`session`](Self::session) /
    /// [`pooled_session`](Self::pooled_session) (per `config.pooled`).
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::Splice`] if the session name is taken,
    /// [`ProxyError::RuntimeDisabled`] for a pooled placement without a
    /// runtime, or [`ProxyError::Transport`] if a socket cannot be bound.
    ///
    /// # Panics
    ///
    /// Panics if `config.capacity` is zero.
    pub fn add_session_udp(
        &mut self,
        name: impl Into<String>,
        config: UdpSessionConfig,
    ) -> Result<UdpSessionHandle, ProxyError> {
        let name = name.into();
        let input = if config.pooled {
            self.add_session_pooled(name.clone(), config.capacity, config.batch_size.max(1))?
        } else {
            self.add_session(name.clone(), config.capacity, config.batch_size.max(1))?
        };
        let udp_config = UdpConfig::default()
            .with_capacity(config.capacity)
            .with_batch_size(config.batch_size.max(1));
        let result = (|| -> Result<(UdpIngress, Vec<(String, UdpEgress)>), ProxyError> {
            let ingress = UdpIngress::bind_into(config.ingress_bind, input.clone(), &udp_config)
                .map_err(|err| ProxyError::Transport(err.to_string()))?;
            let mut lanes = Vec::with_capacity(config.lanes.len());
            for (lane_name, peer) in &config.lanes {
                let lane_output = if config.pooled {
                    self.pooled_session(&name)?.add_lane(lane_name)?
                } else {
                    self.session(&name)?.add_lane(lane_name)?
                };
                let egress = UdpEgress::drain(lane_output, *peer, &udp_config)
                    .map_err(|err| ProxyError::Transport(err.to_string()))?;
                lanes.push((lane_name.clone(), egress));
            }
            Ok((ingress, lanes))
        })();
        let (ingress, lanes) = match result {
            Ok(parts) => parts,
            Err(err) => {
                // Tear the half-installed session down so the name is free.
                if let Some(session) = self.sessions.remove(&name) {
                    let _ = session.shutdown();
                }
                if let Some(session) = self.pooled_sessions.remove(&name) {
                    let _ = session.shutdown();
                }
                return Err(err);
            }
        };
        let handle = UdpSessionHandle {
            ingress_addr: ingress.local_addr(),
            ingress_stats: ingress.stats(),
            lanes: lanes
                .iter()
                .map(|(lane_name, egress)| (lane_name.clone(), egress.stats()))
                .collect(),
            input: input.clone(),
        };
        self.udp_sessions.insert(
            name,
            UdpSessionTransport {
                ingress,
                lanes,
                input,
            },
        );
        Ok(handle)
    }

    /// Binds a **shared-socket carrier**: one UDP socket that many pooled
    /// streams and sessions ride at once, demultiplexed by the stream id in
    /// every packet header.  Unlike [`add_stream_udp`](Self::add_stream_udp)
    /// (two pump threads per socket), a carrier costs zero threads — the
    /// runtime's readiness reactor wakes pool tasks that drain and flush
    /// the socket in batches.
    ///
    /// Place work on the carrier with
    /// [`add_stream_udp_shared`](Self::add_stream_udp_shared) and
    /// [`add_session_udp_shared`](Self::add_session_udp_shared); the
    /// carrier's socket-wide counters (and its unknown-stream drop count)
    /// appear in [`ProxyStatus::transports`] with `shared` set.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::RuntimeDisabled`] without a runtime,
    /// [`ProxyError::Splice`] if the carrier name is taken, or
    /// [`ProxyError::Transport`] if the socket cannot be bound.
    ///
    /// # Panics
    ///
    /// Panics if `config.capacity` is zero.
    pub fn add_udp_carrier(
        &mut self,
        name: impl Into<String>,
        config: UdpCarrierConfig,
    ) -> Result<UdpCarrierHandle, ProxyError> {
        let name = name.into();
        let runtime = self.runtime.as_ref().ok_or(ProxyError::RuntimeDisabled)?;
        if self.udp_carriers.contains_key(&name) {
            return Err(ProxyError::Splice(format!("carrier {name} already exists")));
        }
        let udp_config = UdpConfig::default()
            .with_capacity(config.capacity)
            .with_batch_size(config.batch_size.max(1));
        let ingress = Arc::new(
            SharedUdpIngress::bind(config.bind, &udp_config)
                .map_err(|err| ProxyError::Transport(err.to_string()))?,
        );
        let egress = Arc::new(
            SharedUdpEgress::over(ingress.socket(), &udp_config)
                .map_err(|err| ProxyError::Transport(err.to_string()))?,
        );
        // Two reactor-driven tasks per *carrier* (not per stream): the
        // receive side wakes on socket readability, the send side on pipe
        // watchers installed per attached lane (readability would be
        // noise for it).
        let ingress_driver = runtime.drive_socket(
            ingress.socket(),
            SocketInterest::Readable,
            Arc::new(SharedIngressWork {
                ingress: Arc::clone(&ingress),
                drain_batch: self
                    .telemetry
                    .as_ref()
                    .map(|registry| registry.histogram(format!("udp.{name}.drain_batch"))),
            }),
        );
        let egress_driver = runtime.drive_socket(
            egress.socket(),
            SocketInterest::Writable,
            Arc::new(SharedEgressWork {
                egress: Arc::clone(&egress),
            }),
        );
        let handle = UdpCarrierHandle {
            ingress: Arc::clone(&ingress),
            egress_stats: egress.stats(),
        };
        self.udp_carriers.insert(
            name,
            UdpCarrier {
                ingress,
                egress,
                ingress_driver,
                egress_driver,
            },
        );
        Ok(handle)
    }

    /// Names of the shared-socket carriers on this proxy.
    pub fn carrier_names(&self) -> Vec<String> {
        self.udp_carriers.keys().cloned().collect()
    }

    /// Creates a pooled stream riding a shared-socket carrier: datagrams
    /// arriving on the carrier whose stream id is in `config.streams` are
    /// decoded straight into the chain input, and the chain output is
    /// multiplexed back onto the carrier's socket towards
    /// `config.egress_peer`, ending with a per-stream FIN.  The chain is an
    /// ordinary pooled stream otherwise — it appears in
    /// [`stream_names`](Self::stream_names) and accepts live filter
    /// splices.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::UnknownCarrier`] if `config.carrier` does not
    /// exist, [`ProxyError::Splice`] if the stream name is taken, a stream
    /// id is already routed on the carrier, or `config.streams` is empty.
    ///
    /// # Panics
    ///
    /// Panics if `config.capacity` is zero.
    pub fn add_stream_udp_shared(
        &mut self,
        name: impl Into<String>,
        config: SharedUdpStreamConfig,
    ) -> Result<SharedUdpStreamHandle, ProxyError> {
        let name = name.into();
        if config.streams.is_empty() {
            return Err(ProxyError::Splice(format!(
                "shared stream {name} needs at least one stream id"
            )));
        }
        if !self.udp_carriers.contains_key(&config.carrier) {
            return Err(ProxyError::UnknownCarrier(config.carrier.clone()));
        }
        let runtime = self.runtime.as_ref().ok_or(ProxyError::RuntimeDisabled)?;
        let chain = StreamChain::Pooled(runtime.add_chain_with(
            name.clone(),
            config.capacity,
            config.batch_size.max(1),
        ));
        let (input, output) = self.install_stream(name.clone(), chain)?;
        let carrier = self
            .udp_carriers
            .get(&config.carrier)
            .expect("carrier existence checked above");
        let mut opened = Vec::with_capacity(config.streams.len());
        for stream in &config.streams {
            match carrier.ingress.open_stream_into(*stream, input.clone()) {
                Ok(()) => opened.push(*stream),
                Err(err) => {
                    for stream in opened {
                        carrier.ingress.close_stream(stream);
                    }
                    if let Some(chain) = self.streams.remove(&name) {
                        let _ = chain.shutdown();
                    }
                    return Err(ProxyError::Splice(format!(
                        "carrier {}: {err}",
                        config.carrier
                    )));
                }
            }
        }
        // Watch before attach: the egress task must wake for frames that
        // land in the output pipe from here on.
        carrier.egress_driver.watch_source(&output);
        carrier
            .egress
            .attach(config.streams[0], config.egress_peer, output);
        carrier.egress_driver.kick();
        Ok(SharedUdpStreamHandle {
            carrier: config.carrier,
            ingress_addr: carrier.ingress.local_addr(),
            streams: config.streams,
            input,
        })
    }

    /// Creates a pooled fanout session riding a shared-socket carrier:
    /// datagrams for `config.streams` feed the shared head chain, and each
    /// `config.lanes` entry multiplexes that lane's packets back onto the
    /// carrier's socket towards its own peer (FIN per lane).  The session
    /// is an ordinary pooled session otherwise — per-lane filters splice
    /// through [`pooled_session`](Self::pooled_session).
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::UnknownCarrier`] if `config.carrier` does not
    /// exist, [`ProxyError::RuntimeDisabled`] without a runtime, or
    /// [`ProxyError::Splice`] if the session name is taken, a stream id is
    /// already routed, or `config.streams` is empty.
    ///
    /// # Panics
    ///
    /// Panics if `config.capacity` is zero.
    pub fn add_session_udp_shared(
        &mut self,
        name: impl Into<String>,
        config: SharedUdpSessionConfig,
    ) -> Result<SharedUdpSessionHandle, ProxyError> {
        let name = name.into();
        if config.streams.is_empty() {
            return Err(ProxyError::Splice(format!(
                "shared session {name} needs at least one stream id"
            )));
        }
        if !self.udp_carriers.contains_key(&config.carrier) {
            return Err(ProxyError::UnknownCarrier(config.carrier.clone()));
        }
        let input = self.add_session_pooled(name.clone(), config.capacity, config.batch_size.max(1))?;
        let mut opened = Vec::with_capacity(config.streams.len());
        let outcome = (|| -> Result<(), ProxyError> {
            let carrier = self
                .udp_carriers
                .get(&config.carrier)
                .expect("carrier existence checked above");
            for stream in &config.streams {
                carrier
                    .ingress
                    .open_stream_into(*stream, input.clone())
                    .map_err(|err| {
                        ProxyError::Splice(format!("carrier {}: {err}", config.carrier))
                    })?;
                opened.push(*stream);
            }
            for (lane_name, peer) in &config.lanes {
                let lane_output = self.pooled_session(&name)?.add_lane(lane_name)?;
                carrier.egress_driver.watch_source(&lane_output);
                carrier.egress.attach(config.streams[0], *peer, lane_output);
            }
            carrier.egress_driver.kick();
            Ok(())
        })();
        if let Err(err) = outcome {
            // Tear the half-installed session down so the name and the
            // routed stream ids are free again.  Already-attached egress
            // lanes finish silently once the session's pipes close.
            if let Some(carrier) = self.udp_carriers.get(&config.carrier) {
                for stream in opened {
                    carrier.ingress.close_stream(stream);
                }
            }
            if let Some(session) = self.pooled_sessions.remove(&name) {
                let _ = session.shutdown();
            }
            return Err(err);
        }
        let carrier = &self.udp_carriers[&config.carrier];
        Ok(SharedUdpSessionHandle {
            carrier: config.carrier.clone(),
            ingress_addr: carrier.ingress.local_addr(),
            streams: config.streams,
            lanes: config.lanes.iter().map(|(lane, _)| lane.clone()).collect(),
            input,
        })
    }

    /// Instantiates a filter from `spec` and splices it into `stream` at
    /// `position`.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::UnknownStream`], [`ProxyError::UnknownFilterKind`],
    /// spec validation errors, or splice errors.
    pub fn insert_filter(
        &self,
        stream: &str,
        position: usize,
        spec: &FilterSpec,
    ) -> Result<(), ProxyError> {
        let filter = self.registry.instantiate(spec)?;
        self.insert_filter_boxed(stream, position, filter)
    }

    /// Splices an already-constructed filter into `stream` at `position`
    /// (the path used when a filter comes from an uploaded
    /// [`FilterContainer`](rapidware_filters::FilterContainer)).
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::UnknownStream`] or splice errors.
    pub fn insert_filter_boxed(
        &self,
        stream: &str,
        position: usize,
        filter: Box<dyn Filter>,
    ) -> Result<(), ProxyError> {
        self.chain(stream)?.insert(position, filter)
    }

    /// Removes and returns the filter at `position` on `stream`.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::UnknownStream`], position errors, or splice
    /// errors.
    pub fn remove_filter(
        &self,
        stream: &str,
        position: usize,
    ) -> Result<Box<dyn Filter>, ProxyError> {
        self.chain(stream)?.remove(position)
    }

    /// Moves a filter from one position to another on `stream` by removing
    /// and re-inserting it (two splices, matching how the paper's
    /// ControlThread reorders its filter vector).
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::UnknownStream`], position errors, or splice
    /// errors.
    pub fn move_filter(&self, stream: &str, from: usize, to: usize) -> Result<(), ProxyError> {
        let chain = self.chain(stream)?;
        if to > chain.len().saturating_sub(1) {
            return Err(ProxyError::PositionOutOfRange {
                position: to,
                len: chain.len(),
            });
        }
        let filter = chain.remove(from)?;
        chain.insert(to, filter)
    }

    /// Names of the filters installed on `stream`.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::UnknownStream`] for unknown streams.
    pub fn filter_names(&self, stream: &str) -> Result<Vec<String>, ProxyError> {
        Ok(self.chain(stream)?.names())
    }

    /// Runtime statistics of `stream`.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::UnknownStream`] for unknown streams.
    pub fn stream_stats(&self, stream: &str) -> Result<ChainStats, ProxyError> {
        Ok(self.chain(stream)?.stats())
    }

    /// A full status snapshot (what the control manager renders).
    pub fn status(&self) -> ProxyStatus {
        let mut sessions: Vec<SessionStatus> = self
            .sessions
            .values()
            .map(Session::status)
            .chain(self.pooled_sessions.values().map(PooledSession::status))
            .collect();
        sessions.sort_by(|a, b| a.name.cmp(&b.name));
        let mut transports: Vec<UdpTransportStatus> = self
            .udp_streams
            .iter()
            .map(|(name, transport)| transport.status(name))
            .chain(
                self.udp_sessions
                    .iter()
                    .map(|(name, transport)| transport.status(name)),
            )
            .chain(
                self.udp_carriers
                    .iter()
                    .map(|(name, carrier)| carrier.status(name)),
            )
            .collect();
        transports.sort_by(|a, b| a.name.cmp(&b.name));
        let streams: Vec<StreamStatus> = self
            .streams
            .iter()
            .map(|(name, chain)| StreamStatus {
                name: name.clone(),
                filters: chain.names(),
                stats: chain.stats(),
                pooled: chain.is_pooled(),
                secure: chain.secure_snapshot(),
            })
            .collect();
        let mut secure = SecureChannelSnapshot::default();
        for stream in &streams {
            secure.merge(stream.secure);
        }
        for session in &sessions {
            secure.merge(session.secure);
        }
        ProxyStatus {
            name: self.name.clone(),
            streams,
            sessions,
            available_kinds: self.registry.kinds(),
            runtime: self.runtime.as_ref().map(|runtime| runtime.status()),
            transports,
            secure,
        }
    }

    /// A unified telemetry snapshot, or `None` until
    /// [`enable_telemetry`](Self::enable_telemetry) is called.
    ///
    /// The snapshot carries every registered instrument — the latency
    /// histograms (`stream.*`/`session.*` batch, per-stage, and end-to-end
    /// spans), the runtime profiling histograms (`runtime.poll_ns`,
    /// `runtime.queue_wait_ns`, `runtime.reactor.scan_ns`), and carrier
    /// drain-batch histograms (`udp.*.drain_batch`) — plus the legacy
    /// stats structs folded in as flat metrics under the same scopes:
    /// per-stream chain and secure-channel counters, per-session head and
    /// lane counters, per-transport rx/tx counters, and the runtime's
    /// worker/queue/steal/poll counters.
    pub fn telemetry(&self) -> Option<TelemetrySnapshot> {
        let registry = self.telemetry.as_ref()?;
        let mut snapshot = registry.snapshot();
        for (name, chain) in &self.streams {
            snapshot.push_stats(&format!("stream.{name}"), chain.stats().snapshot());
            let secure = chain.secure_snapshot();
            if !secure.is_empty() {
                snapshot.push_stats(&format!("stream.{name}.secure"), secure.snapshot());
            }
        }
        let sessions = self
            .sessions
            .values()
            .map(Session::status)
            .chain(self.pooled_sessions.values().map(PooledSession::status));
        for session in sessions {
            let scope = format!("session.{}", session.name);
            snapshot.push_stats(&format!("{scope}.head"), session.head_stats.snapshot());
            for lane in &session.lanes {
                snapshot.push_stats(&format!("{scope}.lane.{}", lane.name), lane.snapshot());
            }
            if !session.secure.is_empty() {
                snapshot.push_stats(&format!("{scope}.secure"), session.secure.snapshot());
            }
        }
        let transports = self
            .udp_streams
            .iter()
            .map(|(name, transport)| transport.status(name))
            .chain(
                self.udp_sessions
                    .iter()
                    .map(|(name, transport)| transport.status(name)),
            )
            .chain(
                self.udp_carriers
                    .iter()
                    .map(|(name, carrier)| carrier.status(name)),
            );
        for transport in transports {
            let scope = format!("udp.{}", transport.name);
            snapshot.push_stats(&format!("{scope}.ingress"), transport.ingress.snapshot());
            snapshot.push_stats(&format!("{scope}.egress"), transport.egress.snapshot());
            if transport.shared {
                snapshot.push_stats(
                    &scope,
                    vec![rapidware_telemetry::Metric::new(
                        "unknown_streams",
                        transport.unknown_streams,
                    )],
                );
            }
        }
        if let Some(runtime) = &self.runtime {
            snapshot.push_stats("runtime", runtime.status().snapshot());
        }
        Some(snapshot)
    }

    /// The [`telemetry`](Self::telemetry) snapshot rendered as JSON (the
    /// payload of the `TELEMETRY` control verb), or `None` until telemetry
    /// is enabled.
    pub fn telemetry_json(&self) -> Option<String> {
        self.telemetry().map(|snapshot| snapshot.to_json())
    }

    /// Shuts down every stream, waiting for all filter threads to exit.
    ///
    /// # Errors
    ///
    /// Returns the first worker failure encountered (shutdown continues for
    /// the remaining streams regardless).
    pub fn shutdown(&mut self) -> Result<(), ProxyError> {
        let mut first_error = None;
        // Transport teardown brackets the chain teardown: ingress pumps
        // stop first (while their chains are still draining, so a pump
        // blocked on chain back-pressure can always exit), the chain
        // inputs close so every chain flushes, and the egress pumps are
        // joined last — after the chains have delivered their final
        // output, so nothing in flight is stranded.
        let mut udp_streams = std::mem::take(&mut self.udp_streams);
        let mut udp_sessions = std::mem::take(&mut self.udp_sessions);
        let udp_carriers = std::mem::take(&mut self.udp_carriers);
        for transport in udp_streams.values_mut() {
            transport.ingress.shutdown();
            transport.input.close();
        }
        for transport in udp_sessions.values_mut() {
            transport.ingress.shutdown();
            transport.input.close();
        }
        // Carriers follow the same bracket: the receive-side task stops
        // first (one final drain, then no new arrivals), the routes close
        // so every riding chain and session sees end-of-input and flushes.
        for carrier in udp_carriers.values() {
            if let Err(err) = carrier.ingress_driver.shutdown() {
                first_error.get_or_insert(err);
            }
            carrier.ingress.close_all_streams();
        }
        for (_, chain) in std::mem::take(&mut self.streams) {
            if let Err(err) = chain.shutdown() {
                first_error.get_or_insert(err);
            }
        }
        for (_, session) in std::mem::take(&mut self.sessions) {
            if let Err(err) = session.shutdown() {
                first_error.get_or_insert(err);
            }
        }
        for (_, session) in std::mem::take(&mut self.pooled_sessions) {
            if let Err(err) = session.shutdown() {
                first_error.get_or_insert(err);
            }
        }
        for transport in udp_streams.values_mut() {
            transport.egress.shutdown();
        }
        for transport in udp_sessions.values_mut() {
            for (_, egress) in &mut transport.lanes {
                egress.shutdown();
            }
        }
        // The carriers' send-side tasks stop after the chains have
        // delivered their final output (one last flush pass each), so
        // nothing in flight is stranded.
        for carrier in udp_carriers.values() {
            if let Err(err) = carrier.egress_driver.shutdown() {
                first_error.get_or_insert(err);
            }
        }
        // Pooled chains and sessions are down; stopping the workers last
        // means every task could run to completion.
        if let Some(runtime) = self.runtime.take() {
            if let Err(err) = runtime.shutdown() {
                first_error.get_or_insert(err);
            }
        }
        match first_error {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }
}

impl Drop for Proxy {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapidware_packet::{PacketKind, SeqNo, StreamId};

    fn packet(seq: u64) -> Packet {
        Packet::new(StreamId::new(1), SeqNo::new(seq), PacketKind::AudioData, vec![0u8; 32])
    }

    #[test]
    fn add_stream_and_forward_packets() {
        let mut proxy = Proxy::new("edge-proxy");
        let (input, output) = proxy.add_stream("audio").unwrap();
        input.send(packet(0)).unwrap();
        assert_eq!(output.recv().unwrap().seq().value(), 0);
        assert_eq!(proxy.stream_names(), vec!["audio"]);
        assert_eq!(proxy.name(), "edge-proxy");
        proxy.shutdown().unwrap();
    }

    #[test]
    fn duplicate_stream_names_are_rejected() {
        let mut proxy = Proxy::new("p");
        proxy.add_stream("audio").unwrap();
        assert!(proxy.add_stream("audio").is_err());
    }

    #[test]
    fn insert_and_remove_filters_by_spec() {
        let mut proxy = Proxy::new("p");
        let (input, output) = proxy.add_stream("audio").unwrap();
        proxy
            .insert_filter("audio", 0, &FilterSpec::new("fec-encoder"))
            .unwrap();
        proxy
            .insert_filter("audio", 1, &FilterSpec::new("fec-decoder"))
            .unwrap();
        assert_eq!(
            proxy.filter_names("audio").unwrap(),
            vec!["fec-encoder(6,4)", "fec-decoder(6,4)"]
        );
        // Traffic flows through the configured chain.
        for seq in 0..8 {
            input.send(packet(seq)).unwrap();
        }
        let mut received = Vec::new();
        for _ in 0..8 {
            received.push(output.recv().unwrap());
        }
        assert_eq!(received.len(), 8);

        let removed = proxy.remove_filter("audio", 0).unwrap();
        assert_eq!(removed.name(), "fec-encoder(6,4)");
        assert_eq!(proxy.filter_names("audio").unwrap(), vec!["fec-decoder(6,4)"]);
        proxy.shutdown().unwrap();
    }

    #[test]
    fn unknown_streams_and_kinds_are_reported() {
        let proxy = Proxy::new("p");
        assert!(matches!(
            proxy.insert_filter("nope", 0, &FilterSpec::new("null")),
            Err(ProxyError::UnknownStream(_))
        ));
        assert!(matches!(
            proxy.filter_names("nope"),
            Err(ProxyError::UnknownStream(_))
        ));
    }

    #[test]
    fn move_filter_reorders_live_chain() {
        let mut proxy = Proxy::new("p");
        let (_input, _output) = proxy.add_stream("s").unwrap();
        proxy
            .insert_filter("s", 0, &FilterSpec::new("tap").with_param("name", "a"))
            .unwrap();
        proxy
            .insert_filter("s", 1, &FilterSpec::new("tap").with_param("name", "b"))
            .unwrap();
        proxy.move_filter("s", 1, 0).unwrap();
        assert_eq!(proxy.filter_names("s").unwrap(), vec!["b", "a"]);
        assert!(proxy.move_filter("s", 0, 5).is_err());
        proxy.shutdown().unwrap();
    }

    #[test]
    fn status_reports_streams_and_kinds() {
        let mut proxy = Proxy::new("status-proxy");
        proxy.add_stream("audio").unwrap();
        proxy.add_stream("video").unwrap();
        proxy
            .insert_filter("video", 0, &FilterSpec::new("rate-limiter"))
            .unwrap();
        let status = proxy.status();
        assert_eq!(status.name, "status-proxy");
        assert_eq!(status.streams.len(), 2);
        assert_eq!(status.streams[0].name, "audio");
        assert!(status.streams[1].filters[0].starts_with("rate-limiter"));
        assert!(status.available_kinds.contains(&"fec-encoder".to_string()));
        proxy.shutdown().unwrap();
    }

    #[test]
    fn sessions_report_per_lane_status_instead_of_flattened_streams() {
        let mut proxy = Proxy::new("edge");
        proxy.add_stream("plain").unwrap();
        let input = proxy.add_session("fanout", 64, 8).unwrap();
        let wired = proxy.session("fanout").unwrap().add_lane("wired").unwrap();
        let wlan = proxy.session("fanout").unwrap().add_lane("wlan").unwrap();
        for seq in 0..4 {
            input.send(packet(seq)).unwrap();
        }
        for _ in 0..4 {
            wired.recv().unwrap();
            wlan.recv().unwrap();
        }
        let status = proxy.status();
        // The session is not flattened into the stream list.
        assert_eq!(status.streams.len(), 1);
        assert_eq!(status.streams[0].name, "plain");
        assert_eq!(status.sessions.len(), 1);
        let session = &status.sessions[0];
        assert_eq!(session.name, "fanout");
        let lane_names: Vec<&str> = session.lanes.iter().map(|l| l.name.as_str()).collect();
        assert_eq!(lane_names, vec!["wired", "wlan"]);
        for lane in &session.lanes {
            assert_eq!(lane.delivered, 4);
            assert_eq!(lane.queue_depth, 0);
        }
        // Duplicate and unknown session names are rejected.
        assert!(proxy.add_session("fanout", 64, 8).is_err());
        assert!(matches!(proxy.session("nope"), Err(ProxyError::UnknownSession(_))));
        proxy.shutdown().unwrap();
    }

    #[test]
    fn pooled_streams_ride_the_worker_pool_through_the_same_control_surface() {
        let mut proxy = Proxy::with_runtime("pooled", RuntimeConfig::new(2, 8));
        let (input, output) = proxy.add_stream_pooled("audio").unwrap();
        proxy.insert_filter("audio", 0, &FilterSpec::new("fec-encoder")).unwrap();
        proxy.insert_filter("audio", 1, &FilterSpec::new("fec-decoder")).unwrap();
        assert_eq!(
            proxy.filter_names("audio").unwrap(),
            vec!["fec-encoder(6,4)", "fec-decoder(6,4)"]
        );
        for seq in 0..8 {
            input.send(packet(seq)).unwrap();
        }
        for _ in 0..8 {
            output.recv().unwrap();
        }
        let removed = proxy.remove_filter("audio", 0).unwrap();
        assert_eq!(removed.name(), "fec-encoder(6,4)");
        let status = proxy.status();
        assert!(status.streams[0].pooled);
        let runtime = status.runtime.expect("runtime status present in pooled mode");
        assert_eq!(runtime.workers, 2);
        assert_eq!(runtime.shards.len(), 2);
        proxy.shutdown().unwrap();
    }

    #[test]
    fn pooled_sessions_report_like_threaded_ones() {
        let mut proxy = Proxy::with_runtime("mixed", RuntimeConfig::new(2, 8));
        let input = proxy.add_session_pooled("fanout", 64, 8).unwrap();
        let lane = proxy.pooled_session("fanout").unwrap().add_lane("wired").unwrap();
        for seq in 0..4 {
            input.send(packet(seq)).unwrap();
        }
        for _ in 0..4 {
            lane.recv().unwrap();
        }
        let status = proxy.status();
        assert_eq!(status.sessions.len(), 1);
        assert_eq!(status.sessions[0].lanes[0].delivered, 4);
        assert_eq!(proxy.session_names(), vec!["fanout"]);
        // Threaded and pooled sessions share one namespace.
        assert!(proxy.add_session("fanout", 64, 8).is_err());
        assert!(proxy.add_session_pooled("fanout", 64, 8).is_err());
        assert!(matches!(
            proxy.pooled_session("nope"),
            Err(ProxyError::UnknownSession(_))
        ));
        proxy.shutdown().unwrap();
    }

    #[test]
    fn replacing_the_runtime_keeps_existing_pooled_streams_alive() {
        // Regression: a pooled chain holds its own handle to the pool it
        // runs on, so enable_runtime replacing the proxy's handle must not
        // stop the old workers under a live stream.
        let mut proxy = Proxy::with_runtime("swap", RuntimeConfig::new(1, 4));
        let (input, output) = proxy.add_stream_pooled("s").unwrap();
        proxy.enable_runtime(RuntimeConfig::new(2, 4));
        let producer = std::thread::spawn(move || {
            for seq in 0..300u64 {
                input.send(packet(seq)).unwrap();
            }
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        let mut received = 0u64;
        while received < 300 {
            assert!(
                std::time::Instant::now() < deadline,
                "stream on the replaced runtime stopped flowing ({received} of 300)"
            );
            if output.recv_timeout(std::time::Duration::from_millis(50)).is_ok() {
                received += 1;
            }
        }
        producer.join().unwrap();
        proxy.shutdown().unwrap();
    }

    #[test]
    fn pooled_placement_requires_an_enabled_runtime() {
        let mut proxy = Proxy::new("plain");
        assert!(matches!(
            proxy.add_stream_pooled("s"),
            Err(ProxyError::RuntimeDisabled)
        ));
        assert!(matches!(
            proxy.add_session_pooled("s", 64, 8),
            Err(ProxyError::RuntimeDisabled)
        ));
        assert!(proxy.runtime().is_none());
        assert!(proxy.status().runtime.is_none());
    }

    fn encode_to(socket: &std::net::UdpSocket, peer: std::net::SocketAddr, packet: &Packet) {
        let mut scratch = Vec::new();
        packet.encode_into(&mut scratch);
        socket.send_to(&scratch, peer).unwrap();
    }

    #[test]
    fn udp_streams_carry_packets_over_real_sockets() {
        let mut proxy = Proxy::new("wire");
        // The application's receiving endpoint.
        let app_rx = rapidware_transport::UdpIngress::bind(
            "127.0.0.1:0",
            &rapidware_transport::UdpConfig::default(),
        )
        .unwrap();
        let handle = proxy
            .add_stream_udp("audio", UdpStreamConfig::to_peer(app_rx.local_addr()))
            .unwrap();
        // The stream is an ordinary stream: filters splice in live.
        proxy.insert_filter("audio", 0, &FilterSpec::new("tap").with_param("name", "wire")).unwrap();
        assert_eq!(proxy.stream_names(), vec!["audio"]);

        let app_tx = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
        for seq in 0..16 {
            encode_to(&app_tx, handle.ingress_addr(), &packet(seq));
        }
        for seq in 0..16 {
            assert_eq!(app_rx.recv().unwrap().seq().value(), seq);
        }
        // Ending the stream from the proxy side flushes and FINs.
        handle.close_input();
        assert!(app_rx.recv().is_err(), "FIN must end the app-side stream");

        let status = proxy.status();
        assert_eq!(status.transports.len(), 1);
        let transport = &status.transports[0];
        assert_eq!(transport.name, "audio");
        assert!(!transport.session);
        assert_eq!(transport.ingress.rx_packets, 16);
        assert_eq!(transport.egress.tx_packets, 17, "16 data + 1 FIN");
        assert_eq!(handle.ingress_stats().rx_packets(), 16);
        assert_eq!(handle.egress_stats().tx_packets(), 17);
        assert_ne!(handle.egress_addr().port(), 0);
        // The control protocol renders the endpoint counters.
        let rendered = crate::Response::Status(status).to_string();
        assert!(rendered.contains("udp=audio:stream"), "{rendered}");
        assert!(rendered.contains("rx=16"), "{rendered}");
        proxy.shutdown().unwrap();
    }

    #[test]
    fn udp_sessions_fan_out_to_per_lane_sockets() {
        let config = rapidware_transport::UdpConfig::default();
        let lane_a = rapidware_transport::UdpIngress::bind("127.0.0.1:0", &config).unwrap();
        let lane_b = rapidware_transport::UdpIngress::bind("127.0.0.1:0", &config).unwrap();
        let mut proxy = Proxy::with_runtime("wire", RuntimeConfig::new(2, 8));
        let handle = proxy
            .add_session_udp(
                "fanout",
                UdpSessionConfig::new()
                    .pooled()
                    .with_lane("a", lane_a.local_addr())
                    .with_lane("b", lane_b.local_addr()),
            )
            .unwrap();
        assert_eq!(proxy.session_names(), vec!["fanout"]);
        let app_tx = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
        for seq in 0..8 {
            encode_to(&app_tx, handle.ingress_addr(), &packet(seq));
        }
        for seq in 0..8 {
            assert_eq!(lane_a.recv().unwrap().seq().value(), seq);
            assert_eq!(lane_b.recv().unwrap().seq().value(), seq);
        }
        handle.close_input();
        assert!(lane_a.recv().is_err(), "lane a must see the FIN");
        assert!(lane_b.recv().is_err(), "lane b must see the FIN");
        assert_eq!(handle.lane_stats("a").unwrap().tx_packets(), 9);
        assert!(handle.lane_stats("nope").is_none());
        let status = proxy.status();
        assert_eq!(status.transports.len(), 1);
        assert!(status.transports[0].session);
        assert_eq!(status.transports[0].egress.tx_packets, 18, "two lanes x (8 + FIN)");
        proxy.shutdown().unwrap();
    }

    #[test]
    fn udp_failures_leave_no_half_installed_stream_behind() {
        let mut proxy = Proxy::new("wire");
        let peer = std::net::SocketAddr::from(([127, 0, 0, 1], 9));
        // Binding a non-local address fails; the stream name must be free
        // again afterwards.
        let bogus = UdpStreamConfig::to_peer(peer)
            .with_ingress_bind(std::net::SocketAddr::from(([203, 0, 113, 1], 0)));
        assert!(matches!(
            proxy.add_stream_udp("s", bogus),
            Err(ProxyError::Transport(_))
        ));
        assert!(proxy.stream_names().is_empty());
        // Pooled placement still requires a runtime.
        assert!(matches!(
            proxy.add_stream_udp("s", UdpStreamConfig::to_peer(peer).pooled()),
            Err(ProxyError::RuntimeDisabled)
        ));
        // And the name stays usable for a working configuration.
        proxy.add_stream_udp("s", UdpStreamConfig::to_peer(peer)).unwrap();
        proxy.shutdown().unwrap();
    }

    fn stream_packet(stream: u32, seq: u64) -> Packet {
        Packet::new(
            StreamId::new(stream),
            SeqNo::new(seq),
            PacketKind::AudioData,
            vec![0u8; 32],
        )
    }

    /// Drains an app-side shared ingress until `predicate` holds, with a
    /// hard deadline bounding a genuine hang.
    fn drain_app_until(app: &rapidware_transport::SharedUdpIngress, predicate: impl Fn() -> bool) {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while !predicate() {
            assert!(
                std::time::Instant::now() < deadline,
                "app-side shared drain made no progress"
            );
            if app.drain_batch() == rapidware_transport::SharedDrain::Empty {
                std::thread::yield_now();
            }
        }
    }

    #[test]
    fn shared_carriers_multiplex_streams_over_one_socket_with_zero_pump_threads() {
        let config = rapidware_transport::UdpConfig::default();
        let app = rapidware_transport::SharedUdpIngress::bind("127.0.0.1:0", &config).unwrap();
        let route_a = app.open_stream(StreamId::new(1)).unwrap();
        let route_b = app.open_stream(StreamId::new(2)).unwrap();

        let mut proxy = Proxy::with_runtime("shared", RuntimeConfig::new(2, 8));
        let carrier = proxy.add_udp_carrier("wire", UdpCarrierConfig::new()).unwrap();
        let handle_a = proxy
            .add_stream_udp_shared(
                "a",
                SharedUdpStreamConfig::on_carrier("wire", app.local_addr())
                    .with_stream(StreamId::new(1)),
            )
            .unwrap();
        let handle_b = proxy
            .add_stream_udp_shared(
                "b",
                SharedUdpStreamConfig::on_carrier("wire", app.local_addr())
                    .with_stream(StreamId::new(2)),
            )
            .unwrap();
        assert_eq!(handle_a.ingress_addr(), carrier.ingress_addr());
        assert_eq!(proxy.stream_names(), vec!["a", "b"]);
        assert_eq!(proxy.carrier_names(), vec!["wire"]);
        assert_eq!(carrier.route_count(), 2);
        // Both streams are ordinary streams: filters splice in live.
        proxy
            .insert_filter("a", 0, &FilterSpec::new("tap").with_param("name", "shared"))
            .unwrap();

        // Interleave both streams onto the one carrier socket, plus one
        // frame for a stream nobody claimed.
        let app_tx = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
        for seq in 0..8u64 {
            encode_to(&app_tx, carrier.ingress_addr(), &stream_packet(1, seq));
            encode_to(&app_tx, carrier.ingress_addr(), &stream_packet(2, seq));
        }
        encode_to(&app_tx, carrier.ingress_addr(), &stream_packet(9, 0));
        drain_app_until(&app, || app.stats().rx_packets() == 16);
        for seq in 0..8u64 {
            assert_eq!(route_a.try_recv().unwrap().seq().value(), seq);
            assert_eq!(route_b.try_recv().unwrap().seq().value(), seq);
        }

        // Ending stream a FINs only stream a; its socket-mate keeps
        // flowing.  (The app side has no pump thread either, so the FIN
        // only becomes observable through a drain.)
        handle_a.close_input();
        drain_app_until(&app, || {
            matches!(route_a.try_recv(), Err(rapidware_streams::TryRecvError::Eof))
        });
        encode_to(&app_tx, carrier.ingress_addr(), &stream_packet(2, 8));
        drain_app_until(&app, || app.stats().rx_packets() == 17);
        assert_eq!(route_b.try_recv().unwrap().seq().value(), 8);

        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while carrier.unknown_streams() < 1 {
            assert!(std::time::Instant::now() < deadline, "unknown frame never counted");
            std::thread::yield_now();
        }
        let status = proxy.status();
        let shared: Vec<_> = status.transports.iter().filter(|t| t.shared).collect();
        assert_eq!(shared.len(), 1);
        assert_eq!(shared[0].name, "wire");
        assert!(!shared[0].session);
        assert_eq!(shared[0].ingress.rx_packets, 17, "two live streams, one socket");
        assert_eq!(shared[0].unknown_streams, 1);
        let rendered = crate::Response::Status(status).to_string();
        assert!(rendered.contains("udp=wire:shared"), "{rendered}");
        assert!(rendered.contains("unknown-stream=1"), "{rendered}");

        // Zero pump threads: the only live transport machinery is the
        // reactor registration (one ingress + one egress driver).
        assert_eq!(proxy.runtime().unwrap().reactor_sockets(), 2);
        handle_b.close_input();
        drain_app_until(&app, || {
            matches!(route_b.try_recv(), Err(rapidware_streams::TryRecvError::Eof))
        });
        proxy.shutdown().unwrap();
    }

    #[test]
    fn shared_sessions_fan_out_lanes_onto_the_carrier_socket() {
        let config = rapidware_transport::UdpConfig::default();
        let app = rapidware_transport::SharedUdpIngress::bind("127.0.0.1:0", &config).unwrap();
        let lane_a = app.open_stream(StreamId::new(1)).unwrap();
        // A second app socket proves lanes go to distinct peers.
        let app_b = rapidware_transport::SharedUdpIngress::bind("127.0.0.1:0", &config).unwrap();
        let lane_b = app_b.open_stream(StreamId::new(1)).unwrap();

        let mut proxy = Proxy::with_runtime("shared", RuntimeConfig::new(2, 8));
        let carrier = proxy.add_udp_carrier("wire", UdpCarrierConfig::new()).unwrap();
        let handle = proxy
            .add_session_udp_shared(
                "fanout",
                SharedUdpSessionConfig::on_carrier("wire")
                    .with_stream(StreamId::new(1))
                    .with_lane("a", app.local_addr())
                    .with_lane("b", app_b.local_addr()),
            )
            .unwrap();
        assert_eq!(proxy.session_names(), vec!["fanout"]);
        assert_eq!(handle.lanes(), ["a".to_string(), "b".to_string()]);

        let app_tx = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
        for seq in 0..4u64 {
            encode_to(&app_tx, handle.ingress_addr(), &stream_packet(1, seq));
        }
        drain_app_until(&app, || app.stats().rx_packets() == 4);
        drain_app_until(&app_b, || app_b.stats().rx_packets() == 4);
        for seq in 0..4u64 {
            assert_eq!(lane_a.try_recv().unwrap().seq().value(), seq);
            assert_eq!(lane_b.try_recv().unwrap().seq().value(), seq);
        }
        handle.close_input();
        drain_app_until(&app, || {
            matches!(lane_a.try_recv(), Err(rapidware_streams::TryRecvError::Eof))
        });
        drain_app_until(&app_b, || {
            matches!(lane_b.try_recv(), Err(rapidware_streams::TryRecvError::Eof))
        });
        let status = proxy.status();
        let shared: Vec<_> = status.transports.iter().filter(|t| t.shared).collect();
        assert_eq!(shared[0].egress.tx_packets, 10, "two lanes x (4 + FIN)");
        let _ = carrier;
        proxy.shutdown().unwrap();
    }

    #[test]
    fn shared_placement_failures_leave_no_trace_behind() {
        let mut proxy = Proxy::new("plain");
        // Carriers require the pooled runtime.
        assert!(matches!(
            proxy.add_udp_carrier("wire", UdpCarrierConfig::new()),
            Err(ProxyError::RuntimeDisabled)
        ));
        let mut proxy = Proxy::with_runtime("shared", RuntimeConfig::new(1, 4));
        let peer = std::net::SocketAddr::from(([127, 0, 0, 1], 9));
        // Placement on a carrier that does not exist.
        assert!(matches!(
            proxy.add_stream_udp_shared(
                "s",
                SharedUdpStreamConfig::on_carrier("nope", peer).with_stream(StreamId::new(1)),
            ),
            Err(ProxyError::UnknownCarrier(_))
        ));
        assert!(matches!(
            proxy.add_session_udp_shared(
                "s",
                SharedUdpSessionConfig::on_carrier("nope").with_stream(StreamId::new(1)),
            ),
            Err(ProxyError::UnknownCarrier(_))
        ));
        let carrier = proxy.add_udp_carrier("wire", UdpCarrierConfig::new()).unwrap();
        assert!(matches!(
            proxy.add_udp_carrier("wire", UdpCarrierConfig::new()),
            Err(ProxyError::Splice(_))
        ));
        // A placement with no stream ids is rejected up front.
        assert!(matches!(
            proxy.add_stream_udp_shared("s", SharedUdpStreamConfig::on_carrier("wire", peer)),
            Err(ProxyError::Splice(_))
        ));
        proxy
            .add_stream_udp_shared(
                "s",
                SharedUdpStreamConfig::on_carrier("wire", peer).with_stream(StreamId::new(1)),
            )
            .unwrap();
        // Claiming an already-routed stream id rolls the whole placement
        // back: the stream name and the fresh id are free again.
        assert!(matches!(
            proxy.add_stream_udp_shared(
                "t",
                SharedUdpStreamConfig::on_carrier("wire", peer)
                    .with_stream(StreamId::new(2))
                    .with_stream(StreamId::new(1)),
            ),
            Err(ProxyError::Splice(_))
        ));
        assert_eq!(proxy.stream_names(), vec!["s"]);
        assert_eq!(carrier.route_count(), 1);
        assert!(matches!(
            proxy.add_session_udp_shared(
                "u",
                SharedUdpSessionConfig::on_carrier("wire").with_stream(StreamId::new(1)),
            ),
            Err(ProxyError::Splice(_))
        ));
        assert!(proxy.session_names().is_empty());
        proxy
            .add_stream_udp_shared(
                "t",
                SharedUdpStreamConfig::on_carrier("wire", peer).with_stream(StreamId::new(2)),
            )
            .unwrap();
        proxy.shutdown().unwrap();
    }

    #[test]
    fn stream_stats_track_traffic() {
        let mut proxy = Proxy::new("p");
        let (input, output) = proxy.add_stream("s").unwrap();
        for seq in 0..5 {
            input.send(packet(seq)).unwrap();
        }
        for _ in 0..5 {
            output.recv().unwrap();
        }
        let stats = proxy.stream_stats("s").unwrap();
        assert_eq!(stats.packets_in, 5);
        assert_eq!(stats.packets_out, 5);
        proxy.shutdown().unwrap();
    }
}
