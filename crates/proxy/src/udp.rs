//! Datagram transport wiring: streams and fanout sessions whose endpoints
//! are real UDP sockets instead of in-process pipes.
//!
//! [`Proxy::add_stream_udp`](crate::Proxy::add_stream_udp) and
//! [`Proxy::add_session_udp`](crate::Proxy::add_session_udp) build the same
//! chains and sessions as their pipe-backed siblings and then bridge them
//! onto the wire with `rapidware-transport` endpoints:
//!
//! ```text
//!   sender ──UDP──▶ UdpIngress ──▶ chain input … chain output ──▶ UdpEgress ──UDP──▶ receiver
//! ```
//!
//! The chain itself is unchanged — it still reads and writes detachable
//! pipes, is live-reconfigurable through the ordinary control surface
//! (`insert_filter`, `remove_filter`, sessions' per-lane splices), and can
//! be placed on either the thread-per-filter or the pooled runtime.  The
//! only new moving parts are the ingress/egress pump threads, whose
//! rx/tx/drop/decode-error counters surface through
//! [`ProxyStatus::transports`](crate::ProxyStatus) and the control
//! protocol.
//!
//! ## Shared-socket carriers
//!
//! Those pump threads are fine for a handful of streams but scale as two
//! threads per socket.  A **carrier**
//! ([`Proxy::add_udp_carrier`](crate::Proxy::add_udp_carrier)) instead
//! binds *one* shared socket and registers it with the pooled runtime's
//! readiness reactor, so it costs **zero** threads no matter how many
//! streams and sessions ride it:
//!
//! ```text
//!   one socket ──▶ SharedUdpIngress ──demux by stream id──▶ chain/session inputs
//!   chain/session outputs ──▶ SharedUdpEgress ──mux──▶ the same socket
//! ```
//!
//! [`Proxy::add_stream_udp_shared`](crate::Proxy::add_stream_udp_shared)
//! and
//! [`Proxy::add_session_udp_shared`](crate::Proxy::add_session_udp_shared)
//! place a pooled chain or session on a named carrier: inbound datagrams
//! are routed to it by the stream ids it claimed, and its output lanes are
//! multiplexed back out with per-stream FIN framing.  The per-socket-thread
//! endpoints above remain for single-stream edges but are deprecated for
//! multi-session use.

use std::fmt;
use std::net::SocketAddr;
use std::sync::Arc;

use rapidware_packet::{Packet, StreamId};
use rapidware_streams::DetachableSender;
use rapidware_telemetry::Histogram;
use rapidware_transport::{
    SharedDrain, SharedFlush, SharedUdpEgress, SharedUdpIngress, TransportSnapshot,
    TransportStats, UdpEgress, UdpIngress,
};

use crate::runtime::{SocketDriver, SocketStep, SocketWork};

/// Placement and socket configuration of a UDP-backed stream.
#[derive(Debug, Clone)]
pub struct UdpStreamConfig {
    /// Address the ingress socket binds (use port 0 for an ephemeral port;
    /// the concrete address comes back in the handle).
    pub ingress_bind: SocketAddr,
    /// Destination the chain's output packets are sent to.
    pub egress_peer: SocketAddr,
    /// Pipe capacity between the sockets and the chain (back-pressure
    /// window, in packets).
    pub capacity: usize,
    /// Per-stage batch size of the chain and the transport pumps.
    pub batch_size: usize,
    /// `true` places the chain on the proxy's sharded worker pool instead
    /// of thread-per-filter (requires
    /// [`Proxy::with_runtime`](crate::Proxy::with_runtime)).
    pub pooled: bool,
}

impl UdpStreamConfig {
    /// A loopback-bound stream sending its output to `peer`, with the
    /// default capacity (256) and batch size (8), thread-per-filter.
    pub fn to_peer(peer: SocketAddr) -> Self {
        Self {
            ingress_bind: loopback_ephemeral(),
            egress_peer: peer,
            capacity: 256,
            batch_size: 8,
            pooled: false,
        }
    }

    /// Overrides the ingress bind address.
    #[must_use]
    pub fn with_ingress_bind(mut self, bind: SocketAddr) -> Self {
        self.ingress_bind = bind;
        self
    }

    /// Overrides the pipe capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "stream pipe capacity must be non-zero");
        self.capacity = capacity;
        self
    }

    /// Overrides the batch size (clamped to at least 1).
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Places the chain on the sharded worker pool.
    #[must_use]
    pub fn pooled(mut self) -> Self {
        self.pooled = true;
        self
    }
}

/// Placement and socket configuration of a UDP-backed fanout session: one
/// ingress socket feeding the shared head chain, one egress socket per
/// receiver lane.
#[derive(Debug, Clone)]
pub struct UdpSessionConfig {
    /// Address the ingress socket binds.
    pub ingress_bind: SocketAddr,
    /// Pipe capacity of the session and the transport pumps.
    pub capacity: usize,
    /// Batch size of the session stages and the transport pumps.
    pub batch_size: usize,
    /// `true` hosts the session on the sharded worker pool.
    pub pooled: bool,
    /// `(lane name, egress destination)` pairs, one per receiver.
    pub lanes: Vec<(String, SocketAddr)>,
}

impl UdpSessionConfig {
    /// A loopback-bound session with the default capacity (256) and batch
    /// size (8), no lanes yet, thread-per-filter.
    pub fn new() -> Self {
        Self {
            ingress_bind: loopback_ephemeral(),
            capacity: 256,
            batch_size: 8,
            pooled: false,
            lanes: Vec::new(),
        }
    }

    /// Adds a receiver lane sending to `peer`.
    #[must_use]
    pub fn with_lane(mut self, name: impl Into<String>, peer: SocketAddr) -> Self {
        self.lanes.push((name.into(), peer));
        self
    }

    /// Overrides the ingress bind address.
    #[must_use]
    pub fn with_ingress_bind(mut self, bind: SocketAddr) -> Self {
        self.ingress_bind = bind;
        self
    }

    /// Overrides the pipe capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "session pipe capacity must be non-zero");
        self.capacity = capacity;
        self
    }

    /// Overrides the batch size (clamped to at least 1).
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Hosts the session on the sharded worker pool.
    #[must_use]
    pub fn pooled(mut self) -> Self {
        self.pooled = true;
        self
    }
}

impl Default for UdpSessionConfig {
    fn default() -> Self {
        Self::new()
    }
}

fn loopback_ephemeral() -> SocketAddr {
    SocketAddr::from(([127, 0, 0, 1], 0))
}

/// What the caller gets back from
/// [`Proxy::add_stream_udp`](crate::Proxy::add_stream_udp): the concrete
/// socket addresses, the endpoint counters, and the means to end the
/// stream cleanly.
pub struct UdpStreamHandle {
    pub(crate) ingress_addr: SocketAddr,
    pub(crate) egress_addr: SocketAddr,
    pub(crate) ingress_stats: TransportStats,
    pub(crate) egress_stats: TransportStats,
    pub(crate) input: DetachableSender<Packet>,
}

impl fmt::Debug for UdpStreamHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UdpStreamHandle")
            .field("ingress_addr", &self.ingress_addr)
            .field("egress_addr", &self.egress_addr)
            .finish()
    }
}

impl UdpStreamHandle {
    /// The bound ingress address: send encoded packets here.
    pub fn ingress_addr(&self) -> SocketAddr {
        self.ingress_addr
    }

    /// The egress socket's (source) address.
    pub fn egress_addr(&self) -> SocketAddr {
        self.egress_addr
    }

    /// Counters of the ingress endpoint.
    pub fn ingress_stats(&self) -> TransportStats {
        self.ingress_stats.clone()
    }

    /// Counters of the egress endpoint.
    pub fn egress_stats(&self) -> TransportStats {
        self.egress_stats.clone()
    }

    /// Ends the stream from the proxy side: closes the chain input, which
    /// flushes every filter; the residue rides out the egress, followed by
    /// the transport's FIN frame, so the remote receiver observes a clean
    /// end of stream.  (A remote sender ends the stream by sending its own
    /// FIN instead.)
    pub fn close_input(&self) {
        self.input.close();
    }
}

/// What the caller gets back from
/// [`Proxy::add_session_udp`](crate::Proxy::add_session_udp).
pub struct UdpSessionHandle {
    pub(crate) ingress_addr: SocketAddr,
    pub(crate) ingress_stats: TransportStats,
    pub(crate) lanes: Vec<(String, TransportStats)>,
    pub(crate) input: DetachableSender<Packet>,
}

impl fmt::Debug for UdpSessionHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UdpSessionHandle")
            .field("ingress_addr", &self.ingress_addr)
            .field("lanes", &self.lanes.iter().map(|(name, _)| name).collect::<Vec<_>>())
            .finish()
    }
}

impl UdpSessionHandle {
    /// The bound ingress address: send encoded packets here.
    pub fn ingress_addr(&self) -> SocketAddr {
        self.ingress_addr
    }

    /// Counters of the ingress endpoint.
    pub fn ingress_stats(&self) -> TransportStats {
        self.ingress_stats.clone()
    }

    /// Counters of `lane`'s egress endpoint, if the lane exists.
    pub fn lane_stats(&self, lane: &str) -> Option<TransportStats> {
        self.lanes
            .iter()
            .find(|(name, _)| name == lane)
            .map(|(_, stats)| stats.clone())
    }

    /// Ends the session from the proxy side (see
    /// [`UdpStreamHandle::close_input`]): every lane flushes and sends its
    /// own FIN.
    pub fn close_input(&self) {
        self.input.close();
    }
}

/// One UDP-backed stream or session as reported in
/// [`ProxyStatus`](crate::ProxyStatus): the endpoint counters the control
/// manager renders next to the chain statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpTransportStatus {
    /// Name of the stream or session the endpoints serve.
    pub name: String,
    /// `true` for a fanout session (egress counters are then the merged
    /// per-lane totals), `false` for a flat stream.
    pub session: bool,
    /// `true` for a shared-socket carrier (counters are then the whole
    /// socket's, across every stream and session riding it).
    pub shared: bool,
    /// The bound ingress address.
    pub ingress_addr: String,
    /// Ingress counters (rx datagrams/packets, decode errors, drops).
    pub ingress: TransportSnapshot,
    /// Egress counters (tx datagrams/packets, drops).
    pub egress: TransportSnapshot,
    /// Decoded datagrams whose stream id had no registered route — always
    /// zero for dedicated (non-shared) endpoints.
    pub unknown_streams: u64,
}

/// The live transport state the proxy keeps per UDP stream.
pub(crate) struct UdpStreamTransport {
    pub(crate) ingress: UdpIngress,
    pub(crate) egress: UdpEgress,
    pub(crate) input: DetachableSender<Packet>,
}

/// The live transport state the proxy keeps per UDP session.
pub(crate) struct UdpSessionTransport {
    pub(crate) ingress: UdpIngress,
    pub(crate) lanes: Vec<(String, UdpEgress)>,
    pub(crate) input: DetachableSender<Packet>,
}

impl UdpStreamTransport {
    pub(crate) fn status(&self, name: &str) -> UdpTransportStatus {
        UdpTransportStatus {
            name: name.to_string(),
            session: false,
            shared: false,
            ingress_addr: self.ingress.local_addr().to_string(),
            ingress: self.ingress.stats().snapshot(),
            egress: self.egress.stats().snapshot(),
            unknown_streams: 0,
        }
    }
}

impl UdpSessionTransport {
    pub(crate) fn status(&self, name: &str) -> UdpTransportStatus {
        let egress = self
            .lanes
            .iter()
            .fold(TransportSnapshot::default(), |merged, (_, egress)| {
                merged.merged(&egress.stats().snapshot())
            });
        UdpTransportStatus {
            name: name.to_string(),
            session: true,
            shared: false,
            ingress_addr: self.ingress.local_addr().to_string(),
            ingress: self.ingress.stats().snapshot(),
            egress,
            unknown_streams: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Shared-socket carriers.
// ---------------------------------------------------------------------------

/// Socket configuration of a shared-socket **carrier** (see
/// [`Proxy::add_udp_carrier`](crate::Proxy::add_udp_carrier)): one bound
/// socket whose inbound datagrams are demultiplexed by stream id and whose
/// outbound lanes are multiplexed back onto the same port.
#[derive(Debug, Clone)]
pub struct UdpCarrierConfig {
    /// Address the shared socket binds (use port 0 for an ephemeral port;
    /// the concrete address comes back in the handle).
    pub bind: SocketAddr,
    /// Pipe capacity behind each routed stream (back-pressure window, in
    /// packets).
    pub capacity: usize,
    /// How many datagrams one reactor-driven drain/flush pass moves.
    pub batch_size: usize,
}

impl UdpCarrierConfig {
    /// A loopback-bound carrier with the default capacity (256) and batch
    /// size (8).
    pub fn new() -> Self {
        Self {
            bind: loopback_ephemeral(),
            capacity: 256,
            batch_size: 8,
        }
    }

    /// Overrides the bind address.
    #[must_use]
    pub fn with_bind(mut self, bind: SocketAddr) -> Self {
        self.bind = bind;
        self
    }

    /// Overrides the pipe capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "carrier pipe capacity must be non-zero");
        self.capacity = capacity;
        self
    }

    /// Overrides the batch size (clamped to at least 1).
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }
}

impl Default for UdpCarrierConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Placement of a pooled stream on a shared-socket carrier (see
/// [`Proxy::add_stream_udp_shared`](crate::Proxy::add_stream_udp_shared)).
#[derive(Debug, Clone)]
pub struct SharedUdpStreamConfig {
    /// Name of the carrier (from
    /// [`add_udp_carrier`](crate::Proxy::add_udp_carrier)) this stream
    /// rides.
    pub carrier: String,
    /// Stream ids routed into this chain.  The first id is stamped on the
    /// egress FIN when the chain ends.  Must not be empty.
    pub streams: Vec<StreamId>,
    /// Destination the chain's output packets are sent to.
    pub egress_peer: SocketAddr,
    /// Pipe capacity of the chain.
    pub capacity: usize,
    /// Per-stage batch size of the chain.
    pub batch_size: usize,
}

impl SharedUdpStreamConfig {
    /// A stream on `carrier` sending its output to `peer`, with the
    /// default capacity (256) and batch size (8) and no stream ids yet.
    pub fn on_carrier(carrier: impl Into<String>, peer: SocketAddr) -> Self {
        Self {
            carrier: carrier.into(),
            streams: Vec::new(),
            egress_peer: peer,
            capacity: 256,
            batch_size: 8,
        }
    }

    /// Adds a stream id routed into this chain.
    #[must_use]
    pub fn with_stream(mut self, stream: StreamId) -> Self {
        self.streams.push(stream);
        self
    }

    /// Overrides the pipe capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "stream pipe capacity must be non-zero");
        self.capacity = capacity;
        self
    }

    /// Overrides the batch size (clamped to at least 1).
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }
}

/// Placement of a pooled fanout session on a shared-socket carrier (see
/// [`Proxy::add_session_udp_shared`](crate::Proxy::add_session_udp_shared)).
#[derive(Debug, Clone)]
pub struct SharedUdpSessionConfig {
    /// Name of the carrier this session rides.
    pub carrier: String,
    /// Stream ids routed into the session's head chain.  The first id is
    /// stamped on each lane's egress FIN.  Must not be empty.
    pub streams: Vec<StreamId>,
    /// `(lane name, egress destination)` pairs, one per receiver.
    pub lanes: Vec<(String, SocketAddr)>,
    /// Pipe capacity of the session.
    pub capacity: usize,
    /// Batch size of the session stages.
    pub batch_size: usize,
}

impl SharedUdpSessionConfig {
    /// A session on `carrier` with the default capacity (256) and batch
    /// size (8), no stream ids and no lanes yet.
    pub fn on_carrier(carrier: impl Into<String>) -> Self {
        Self {
            carrier: carrier.into(),
            streams: Vec::new(),
            lanes: Vec::new(),
            capacity: 256,
            batch_size: 8,
        }
    }

    /// Adds a stream id routed into the session.
    #[must_use]
    pub fn with_stream(mut self, stream: StreamId) -> Self {
        self.streams.push(stream);
        self
    }

    /// Adds a receiver lane sending to `peer`.
    #[must_use]
    pub fn with_lane(mut self, name: impl Into<String>, peer: SocketAddr) -> Self {
        self.lanes.push((name.into(), peer));
        self
    }

    /// Overrides the pipe capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "session pipe capacity must be non-zero");
        self.capacity = capacity;
        self
    }

    /// Overrides the batch size (clamped to at least 1).
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }
}

/// What the caller gets back from
/// [`Proxy::add_udp_carrier`](crate::Proxy::add_udp_carrier): the bound
/// address and the socket-wide counters.
pub struct UdpCarrierHandle {
    pub(crate) ingress: Arc<SharedUdpIngress>,
    pub(crate) egress_stats: TransportStats,
}

impl fmt::Debug for UdpCarrierHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UdpCarrierHandle")
            .field("ingress_addr", &self.ingress.local_addr())
            .finish()
    }
}

impl UdpCarrierHandle {
    /// The shared socket's bound address: send encoded packets here.
    pub fn ingress_addr(&self) -> SocketAddr {
        self.ingress.local_addr()
    }

    /// Receive-side counters of the whole socket.
    pub fn ingress_stats(&self) -> TransportStats {
        self.ingress.stats()
    }

    /// Send-side counters of the whole socket.
    pub fn egress_stats(&self) -> TransportStats {
        self.egress_stats.clone()
    }

    /// Decoded datagrams whose stream id had no registered route.
    pub fn unknown_streams(&self) -> u64 {
        self.ingress.unknown_streams()
    }

    /// Number of stream ids currently routed on this carrier.
    pub fn route_count(&self) -> usize {
        self.ingress.route_count()
    }
}

/// What the caller gets back from
/// [`Proxy::add_stream_udp_shared`](crate::Proxy::add_stream_udp_shared).
pub struct SharedUdpStreamHandle {
    pub(crate) carrier: String,
    pub(crate) ingress_addr: SocketAddr,
    pub(crate) streams: Vec<StreamId>,
    pub(crate) input: DetachableSender<Packet>,
}

impl fmt::Debug for SharedUdpStreamHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedUdpStreamHandle")
            .field("carrier", &self.carrier)
            .field("ingress_addr", &self.ingress_addr)
            .field("streams", &self.streams)
            .finish()
    }
}

impl SharedUdpStreamHandle {
    /// Name of the carrier this stream rides.
    pub fn carrier(&self) -> &str {
        &self.carrier
    }

    /// The carrier's bound address: send this stream's datagrams here.
    pub fn ingress_addr(&self) -> SocketAddr {
        self.ingress_addr
    }

    /// The stream ids routed into this chain.
    pub fn streams(&self) -> &[StreamId] {
        &self.streams
    }

    /// Ends the stream from the proxy side: closes the chain input, which
    /// flushes every filter; the residue rides out the shared egress
    /// followed by a per-stream FIN, so the remote receiver observes a
    /// clean end of exactly this stream — its socket-mates keep flowing.
    pub fn close_input(&self) {
        self.input.close();
    }
}

/// What the caller gets back from
/// [`Proxy::add_session_udp_shared`](crate::Proxy::add_session_udp_shared).
pub struct SharedUdpSessionHandle {
    pub(crate) carrier: String,
    pub(crate) ingress_addr: SocketAddr,
    pub(crate) streams: Vec<StreamId>,
    pub(crate) lanes: Vec<String>,
    pub(crate) input: DetachableSender<Packet>,
}

impl fmt::Debug for SharedUdpSessionHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedUdpSessionHandle")
            .field("carrier", &self.carrier)
            .field("ingress_addr", &self.ingress_addr)
            .field("streams", &self.streams)
            .field("lanes", &self.lanes)
            .finish()
    }
}

impl SharedUdpSessionHandle {
    /// Name of the carrier this session rides.
    pub fn carrier(&self) -> &str {
        &self.carrier
    }

    /// The carrier's bound address: send this session's datagrams here.
    pub fn ingress_addr(&self) -> SocketAddr {
        self.ingress_addr
    }

    /// The stream ids routed into the session.
    pub fn streams(&self) -> &[StreamId] {
        &self.streams
    }

    /// The receiver lane names, in attach order.
    pub fn lanes(&self) -> &[String] {
        &self.lanes
    }

    /// Ends the session from the proxy side (see
    /// [`SharedUdpStreamHandle::close_input`]): every lane flushes and
    /// sends its own per-stream FIN.
    pub fn close_input(&self) {
        self.input.close();
    }
}

/// Adapts a carrier's receive side to the reactor: a readiness wake runs
/// one bounded demux drain.
pub(crate) struct SharedIngressWork {
    pub(crate) ingress: Arc<SharedUdpIngress>,
    /// When proxy telemetry is enabled at carrier-bind time, each drain
    /// pass records how many datagrams it pulled off the socket
    /// (`udp.<carrier>.drain_batch`) — the batching the reactor actually
    /// achieves under load.
    pub(crate) drain_batch: Option<Arc<Histogram>>,
}

impl SocketWork for SharedIngressWork {
    fn service(&self) -> SocketStep {
        let before = self
            .drain_batch
            .as_ref()
            .map(|_| self.ingress.stats().rx_datagrams());
        let step = match self.ingress.drain_batch() {
            SharedDrain::MoreReady => SocketStep::Progress,
            SharedDrain::Empty => SocketStep::Idle,
        };
        if let (Some(histogram), Some(before)) = (self.drain_batch.as_ref(), before) {
            let drained = self.ingress.stats().rx_datagrams().saturating_sub(before);
            if drained != 0 {
                histogram.record(drained);
            }
        }
        step
    }
}

/// Adapts a carrier's send side to the reactor: a pipe-watcher wake (or a
/// write-retry tick after `Blocked`) runs one bounded mux flush.
pub(crate) struct SharedEgressWork {
    pub(crate) egress: Arc<SharedUdpEgress>,
}

impl SocketWork for SharedEgressWork {
    fn service(&self) -> SocketStep {
        match self.egress.flush_batch() {
            SharedFlush::Progress => SocketStep::Progress,
            SharedFlush::Idle => SocketStep::Idle,
            SharedFlush::Blocked => SocketStep::Blocked,
        }
    }
}

/// The live state the proxy keeps per shared-socket carrier: both endpoint
/// halves plus the reactor drivers stepping them.
pub(crate) struct UdpCarrier {
    pub(crate) ingress: Arc<SharedUdpIngress>,
    pub(crate) egress: Arc<SharedUdpEgress>,
    pub(crate) ingress_driver: SocketDriver,
    pub(crate) egress_driver: SocketDriver,
}

impl UdpCarrier {
    pub(crate) fn status(&self, name: &str) -> UdpTransportStatus {
        UdpTransportStatus {
            name: name.to_string(),
            session: false,
            shared: true,
            ingress_addr: self.ingress.local_addr().to_string(),
            ingress: self.ingress.stats().snapshot(),
            egress: self.egress.stats().snapshot(),
            unknown_streams: self.ingress.unknown_streams(),
        }
    }
}
