//! Datagram transport wiring: streams and fanout sessions whose endpoints
//! are real UDP sockets instead of in-process pipes.
//!
//! [`Proxy::add_stream_udp`](crate::Proxy::add_stream_udp) and
//! [`Proxy::add_session_udp`](crate::Proxy::add_session_udp) build the same
//! chains and sessions as their pipe-backed siblings and then bridge them
//! onto the wire with `rapidware-transport` endpoints:
//!
//! ```text
//!   sender ──UDP──▶ UdpIngress ──▶ chain input … chain output ──▶ UdpEgress ──UDP──▶ receiver
//! ```
//!
//! The chain itself is unchanged — it still reads and writes detachable
//! pipes, is live-reconfigurable through the ordinary control surface
//! (`insert_filter`, `remove_filter`, sessions' per-lane splices), and can
//! be placed on either the thread-per-filter or the pooled runtime.  The
//! only new moving parts are the ingress/egress pump threads, whose
//! rx/tx/drop/decode-error counters surface through
//! [`ProxyStatus::transports`](crate::ProxyStatus) and the control
//! protocol.

use std::fmt;
use std::net::SocketAddr;

use rapidware_packet::Packet;
use rapidware_streams::DetachableSender;
use rapidware_transport::{TransportSnapshot, TransportStats, UdpEgress, UdpIngress};

/// Placement and socket configuration of a UDP-backed stream.
#[derive(Debug, Clone)]
pub struct UdpStreamConfig {
    /// Address the ingress socket binds (use port 0 for an ephemeral port;
    /// the concrete address comes back in the handle).
    pub ingress_bind: SocketAddr,
    /// Destination the chain's output packets are sent to.
    pub egress_peer: SocketAddr,
    /// Pipe capacity between the sockets and the chain (back-pressure
    /// window, in packets).
    pub capacity: usize,
    /// Per-stage batch size of the chain and the transport pumps.
    pub batch_size: usize,
    /// `true` places the chain on the proxy's sharded worker pool instead
    /// of thread-per-filter (requires
    /// [`Proxy::with_runtime`](crate::Proxy::with_runtime)).
    pub pooled: bool,
}

impl UdpStreamConfig {
    /// A loopback-bound stream sending its output to `peer`, with the
    /// default capacity (256) and batch size (8), thread-per-filter.
    pub fn to_peer(peer: SocketAddr) -> Self {
        Self {
            ingress_bind: loopback_ephemeral(),
            egress_peer: peer,
            capacity: 256,
            batch_size: 8,
            pooled: false,
        }
    }

    /// Overrides the ingress bind address.
    #[must_use]
    pub fn with_ingress_bind(mut self, bind: SocketAddr) -> Self {
        self.ingress_bind = bind;
        self
    }

    /// Overrides the pipe capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "stream pipe capacity must be non-zero");
        self.capacity = capacity;
        self
    }

    /// Overrides the batch size (clamped to at least 1).
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Places the chain on the sharded worker pool.
    #[must_use]
    pub fn pooled(mut self) -> Self {
        self.pooled = true;
        self
    }
}

/// Placement and socket configuration of a UDP-backed fanout session: one
/// ingress socket feeding the shared head chain, one egress socket per
/// receiver lane.
#[derive(Debug, Clone)]
pub struct UdpSessionConfig {
    /// Address the ingress socket binds.
    pub ingress_bind: SocketAddr,
    /// Pipe capacity of the session and the transport pumps.
    pub capacity: usize,
    /// Batch size of the session stages and the transport pumps.
    pub batch_size: usize,
    /// `true` hosts the session on the sharded worker pool.
    pub pooled: bool,
    /// `(lane name, egress destination)` pairs, one per receiver.
    pub lanes: Vec<(String, SocketAddr)>,
}

impl UdpSessionConfig {
    /// A loopback-bound session with the default capacity (256) and batch
    /// size (8), no lanes yet, thread-per-filter.
    pub fn new() -> Self {
        Self {
            ingress_bind: loopback_ephemeral(),
            capacity: 256,
            batch_size: 8,
            pooled: false,
            lanes: Vec::new(),
        }
    }

    /// Adds a receiver lane sending to `peer`.
    #[must_use]
    pub fn with_lane(mut self, name: impl Into<String>, peer: SocketAddr) -> Self {
        self.lanes.push((name.into(), peer));
        self
    }

    /// Overrides the ingress bind address.
    #[must_use]
    pub fn with_ingress_bind(mut self, bind: SocketAddr) -> Self {
        self.ingress_bind = bind;
        self
    }

    /// Overrides the pipe capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "session pipe capacity must be non-zero");
        self.capacity = capacity;
        self
    }

    /// Overrides the batch size (clamped to at least 1).
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Hosts the session on the sharded worker pool.
    #[must_use]
    pub fn pooled(mut self) -> Self {
        self.pooled = true;
        self
    }
}

impl Default for UdpSessionConfig {
    fn default() -> Self {
        Self::new()
    }
}

fn loopback_ephemeral() -> SocketAddr {
    SocketAddr::from(([127, 0, 0, 1], 0))
}

/// What the caller gets back from
/// [`Proxy::add_stream_udp`](crate::Proxy::add_stream_udp): the concrete
/// socket addresses, the endpoint counters, and the means to end the
/// stream cleanly.
pub struct UdpStreamHandle {
    pub(crate) ingress_addr: SocketAddr,
    pub(crate) egress_addr: SocketAddr,
    pub(crate) ingress_stats: TransportStats,
    pub(crate) egress_stats: TransportStats,
    pub(crate) input: DetachableSender<Packet>,
}

impl fmt::Debug for UdpStreamHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UdpStreamHandle")
            .field("ingress_addr", &self.ingress_addr)
            .field("egress_addr", &self.egress_addr)
            .finish()
    }
}

impl UdpStreamHandle {
    /// The bound ingress address: send encoded packets here.
    pub fn ingress_addr(&self) -> SocketAddr {
        self.ingress_addr
    }

    /// The egress socket's (source) address.
    pub fn egress_addr(&self) -> SocketAddr {
        self.egress_addr
    }

    /// Counters of the ingress endpoint.
    pub fn ingress_stats(&self) -> TransportStats {
        self.ingress_stats.clone()
    }

    /// Counters of the egress endpoint.
    pub fn egress_stats(&self) -> TransportStats {
        self.egress_stats.clone()
    }

    /// Ends the stream from the proxy side: closes the chain input, which
    /// flushes every filter; the residue rides out the egress, followed by
    /// the transport's FIN frame, so the remote receiver observes a clean
    /// end of stream.  (A remote sender ends the stream by sending its own
    /// FIN instead.)
    pub fn close_input(&self) {
        self.input.close();
    }
}

/// What the caller gets back from
/// [`Proxy::add_session_udp`](crate::Proxy::add_session_udp).
pub struct UdpSessionHandle {
    pub(crate) ingress_addr: SocketAddr,
    pub(crate) ingress_stats: TransportStats,
    pub(crate) lanes: Vec<(String, TransportStats)>,
    pub(crate) input: DetachableSender<Packet>,
}

impl fmt::Debug for UdpSessionHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UdpSessionHandle")
            .field("ingress_addr", &self.ingress_addr)
            .field("lanes", &self.lanes.iter().map(|(name, _)| name).collect::<Vec<_>>())
            .finish()
    }
}

impl UdpSessionHandle {
    /// The bound ingress address: send encoded packets here.
    pub fn ingress_addr(&self) -> SocketAddr {
        self.ingress_addr
    }

    /// Counters of the ingress endpoint.
    pub fn ingress_stats(&self) -> TransportStats {
        self.ingress_stats.clone()
    }

    /// Counters of `lane`'s egress endpoint, if the lane exists.
    pub fn lane_stats(&self, lane: &str) -> Option<TransportStats> {
        self.lanes
            .iter()
            .find(|(name, _)| name == lane)
            .map(|(_, stats)| stats.clone())
    }

    /// Ends the session from the proxy side (see
    /// [`UdpStreamHandle::close_input`]): every lane flushes and sends its
    /// own FIN.
    pub fn close_input(&self) {
        self.input.close();
    }
}

/// One UDP-backed stream or session as reported in
/// [`ProxyStatus`](crate::ProxyStatus): the endpoint counters the control
/// manager renders next to the chain statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpTransportStatus {
    /// Name of the stream or session the endpoints serve.
    pub name: String,
    /// `true` for a fanout session (egress counters are then the merged
    /// per-lane totals), `false` for a flat stream.
    pub session: bool,
    /// The bound ingress address.
    pub ingress_addr: String,
    /// Ingress counters (rx datagrams/packets, decode errors, drops).
    pub ingress: TransportSnapshot,
    /// Egress counters (tx datagrams/packets, drops).
    pub egress: TransportSnapshot,
}

/// The live transport state the proxy keeps per UDP stream.
pub(crate) struct UdpStreamTransport {
    pub(crate) ingress: UdpIngress,
    pub(crate) egress: UdpEgress,
    pub(crate) input: DetachableSender<Packet>,
}

/// The live transport state the proxy keeps per UDP session.
pub(crate) struct UdpSessionTransport {
    pub(crate) ingress: UdpIngress,
    pub(crate) lanes: Vec<(String, UdpEgress)>,
    pub(crate) input: DetachableSender<Packet>,
}

impl UdpStreamTransport {
    pub(crate) fn status(&self, name: &str) -> UdpTransportStatus {
        UdpTransportStatus {
            name: name.to_string(),
            session: false,
            ingress_addr: self.ingress.local_addr().to_string(),
            ingress: self.ingress.stats().snapshot(),
            egress: self.egress.stats().snapshot(),
        }
    }
}

impl UdpSessionTransport {
    pub(crate) fn status(&self, name: &str) -> UdpTransportStatus {
        let egress = self
            .lanes
            .iter()
            .fold(TransportSnapshot::default(), |merged, (_, egress)| {
                merged.merged(&egress.stats().snapshot())
            });
        UdpTransportStatus {
            name: name.to_string(),
            session: true,
            ingress_addr: self.ingress.local_addr().to_string(),
            ingress: self.ingress.stats().snapshot(),
            egress,
        }
    }
}
