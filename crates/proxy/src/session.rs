//! Fanout sessions: one upstream source, a shared head chain, and N
//! independently adapted receiver lanes.
//!
//! The paper's proxy serves one media source to *heterogeneous* receivers:
//! wired peers want the raw stream, while each wireless receiver wants its
//! own adaptation (FEC strength, rate, transforms) matched to its link.  A
//! [`Session`] is that unit of fanout:
//!
//! * one **head chain** ([`ThreadedChain`]) does the work every receiver
//!   shares — transcoding, compression, tapping — exactly once per packet,
//!   no matter how many receivers are attached;
//! * a **fanout worker** clones each head-chain batch to every lane.  The
//!   clone is zero-copy: packet payloads are `Arc`-backed, so fanning a
//!   batch out to N lanes bumps N reference counts instead of copying
//!   bytes.  A lane-local filter that *rewrites* payload bytes gets a
//!   private copy on write ([`Packet::payload_mut`]), so lanes can never
//!   observe each other's mutations;
//! * each **receiver lane** ([`Session::add_lane`]) owns a tail
//!   [`ThreadedChain`] of its own, live-reconfigurable through the same
//!   splice protocol as any stream — this is where a per-receiver
//!   adaptation loop inserts FEC for a lossy WLAN receiver while its wired
//!   siblings pay nothing.
//!
//! The shape follows the session/link layering of messaging systems such as
//! AMQP: one connection (the upstream source and head chain), many
//! independently flow-controlled links (the lanes), each with its own
//! endpoint and its own state.
//!
//! ```
//! use rapidware_proxy::Session;
//! use rapidware_packet::{Packet, PacketKind, SeqNo, StreamId};
//!
//! # fn main() -> Result<(), rapidware_proxy::ProxyError> {
//! let session = Session::new("audio")?;
//! let wired = session.add_lane("wired")?;
//! let wlan = session.add_lane("wlan")?;
//!
//! let input = session.input();
//! input.send(Packet::new(StreamId::new(1), SeqNo::new(0), PacketKind::AudioData, vec![7; 64]))
//!     .expect("session accepts packets");
//!
//! // Both lanes receive the packet; the payloads share one allocation.
//! let a = wired.recv().expect("wired lane delivers");
//! let b = wlan.recv().expect("wlan lane delivers");
//! assert!(a.shares_payload_with(&b), "fanout is zero-copy");
//! session.shutdown()?;
//! # Ok(())
//! # }
//! ```

use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use rapidware_filters::{
    ChainSpans, FecDecoderFilter, FecDecoderStats, Filter, SecureChannelSnapshot,
};
use rapidware_packet::Packet;
use rapidware_streams::{DetachableReceiver, DetachableSender};
use rapidware_telemetry::Registry;

use crate::error::ProxyError;
use crate::registry::{FilterRegistry, FilterSpec};
use crate::threaded::{ChainStats, ThreadedChain, DEFAULT_BATCH_SIZE};

/// Default per-pipe buffer capacity for session chains.
const DEFAULT_SESSION_CAPACITY: usize = 128;

/// A status snapshot of one receiver lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneStatus {
    /// Lane name.
    pub name: String,
    /// Filters installed on this lane's tail chain, in stream order.
    pub filters: Vec<String>,
    /// Packets this lane has delivered to its receiver endpoint.
    pub delivered: u64,
    /// Source packets reconstructed by FEC decoders installed on this lane
    /// through the session API (cumulative over the lane's lifetime, even
    /// across decoder removal).
    pub recovered: u64,
    /// Packets buffered at the lane's delivery endpoint, waiting for the
    /// receiver to read them.
    pub queue_depth: usize,
    /// Full tail-chain counters.
    pub stats: ChainStats,
}

impl rapidware_telemetry::StatSource for LaneStatus {
    fn snapshot(&self) -> Vec<rapidware_telemetry::Metric> {
        use rapidware_telemetry::Metric;
        let mut metrics = vec![
            Metric::new("delivered", self.delivered),
            Metric::new("recovered", self.recovered),
            Metric::new("queue_depth", self.queue_depth as u64),
        ];
        metrics.extend(rapidware_telemetry::StatSource::snapshot(&self.stats));
        metrics
    }
}

/// A status snapshot of a whole fanout session: the shared head chain plus
/// one entry per receiver lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionStatus {
    /// Session name.
    pub name: String,
    /// Filters installed on the shared head chain, in stream order.
    pub head_filters: Vec<String>,
    /// Head-chain counters.
    pub head_stats: ChainStats,
    /// Per-lane snapshots, in lane-creation order.
    pub lanes: Vec<LaneStatus>,
    /// Secure-channel counters summed over the head chain and every lane
    /// (zero everywhere when no encrypt/decrypt filter is installed).
    pub secure: SecureChannelSnapshot,
}

/// One receiver lane: a tail chain plus its endpoints and bookkeeping.
struct ReceiverLane {
    name: String,
    chain: ThreadedChain,
    output: DetachableReceiver<Packet>,
    decoder_stats: Vec<Arc<FecDecoderStats>>,
}

impl fmt::Debug for ReceiverLane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReceiverLane").field("name", &self.name).finish()
    }
}

struct SessionInner {
    lanes: Vec<ReceiverLane>,
    closed: bool,
}

/// The lane input senders the fanout worker writes into; shared so lanes
/// can be added while the session is live (a late joiner sees the stream
/// from its join point onward).
type LaneInputs = Arc<Mutex<Vec<DetachableSender<Packet>>>>;

/// One fanout session: a shared head chain feeding N receiver lanes, each
/// with its own live-reconfigurable tail chain and delivery endpoint.
pub struct Session {
    name: String,
    registry: FilterRegistry,
    head: ThreadedChain,
    inner: Mutex<SessionInner>,
    lane_inputs: LaneInputs,
    fanout: Mutex<Option<JoinHandle<()>>>,
    capacity: usize,
    batch_size: usize,
    /// Registry latency spans are created in, once telemetry is enabled;
    /// lanes added afterwards attach their own spans from here.
    telemetry: Mutex<Option<Arc<Registry>>>,
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("name", &self.name)
            .field("lanes", &self.lane_names())
            .finish()
    }
}

impl Session {
    /// Creates a session with the built-in filter registry and default
    /// capacity/batch size.
    ///
    /// # Errors
    ///
    /// Currently infallible; returns `Result` for parity with the chain
    /// constructors it wraps.
    pub fn new(name: impl Into<String>) -> Result<Self, ProxyError> {
        Self::with_config(
            name,
            FilterRegistry::with_builtins(),
            DEFAULT_SESSION_CAPACITY,
            DEFAULT_BATCH_SIZE,
        )
    }

    /// Creates a session with an explicit registry, per-pipe `capacity`,
    /// and per-stage `batch_size` (both the head chain and every lane tail
    /// chain use these).
    ///
    /// # Errors
    ///
    /// Currently infallible (see [`new`](Self::new)).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `batch_size` is zero.
    pub fn with_config(
        name: impl Into<String>,
        registry: FilterRegistry,
        capacity: usize,
        batch_size: usize,
    ) -> Result<Self, ProxyError> {
        let head = ThreadedChain::with_batch_size(capacity, batch_size)?;
        let lane_inputs: LaneInputs = Arc::new(Mutex::new(Vec::new()));
        let fanout = spawn_fanout(head.output(), Arc::clone(&lane_inputs), batch_size);
        Ok(Self {
            name: name.into(),
            registry,
            head,
            inner: Mutex::new(SessionInner {
                lanes: Vec::new(),
                closed: false,
            }),
            lane_inputs,
            fanout: Mutex::new(Some(fanout)),
            capacity,
            batch_size,
            telemetry: Mutex::new(None),
        })
    }

    /// Enables latency spans on this session: the shared head chain records
    /// under `session.<name>.head` (interior — packets exit downstream),
    /// and every lane, current and future, records under
    /// `session.<name>.lane.<lane>` with per-packet end-to-end latency at
    /// lane exit.
    pub fn enable_telemetry(&self, registry: &Arc<Registry>) {
        self.head
            .set_spans(ChainSpans::interior(registry, format!("session.{}.head", self.name)));
        // Publish first, then sweep: a concurrently added lane either sees
        // the registry itself or is already in the list swept below.
        *self.telemetry.lock() = Some(Arc::clone(registry));
        let inner = self.inner.lock();
        for lane in &inner.lanes {
            lane.chain.set_spans(ChainSpans::egress(
                registry,
                format!("session.{}.lane.{}", self.name, lane.name),
            ));
        }
    }

    /// Session name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The endpoint the upstream source writes into (feeds the head chain).
    pub fn input(&self) -> DetachableSender<Packet> {
        self.head.input()
    }

    /// Names of the lanes, in creation order.
    pub fn lane_names(&self) -> Vec<String> {
        self.inner.lock().lanes.iter().map(|l| l.name.clone()).collect()
    }

    /// Number of receiver lanes.
    pub fn lane_count(&self) -> usize {
        self.inner.lock().lanes.len()
    }

    /// Adds a receiver lane and returns its delivery endpoint.
    ///
    /// The lane starts as a null proxy (empty tail chain).  Packets that
    /// passed the fanout point before the lane existed are not replayed: a
    /// lane added mid-stream sees the stream from its join point onward.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::Splice`] if a lane with this name already
    /// exists or [`ProxyError::ChainClosed`] after shutdown.
    pub fn add_lane(
        &self,
        name: impl Into<String>,
    ) -> Result<DetachableReceiver<Packet>, ProxyError> {
        let name = name.into();
        // Read before taking the lanes lock (enable_telemetry publishes the
        // registry first and then sweeps the lane list under that lock).
        let spans_registry = self.telemetry.lock().clone();
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(ProxyError::ChainClosed);
        }
        if inner.lanes.iter().any(|l| l.name == name) {
            return Err(ProxyError::Splice(format!("lane {name} already exists")));
        }
        let chain = ThreadedChain::with_batch_size(self.capacity, self.batch_size)?;
        if let Some(registry) = &spans_registry {
            chain.set_spans(ChainSpans::egress(
                registry,
                format!("session.{}.lane.{name}", self.name),
            ));
        }
        let output = chain.output();
        // Publish the lane input to the fanout worker only once the lane is
        // fully constructed; the worker starts feeding it on its next batch.
        self.lane_inputs.lock().push(chain.input());
        inner.lanes.push(ReceiverLane {
            name,
            chain,
            output: output.clone(),
            decoder_stats: Vec::new(),
        });
        Ok(output)
    }

    /// A (new) handle on a lane's delivery endpoint.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::UnknownLane`] for unknown lanes.
    pub fn lane_output(&self, lane: &str) -> Result<DetachableReceiver<Packet>, ProxyError> {
        let inner = self.inner.lock();
        let lane = find_lane(&inner.lanes, lane)?;
        Ok(lane.output.clone())
    }

    /// Instantiates a filter from `spec` and splices it into the shared
    /// head chain at `position`.
    ///
    /// # Errors
    ///
    /// Returns registry, spec-validation, or splice errors.
    pub fn insert_head_filter(&self, position: usize, spec: &FilterSpec) -> Result<(), ProxyError> {
        let filter = self.registry.instantiate(spec)?;
        self.head.insert(position, filter)
    }

    /// Removes and returns the head-chain filter at `position`.
    ///
    /// # Errors
    ///
    /// Returns position or splice errors.
    pub fn remove_head_filter(&self, position: usize) -> Result<Box<dyn Filter>, ProxyError> {
        self.head.remove(position)
    }

    /// Names of the filters installed on the head chain.
    pub fn head_filter_names(&self) -> Vec<String> {
        self.head.names()
    }

    /// Instantiates a filter from `spec` and splices it into `lane`'s tail
    /// chain at `position` — the per-receiver adaptation path: only this
    /// lane's traffic flows through the new filter.
    ///
    /// The built-in `fec-decoder` kind is constructed directly (after the
    /// registry has validated that the kind is registered) so the lane can
    /// keep the decoder's stats handle — the per-lane `recovered` counts in
    /// [`LaneStatus`] come from here.  A registry that does not register
    /// `fec-decoder` sees the usual [`ProxyError::UnknownFilterKind`];
    /// a registry that overrides the kind with a custom filter keeps its
    /// override, without per-lane recovered stats.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::UnknownLane`], registry, spec-validation, or
    /// splice errors.
    pub fn insert_lane_filter(
        &self,
        lane: &str,
        position: usize,
        spec: &FilterSpec,
    ) -> Result<(), ProxyError> {
        let (filter, decoder_stats) = build_lane_filter(&self.registry, spec)?;
        let mut inner = self.inner.lock();
        let lane = find_lane_mut(&mut inner.lanes, lane)?;
        lane.chain.insert(position, filter)?;
        if let Some(stats) = decoder_stats {
            lane.decoder_stats.push(stats);
        }
        Ok(())
    }

    /// Removes and returns the filter at `position` on `lane`'s tail chain.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::UnknownLane`], position, or splice errors.
    pub fn remove_lane_filter(
        &self,
        lane: &str,
        position: usize,
    ) -> Result<Box<dyn Filter>, ProxyError> {
        let inner = self.inner.lock();
        find_lane(&inner.lanes, lane)?.chain.remove(position)
    }

    /// Names of the filters installed on `lane`'s tail chain.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::UnknownLane`] for unknown lanes.
    pub fn lane_filter_names(&self, lane: &str) -> Result<Vec<String>, ProxyError> {
        let inner = self.inner.lock();
        Ok(find_lane(&inner.lanes, lane)?.chain.names())
    }

    /// A full status snapshot: head-chain state plus per-lane delivery,
    /// recovery, and queue-depth counters.
    pub fn status(&self) -> SessionStatus {
        let inner = self.inner.lock();
        let mut secure = self.head.secure_snapshot();
        for lane in &inner.lanes {
            secure.merge(lane.chain.secure_snapshot());
        }
        SessionStatus {
            name: self.name.clone(),
            head_filters: self.head.names(),
            head_stats: self.head.stats(),
            lanes: inner
                .lanes
                .iter()
                .map(|lane| {
                    let stats = lane.chain.stats();
                    LaneStatus {
                        name: lane.name.clone(),
                        filters: lane.chain.names(),
                        delivered: stats.packets_out,
                        recovered: lane.decoder_stats.iter().map(|s| s.recovered()).sum(),
                        queue_depth: lane.output.available(),
                        stats,
                    }
                })
                .collect(),
            secure,
        }
    }

    /// Closes the session input: once in-flight packets drain through the
    /// head chain and every lane, each lane's endpoint observes end of
    /// stream.
    pub fn close_input(&self) {
        self.head.close_input();
    }

    /// Shuts the session down: closes the input, joins the fanout worker,
    /// and shuts down the head chain and every lane chain.
    ///
    /// Undrained lanes do not block shutdown: any packets still buffered at
    /// abandoned lane endpoints are discarded while the pipeline winds
    /// down (the fanout worker could otherwise sit in a back-pressured
    /// send against a full lane forever).
    ///
    /// # Errors
    ///
    /// Returns the first worker failure encountered (shutdown continues for
    /// the remaining chains regardless).
    pub fn shutdown(&self) -> Result<(), ProxyError> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Ok(());
        }
        inner.closed = true;
        self.head.close_input();
        // Close every lane endpoint first: the fanout worker (or a lane
        // stage worker) may be parked in a back-pressured send against an
        // abandoned lane, and a closed receiver fails that send
        // immediately instead of blocking the joins below forever.
        for lane in &inner.lanes {
            lane.output.close();
        }
        // The fanout worker now runs to head EOF (sends to closed lanes
        // drop their batches) and exits after closing every lane input.
        if let Some(handle) = self.fanout.lock().take() {
            if handle.join().is_err() {
                return Err(ProxyError::WorkerFailed(format!("fanout worker of {}", self.name)));
            }
        }
        let mut first_error = self.head.shutdown().err();
        for lane in inner.lanes.drain(..) {
            if let Err(err) = lane.chain.shutdown() {
                first_error.get_or_insert(err);
            }
        }
        match first_error {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

/// Builds the filter a lane-level insert installs, capturing the decoder
/// stats handle when the spec names the built-in `fec-decoder` kind.  The
/// (n, k) come from the registry-built filter's own name, so the registry
/// stays the single source of truth for parameter handling; the direct
/// construction only exists to capture the stats handle the boxed trait
/// object cannot expose.  Shared by the threaded and pooled sessions so
/// their per-lane `recovered` accounting can never drift.
pub(crate) type LaneFilterBuild = (Box<dyn Filter>, Option<Arc<FecDecoderStats>>);

pub(crate) fn build_lane_filter(
    registry: &FilterRegistry,
    spec: &FilterSpec,
) -> Result<LaneFilterBuild, ProxyError> {
    let registry_filter = registry.instantiate(spec)?;
    let decoder_code = (spec.kind == "fec-decoder")
        .then(|| parse_decoder_code(registry_filter.name()))
        .flatten();
    match decoder_code {
        Some((n, k)) => {
            let decoder = FecDecoderFilter::new(n, k).map_err(ProxyError::Filter)?;
            let stats = decoder.stats();
            Ok((Box::new(decoder) as Box<dyn Filter>, Some(stats)))
        }
        None => Ok((registry_filter, None)),
    }
}

/// Parses `(n, k)` out of the built-in decoder's display name
/// (`fec-decoder(n,k)`); returns `None` for a registry override whose
/// product does not follow the built-in naming convention (such a filter is
/// installed as-is, without per-lane recovered stats).
fn parse_decoder_code(name: &str) -> Option<(usize, usize)> {
    let inner = name.strip_prefix("fec-decoder(")?.strip_suffix(')')?;
    let (n, k) = inner.split_once(',')?;
    Some((n.trim().parse().ok()?, k.trim().parse().ok()?))
}

fn find_lane<'a>(lanes: &'a [ReceiverLane], name: &str) -> Result<&'a ReceiverLane, ProxyError> {
    lanes
        .iter()
        .find(|l| l.name == name)
        .ok_or_else(|| ProxyError::UnknownLane(name.to_string()))
}

fn find_lane_mut<'a>(
    lanes: &'a mut [ReceiverLane],
    name: &str,
) -> Result<&'a mut ReceiverLane, ProxyError> {
    lanes
        .iter_mut()
        .find(|l| l.name == name)
        .ok_or_else(|| ProxyError::UnknownLane(name.to_string()))
}

/// Spawns the fanout worker: drains head-chain output in batches and clones
/// each batch to every lane input.  Cloning a packet shares its `Arc`-backed
/// payload, so the fanout cost per lane is a refcount bump per packet, not a
/// byte copy.
fn spawn_fanout(
    head_out: DetachableReceiver<Packet>,
    lanes: LaneInputs,
    batch_size: usize,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("rapidware-fanout".to_string())
        .spawn(move || loop {
            match head_out.recv_up_to(batch_size.max(1)) {
                Ok(batch) => {
                    // Snapshot the lane list and send OUTSIDE the lock: a
                    // send may block on a full lane pipe, and holding the
                    // lock across it would wedge add_lane (and through it
                    // the whole session, shutdown included) behind one
                    // stalled consumer.  Sender handles are cheap clones.
                    let snapshot: Vec<DetachableSender<Packet>> = lanes.lock().clone();
                    // Clone to all but the last lane; move into the last
                    // (the common single-lane case forwards without any
                    // clone at all).  With no lanes yet the batch is
                    // dropped, matching the "a lane sees the stream from
                    // its join point onward" contract.
                    let mut dead: Vec<usize> = Vec::new();
                    if let Some((last, rest)) = snapshot.split_last() {
                        for (index, lane) in rest.iter().enumerate() {
                            if lane.send_batch(batch.clone()).is_err() {
                                dead.push(index);
                            }
                        }
                        if last.send_batch(batch).is_err() {
                            dead.push(snapshot.len() - 1);
                        }
                    }
                    // A failed send means the lane's receiver went away;
                    // prune it so departed receivers stop costing a clone
                    // per batch.  Indices are stable: only this worker
                    // removes entries, everyone else appends.
                    if !dead.is_empty() {
                        let mut lanes = lanes.lock();
                        for &index in dead.iter().rev() {
                            if index < lanes.len() {
                                lanes.remove(index);
                            }
                        }
                    }
                }
                Err(_) => {
                    // Head EOF (input closed) or chain shutdown: propagate
                    // end of stream to every lane and exit.
                    for lane in lanes.lock().iter() {
                        lane.close();
                    }
                    break;
                }
            }
        })
        .expect("spawning the fanout worker thread never fails")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapidware_packet::{PacketKind, SeqNo, StreamId};

    fn packet(seq: u64) -> Packet {
        Packet::new(StreamId::new(1), SeqNo::new(seq), PacketKind::AudioData, vec![seq as u8; 64])
    }

    fn collect_all(rx: &DetachableReceiver<Packet>) -> Vec<Packet> {
        let mut out = Vec::new();
        while let Ok(p) = rx.recv() {
            out.push(p);
        }
        out
    }

    #[test]
    fn fanout_delivers_every_packet_to_every_lane_in_order() {
        let session = Session::new("s").unwrap();
        let lanes: Vec<_> = (0..4).map(|i| session.add_lane(format!("lane-{i}")).unwrap()).collect();
        let input = session.input();
        // Stay under the per-lane pipe capacity so the sequential drain
        // below cannot deadlock against fanout backpressure (lanes are
        // normally drained concurrently; see the stress test).
        for seq in 0..100u64 {
            input.send(packet(seq)).unwrap();
        }
        session.close_input();
        for lane in &lanes {
            let received = collect_all(lane);
            assert_eq!(received.len(), 100);
            for (i, p) in received.iter().enumerate() {
                assert_eq!(p.seq().value(), i as u64);
            }
        }
        session.shutdown().unwrap();
    }

    #[test]
    fn concurrent_lane_drains_sustain_heavy_fanout() {
        let session = Session::new("stress").unwrap();
        let consumers: Vec<_> = (0..4)
            .map(|i| {
                let rx = session.add_lane(format!("lane-{i}")).unwrap();
                std::thread::spawn(move || collect_all(&rx))
            })
            .collect();
        let input = session.input();
        for seq in 0..5_000u64 {
            input.send(packet(seq)).unwrap();
        }
        session.close_input();
        for consumer in consumers {
            let received = consumer.join().unwrap();
            assert_eq!(received.len(), 5_000);
            for (i, p) in received.iter().enumerate() {
                assert_eq!(p.seq().value(), i as u64, "order preserved under backpressure");
            }
        }
        session.shutdown().unwrap();
    }

    #[test]
    fn fanout_is_zero_copy_across_lanes() {
        let session = Session::new("s").unwrap();
        let a = session.add_lane("a").unwrap();
        let b = session.add_lane("b").unwrap();
        session.input().send(packet(0)).unwrap();
        let from_a = a.recv().unwrap();
        let from_b = b.recv().unwrap();
        assert!(from_a.shares_payload_with(&from_b));
        session.shutdown().unwrap();
    }

    #[test]
    fn lane_filters_only_affect_their_own_lane() {
        let session = Session::new("s").unwrap();
        let plain = session.add_lane("plain").unwrap();
        let scrambled = session.add_lane("scrambled").unwrap();
        session
            .insert_lane_filter("scrambled", 0, &FilterSpec::new("scrambler").with_param("key", "7"))
            .unwrap();
        assert_eq!(session.lane_filter_names("plain").unwrap(), Vec::<String>::new());
        assert_eq!(session.lane_filter_names("scrambled").unwrap().len(), 1);

        let input = session.input();
        for seq in 0..32u64 {
            input.send(packet(seq)).unwrap();
        }
        session.close_input();
        let plain_out = collect_all(&plain);
        let scrambled_out = collect_all(&scrambled);
        assert_eq!(plain_out.len(), 32);
        assert_eq!(scrambled_out.len(), 32);
        for (p, s) in plain_out.iter().zip(&scrambled_out) {
            // The scrambler's copy-on-write rewrite never leaks into the
            // sibling lane.
            assert_eq!(p.payload(), packet(p.seq().value()).payload());
            assert_ne!(s.payload(), p.payload());
        }
        session.shutdown().unwrap();
    }

    #[test]
    fn head_filters_run_once_for_all_lanes() {
        let session = Session::new("s").unwrap();
        let a = session.add_lane("a").unwrap();
        let b = session.add_lane("b").unwrap();
        session
            .insert_head_filter(0, &FilterSpec::new("tap").with_param("name", "head-tap"))
            .unwrap();
        assert_eq!(session.head_filter_names(), vec!["head-tap"]);
        let input = session.input();
        for seq in 0..16u64 {
            input.send(packet(seq)).unwrap();
        }
        // Head filters splice out live, like on any stream.
        let removed = session.remove_head_filter(0).unwrap();
        assert_eq!(removed.name(), "head-tap");
        session.close_input();
        assert_eq!(collect_all(&a).len(), 16);
        assert_eq!(collect_all(&b).len(), 16);
        // The head chain accepted each packet exactly once despite two lanes.
        let status = session.status();
        assert_eq!(status.head_stats.packets_in, 16);
        session.shutdown().unwrap();
    }

    #[test]
    fn status_reports_per_lane_delivery_and_queue_depth() {
        let session = Session::new("status").unwrap();
        let fast = session.add_lane("fast").unwrap();
        let _slow = session.add_lane("slow").unwrap();
        let input = session.input();
        for seq in 0..8u64 {
            input.send(packet(seq)).unwrap();
        }
        // Drain only the fast lane; the slow lane's queue builds up.
        for _ in 0..8 {
            fast.recv().unwrap();
        }
        // Wait (bounded) for the fanout worker to finish pushing into the
        // slow lane, then snapshot.
        let mut waited = 0;
        let status = loop {
            let status = session.status();
            if status.lanes[1].queue_depth == 8 || waited > 400 {
                break status;
            }
            waited += 1;
            std::thread::sleep(std::time::Duration::from_millis(5));
        };
        assert_eq!(status.name, "status");
        assert_eq!(status.lanes.len(), 2);
        let fast_status = &status.lanes[0];
        let slow_status = &status.lanes[1];
        assert_eq!(fast_status.name, "fast");
        assert_eq!(fast_status.delivered, 8);
        assert_eq!(fast_status.queue_depth, 0);
        assert_eq!(slow_status.delivered, 8, "all packets arrived at the slow lane endpoint");
        assert_eq!(slow_status.queue_depth, 8, "nothing consumed: the backlog is visible");
        session.shutdown().unwrap();
    }

    #[test]
    fn lane_fec_decoder_reports_recovered_packets() {
        let session = Session::new("fec").unwrap();
        let lane = session.add_lane("lossy").unwrap();
        // Encode on the lane, drop every 5th packet, decode again — the
        // decoder's reconstructions surface in the lane status.
        session
            .insert_lane_filter("lossy", 0, &FilterSpec::new("fec-encoder"))
            .unwrap();
        session
            .insert_lane_filter("lossy", 1, &FilterSpec::new("drop-every").with_param("n", "5"))
            .unwrap();
        session
            .insert_lane_filter("lossy", 2, &FilterSpec::new("fec-decoder"))
            .unwrap();
        let input = session.input();
        for seq in 0..400u64 {
            input.send(packet(seq)).unwrap();
        }
        session.close_input();
        let received = collect_all(&lane);
        assert!(received.len() >= 395, "near-complete recovery, got {}", received.len());
        let status = session.status();
        assert!(status.lanes[0].recovered > 0, "decoder stats wired into the lane status");
        session.shutdown().unwrap();
    }

    #[test]
    fn unknown_lanes_are_reported() {
        let session = Session::new("s").unwrap();
        assert!(matches!(
            session.lane_filter_names("nope"),
            Err(ProxyError::UnknownLane(_))
        ));
        assert!(matches!(
            session.insert_lane_filter("nope", 0, &FilterSpec::new("null")),
            Err(ProxyError::UnknownLane(_))
        ));
        assert!(matches!(session.lane_output("nope"), Err(ProxyError::UnknownLane(_))));
        session.shutdown().unwrap();
    }

    #[test]
    fn duplicate_lane_names_are_rejected_and_shutdown_is_idempotent() {
        let session = Session::new("s").unwrap();
        session.add_lane("a").unwrap();
        assert!(session.add_lane("a").is_err());
        session.shutdown().unwrap();
        session.shutdown().unwrap();
        assert!(matches!(session.add_lane("b"), Err(ProxyError::ChainClosed)));
    }

    #[test]
    fn shutdown_with_undrained_lanes_does_not_deadlock() {
        // More packets than the lane pipes can hold, never drained: the
        // fanout worker is parked in a back-pressured send when shutdown
        // begins, and shutdown must still complete by discarding the
        // backlog.
        let session = Session::with_config("abandoned", FilterRegistry::with_builtins(), 16, 4)
            .unwrap();
        let _never_drained = session.add_lane("a").unwrap();
        let _also_never_drained = session.add_lane("b").unwrap();
        // A lane with a filter too, so the stage-worker flush path is
        // exercised as well.
        session
            .insert_lane_filter("b", 0, &FilterSpec::new("fec-encoder"))
            .unwrap();
        // Produce from a separate thread: with nobody draining the lanes,
        // the session back-pressures all the way to this sender, which
        // must not wedge the test (it stops once shutdown closes the
        // input).
        let input = session.input();
        let producer = std::thread::spawn(move || {
            for seq in 0..300u64 {
                if input.send(packet(seq)).is_err() {
                    break;
                }
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        let done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = std::sync::Arc::clone(&done);
        let shutter = std::thread::spawn(move || {
            session.shutdown().unwrap();
            flag.store(true, std::sync::atomic::Ordering::SeqCst);
        });
        for _ in 0..1_000 {
            if done.load(std::sync::atomic::Ordering::SeqCst) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert!(
            done.load(std::sync::atomic::Ordering::SeqCst),
            "shutdown hung on an undrained lane"
        );
        shutter.join().unwrap();
        producer.join().unwrap();
    }

    #[test]
    fn add_lane_while_worker_is_backpressured_does_not_deadlock() {
        // One stalled consumer must not wedge the control surface: while
        // the fanout worker is parked in a send against lane a's full
        // pipe, add_lane (which touches the same lane list) has to
        // complete.
        let session =
            Session::with_config("bp", FilterRegistry::with_builtins(), 8, 2).unwrap();
        let stalled = session.add_lane("a").unwrap();
        let input = session.input();
        let producer = std::thread::spawn(move || {
            for seq in 0..100u64 {
                if input.send(packet(seq)).is_err() {
                    break;
                }
            }
        });
        // Give the worker time to fill lane a's pipe and park.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let added = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                session.add_lane("late").unwrap();
                added.store(true, std::sync::atomic::Ordering::SeqCst);
            });
            for _ in 0..500 {
                if added.load(std::sync::atomic::Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            assert!(
                added.load(std::sync::atomic::Ordering::SeqCst),
                "add_lane deadlocked behind a stalled lane consumer"
            );
            // Unblock the worker so the scope's spawned thread (already
            // done) and the producer can wind down.
            stalled.close();
        });
        session.shutdown().unwrap();
        producer.join().unwrap();
    }

    #[test]
    fn lane_added_mid_stream_sees_only_later_packets() {
        let session = Session::new("s").unwrap();
        let first = session.add_lane("first").unwrap();
        let input = session.input();
        input.send(packet(0)).unwrap();
        // Wait until the packet has fanned out, so the join point is after it.
        assert_eq!(first.recv().unwrap().seq().value(), 0);
        let late = session.add_lane("late").unwrap();
        input.send(packet(1)).unwrap();
        session.close_input();
        let late_seqs: Vec<u64> = collect_all(&late).iter().map(|p| p.seq().value()).collect();
        assert_eq!(late_seqs, vec![1]);
        session.shutdown().unwrap();
    }
}
