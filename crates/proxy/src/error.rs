//! Error type for proxy operations.

use std::error::Error;
use std::fmt;

use rapidware_filters::FilterError;

/// Errors reported by the proxy runtime and its control plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProxyError {
    /// A filter or chain operation failed.
    Filter(FilterError),
    /// A splice operation on the underlying detachable pipes failed.
    Splice(String),
    /// The requested position is out of range for the chain.
    PositionOutOfRange {
        /// Requested position.
        position: usize,
        /// Current number of filters.
        len: usize,
    },
    /// The named stream does not exist on this proxy.
    UnknownStream(String),
    /// The named fanout session does not exist on this proxy.
    UnknownSession(String),
    /// The named receiver lane does not exist on this session.
    UnknownLane(String),
    /// The named shared-socket carrier does not exist on this proxy.
    UnknownCarrier(String),
    /// The filter kind named in a [`FilterSpec`](crate::FilterSpec) is not
    /// registered.
    UnknownFilterKind(String),
    /// A filter specification was missing or carried an invalid parameter.
    InvalidSpec {
        /// The parameter at fault.
        parameter: String,
        /// What was wrong with it.
        reason: String,
    },
    /// A control command could not be parsed.
    MalformedCommand(String),
    /// A pooled stream or session was requested on a proxy whose sharded
    /// runtime was never enabled.
    RuntimeDisabled,
    /// A UDP transport endpoint could not be created (socket bind or
    /// configuration failure; the text carries the OS error).
    Transport(String),
    /// The chain has already been shut down.
    ChainClosed,
    /// A worker thread disappeared unexpectedly (panicked).
    WorkerFailed(String),
}

impl fmt::Display for ProxyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProxyError::Filter(err) => write!(f, "filter error: {err}"),
            ProxyError::Splice(what) => write!(f, "splice failed: {what}"),
            ProxyError::PositionOutOfRange { position, len } => {
                write!(f, "position {position} out of range for chain of length {len}")
            }
            ProxyError::UnknownStream(name) => write!(f, "unknown stream {name}"),
            ProxyError::UnknownSession(name) => write!(f, "unknown session {name}"),
            ProxyError::UnknownLane(name) => write!(f, "unknown receiver lane {name}"),
            ProxyError::UnknownCarrier(name) => write!(f, "unknown carrier {name}"),
            ProxyError::UnknownFilterKind(kind) => write!(f, "unknown filter kind {kind}"),
            ProxyError::InvalidSpec { parameter, reason } => {
                write!(f, "invalid filter spec parameter {parameter}: {reason}")
            }
            ProxyError::MalformedCommand(text) => write!(f, "malformed control command: {text}"),
            ProxyError::RuntimeDisabled => {
                write!(f, "sharded runtime not enabled on this proxy (use with_runtime)")
            }
            ProxyError::Transport(what) => write!(f, "transport endpoint failed: {what}"),
            ProxyError::ChainClosed => write!(f, "chain has been shut down"),
            ProxyError::WorkerFailed(name) => write!(f, "filter worker {name} failed"),
        }
    }
}

impl Error for ProxyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProxyError::Filter(err) => Some(err),
            _ => None,
        }
    }
}

impl From<FilterError> for ProxyError {
    fn from(err: FilterError) -> Self {
        ProxyError::Filter(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ProxyError::UnknownStream("audio".into())
            .to_string()
            .contains("audio"));
        assert!(ProxyError::PositionOutOfRange { position: 3, len: 1 }
            .to_string()
            .contains('3'));
        assert!(ProxyError::ChainClosed.to_string().contains("shut down"));
    }

    #[test]
    fn filter_error_converts_and_sources() {
        let err: ProxyError = FilterError::Internal("x".into()).into();
        assert!(err.source().is_some());
        assert!(ProxyError::ChainClosed.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ProxyError>();
    }
}
