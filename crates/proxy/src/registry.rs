//! Dynamic filter instantiation: [`FilterSpec`] and [`FilterRegistry`].
//!
//! The paper's `ControlManager` "uses serialization of filter objects to
//! deliver new filters to the proxy".  Rust does not load foreign code at
//! run time, so the equivalent mechanism is a *description* of the desired
//! filter — kind plus parameters — shipped over the control channel and
//! instantiated by a registry of factory functions on the proxy side.
//! Third-party filters participate by registering a factory under a new
//! kind name, which preserves the paper's extensibility goal: the set of
//! filters a proxy can host is open-ended and not fixed at compile time.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use rapidware_filters::{
    AudioTranscoderFilter, CompressorFilter, DecompressorFilter, DecryptFilter, DescramblerFilter,
    DropEveryNth, EncryptFilter, FecDecoderFilter, FecEncoderFilter, Filter, NullFilter,
    RateLimiterFilter, ScramblerFilter, TapFilter, TranscodeMode,
};

use crate::error::ProxyError;

/// A serialisable description of a filter to instantiate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterSpec {
    /// Registered kind name (e.g. `fec-encoder`).
    pub kind: String,
    /// Kind-specific parameters (e.g. `n = 6`, `k = 4`).
    pub params: BTreeMap<String, String>,
}

impl FilterSpec {
    /// Creates a spec with no parameters.
    pub fn new(kind: impl Into<String>) -> Self {
        Self {
            kind: kind.into(),
            params: BTreeMap::new(),
        }
    }

    /// Adds a parameter, returning `self` for chaining.
    #[must_use]
    pub fn with_param(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.params.insert(key.into(), value.into());
        self
    }

    /// Looks up a string parameter.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params.get(key).map(String::as_str)
    }

    /// Looks up a required numeric parameter.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::InvalidSpec`] if the parameter is missing or
    /// not a number.
    pub fn usize_param(&self, key: &str) -> Result<usize, ProxyError> {
        let raw = self.param(key).ok_or_else(|| ProxyError::InvalidSpec {
            parameter: key.to_string(),
            reason: "missing".to_string(),
        })?;
        raw.parse().map_err(|_| ProxyError::InvalidSpec {
            parameter: key.to_string(),
            reason: format!("not a number: {raw}"),
        })
    }

    /// Looks up a numeric parameter with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::InvalidSpec`] if the parameter is present but
    /// not a number.
    pub fn usize_param_or(&self, key: &str, default: usize) -> Result<usize, ProxyError> {
        match self.param(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ProxyError::InvalidSpec {
                parameter: key.to_string(),
                reason: format!("not a number: {raw}"),
            }),
        }
    }
}

impl fmt::Display for FilterSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)?;
        for (key, value) in &self.params {
            write!(f, " {key}={value}")?;
        }
        Ok(())
    }
}

type Factory = Arc<dyn Fn(&FilterSpec) -> Result<Box<dyn Filter>, ProxyError> + Send + Sync>;

/// A registry mapping filter kind names to factory functions.
#[derive(Clone)]
pub struct FilterRegistry {
    factories: BTreeMap<String, Factory>,
}

impl fmt::Debug for FilterRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FilterRegistry")
            .field("kinds", &self.kinds())
            .finish()
    }
}

impl Default for FilterRegistry {
    fn default() -> Self {
        Self::with_builtins()
    }
}

impl FilterRegistry {
    /// Creates an empty registry (no kinds registered).
    pub fn empty() -> Self {
        Self {
            factories: BTreeMap::new(),
        }
    }

    /// Creates a registry pre-populated with every built-in filter kind:
    /// `null`, `tap`, `fec-encoder`, `fec-decoder`, `transcoder`,
    /// `compressor`, `decompressor`, `rate-limiter`, `scrambler`,
    /// `descrambler`, `encrypt`, `decrypt` (the AEAD secure-channel pair),
    /// and `drop-every` (fault injection).
    pub fn with_builtins() -> Self {
        let mut registry = Self::empty();
        registry.register("null", |_spec| Ok(Box::new(NullFilter::new())));
        registry.register("tap", |spec| {
            let name = spec.param("name").unwrap_or("tap").to_string();
            Ok(Box::new(TapFilter::new(name)))
        });
        registry.register("fec-encoder", |spec| {
            let n = spec.usize_param_or("n", 6)?;
            let k = spec.usize_param_or("k", 4)?;
            let frame_aligned = spec.param("frame_aligned") == Some("true");
            let encoder = FecEncoderFilter::new(n, k).map_err(ProxyError::Filter)?;
            Ok(Box::new(if frame_aligned {
                encoder.frame_aligned()
            } else {
                encoder
            }))
        });
        registry.register("fec-decoder", |spec| {
            let n = spec.usize_param_or("n", 6)?;
            let k = spec.usize_param_or("k", 4)?;
            Ok(Box::new(
                FecDecoderFilter::new(n, k).map_err(ProxyError::Filter)?,
            ))
        });
        registry.register("transcoder", |spec| {
            let mode = match spec.param("mode").unwrap_or("stereo-to-mono") {
                "stereo-to-mono" => TranscodeMode::StereoToMono,
                "halve-sample-rate" => TranscodeMode::HalveSampleRate,
                "16-to-8-bit" => TranscodeMode::SixteenToEightBit,
                other => {
                    return Err(ProxyError::InvalidSpec {
                        parameter: "mode".to_string(),
                        reason: format!("unknown transcode mode {other}"),
                    })
                }
            };
            Ok(Box::new(AudioTranscoderFilter::new(mode)))
        });
        registry.register("compressor", |_spec| Ok(Box::new(CompressorFilter::new())));
        registry.register("decompressor", |_spec| {
            Ok(Box::new(DecompressorFilter::new()))
        });
        registry.register("rate-limiter", |spec| {
            let bitrate = spec.usize_param_or("bits_per_second", 128_000)?;
            Ok(Box::new(RateLimiterFilter::with_bitrate(bitrate as u64)))
        });
        registry.register("scrambler", |spec| {
            let key = spec.usize_param_or("key", 0x5EED)? as u64;
            Ok(Box::new(ScramblerFilter::new(key)))
        });
        registry.register("descrambler", |spec| {
            let key = spec.usize_param_or("key", 0x5EED)? as u64;
            Ok(Box::new(DescramblerFilter::new(key)))
        });
        registry.register("encrypt", |spec| {
            let key = spec.usize_param_or("key", 0x5EED)? as u64;
            Ok(Box::new(EncryptFilter::new(key)))
        });
        registry.register("decrypt", |spec| {
            let key = spec.usize_param_or("key", 0x5EED)? as u64;
            Ok(Box::new(DecryptFilter::new(key)))
        });
        registry.register("drop-every", |spec| {
            let n = spec.usize_param_or("n", 10)?;
            if n == 0 {
                return Err(ProxyError::InvalidSpec {
                    parameter: "n".to_string(),
                    reason: "must be non-zero".to_string(),
                });
            }
            Ok(Box::new(DropEveryNth::new(n as u64)))
        });
        registry
    }

    /// Registers (or replaces) a factory for `kind`.
    pub fn register<F>(&mut self, kind: impl Into<String>, factory: F)
    where
        F: Fn(&FilterSpec) -> Result<Box<dyn Filter>, ProxyError> + Send + Sync + 'static,
    {
        self.factories.insert(kind.into(), Arc::new(factory));
    }

    /// Registered kind names, sorted.
    pub fn kinds(&self) -> Vec<String> {
        self.factories.keys().cloned().collect()
    }

    /// Returns `true` if `kind` is registered.
    pub fn contains(&self, kind: &str) -> bool {
        self.factories.contains_key(kind)
    }

    /// Instantiates a filter from its specification.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::UnknownFilterKind`] for unregistered kinds, or
    /// whatever error the factory reports for bad parameters.
    pub fn instantiate(&self, spec: &FilterSpec) -> Result<Box<dyn Filter>, ProxyError> {
        let factory = self
            .factories
            .get(&spec.kind)
            .ok_or_else(|| ProxyError::UnknownFilterKind(spec.kind.clone()))?;
        factory(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_kinds_are_registered() {
        let registry = FilterRegistry::with_builtins();
        for kind in [
            "null",
            "tap",
            "fec-encoder",
            "fec-decoder",
            "transcoder",
            "compressor",
            "decompressor",
            "rate-limiter",
            "scrambler",
            "descrambler",
            "encrypt",
            "decrypt",
            "drop-every",
        ] {
            assert!(registry.contains(kind), "missing builtin {kind}");
        }
        assert_eq!(registry.kinds().len(), 13);
    }

    #[test]
    fn secure_channel_pair_round_trips_through_the_registry() {
        use rapidware_packet::{Packet, PacketKind, SeqNo, StreamId};
        let registry = FilterRegistry::default();
        let mut encrypt = registry
            .instantiate(&FilterSpec::new("encrypt").with_param("key", "4242"))
            .unwrap();
        let mut decrypt = registry
            .instantiate(&FilterSpec::new("decrypt").with_param("key", "4242"))
            .unwrap();
        assert_eq!(encrypt.name(), "encrypt(key=0x1092)");
        assert_eq!(decrypt.name(), "decrypt(key=0x1092)");
        assert!(encrypt.secure_stats().is_some());
        let original =
            Packet::new(StreamId::new(1), SeqNo::new(0), PacketKind::AudioData, vec![1u8; 32]);
        let mut sealed: Vec<Packet> = Vec::new();
        encrypt.process(original.clone(), &mut sealed).unwrap();
        let mut opened: Vec<Packet> = Vec::new();
        decrypt.process(sealed.pop().unwrap(), &mut opened).unwrap();
        assert_eq!(opened, vec![original]);
    }

    #[test]
    fn instantiates_fec_encoder_with_parameters() {
        let registry = FilterRegistry::default();
        let spec = FilterSpec::new("fec-encoder")
            .with_param("n", "8")
            .with_param("k", "6");
        let filter = registry.instantiate(&spec).unwrap();
        assert_eq!(filter.name(), "fec-encoder(8,6)");
    }

    #[test]
    fn default_parameters_match_the_paper() {
        let registry = FilterRegistry::default();
        let encoder = registry.instantiate(&FilterSpec::new("fec-encoder")).unwrap();
        assert_eq!(encoder.name(), "fec-encoder(6,4)");
        let decoder = registry.instantiate(&FilterSpec::new("fec-decoder")).unwrap();
        assert_eq!(decoder.name(), "fec-decoder(6,4)");
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let registry = FilterRegistry::default();
        let err = registry
            .instantiate(&FilterSpec::new("quantum-entangler"))
            .unwrap_err();
        assert_eq!(err, ProxyError::UnknownFilterKind("quantum-entangler".into()));
    }

    #[test]
    fn invalid_parameters_are_reported() {
        let registry = FilterRegistry::default();
        let spec = FilterSpec::new("fec-encoder").with_param("n", "six");
        assert!(matches!(
            registry.instantiate(&spec),
            Err(ProxyError::InvalidSpec { .. })
        ));
        let spec = FilterSpec::new("fec-encoder").with_param("n", "2").with_param("k", "4");
        assert!(matches!(
            registry.instantiate(&spec),
            Err(ProxyError::Filter(_))
        ));
        let spec = FilterSpec::new("transcoder").with_param("mode", "nonsense");
        assert!(matches!(
            registry.instantiate(&spec),
            Err(ProxyError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn third_party_filters_can_be_registered() {
        let mut registry = FilterRegistry::empty();
        registry.register("third-party-null", |_spec| Ok(Box::new(NullFilter::new())));
        assert!(registry.contains("third-party-null"));
        assert!(!registry.contains("null"));
        let filter = registry
            .instantiate(&FilterSpec::new("third-party-null"))
            .unwrap();
        assert_eq!(filter.name(), "null");
    }

    #[test]
    fn spec_accessors_and_display() {
        let spec = FilterSpec::new("fec-encoder")
            .with_param("n", "6")
            .with_param("k", "4");
        assert_eq!(spec.param("n"), Some("6"));
        assert_eq!(spec.param("missing"), None);
        assert_eq!(spec.usize_param("k").unwrap(), 4);
        assert!(spec.usize_param("missing").is_err());
        assert_eq!(spec.usize_param_or("missing", 9).unwrap(), 9);
        assert_eq!(spec.to_string(), "fec-encoder k=4 n=6");
    }

    #[test]
    fn registry_debug_lists_kinds() {
        let registry = FilterRegistry::with_builtins();
        assert!(format!("{registry:?}").contains("fec-encoder"));
    }
}
