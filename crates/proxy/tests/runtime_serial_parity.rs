//! Pooled/serial parity: for arbitrary chain specs, shard counts, and
//! batch sizes, a chain hosted on the sharded worker pool emits exactly
//! the byte-identical packet stream that the serial [`FilterChain`]
//! baseline emits — scheduler shape (worker count, step batching, work
//! stealing, back-pressure parking) must be invisible in the output.
//!
//! This extends the PR 1/2 batch/serial parity suites from the data plane
//! to the scheduler.

use proptest::prelude::*;
use rapidware_filters::{
    CompressorFilter, DecompressorFilter, DescramblerFilter, DropEveryNth, FecDecoderFilter,
    FecEncoderFilter, Filter, FilterChain, NullFilter, ScramblerFilter, TapFilter,
};
use rapidware_packet::{FrameType, Packet, PacketKind, SeqNo, StreamId};
use rapidware_proxy::runtime::{Runtime, RuntimeConfig};

/// Builds one of the built-in chain configurations as a filter list;
/// called twice per case so the serial and pooled chains start from
/// identical state.
fn build_filters(selector: usize) -> Vec<Box<dyn Filter>> {
    match selector % 6 {
        0 => Vec::new(),
        1 => vec![
            Box::new(NullFilter::new()),
            Box::new(TapFilter::new("parity-tap")),
        ],
        2 => vec![
            Box::new(CompressorFilter::new()),
            Box::new(ScramblerFilter::new(0x5EED)),
            Box::new(DescramblerFilter::new(0x5EED)),
            Box::new(DecompressorFilter::new()),
        ],
        3 => vec![Box::new(FecEncoderFilter::fec_6_4().unwrap())],
        4 => vec![
            Box::new(FecEncoderFilter::fec_6_4().unwrap()),
            Box::new(FecDecoderFilter::fec_6_4().unwrap()),
        ],
        _ => vec![
            Box::new(FecEncoderFilter::fec_6_4().unwrap()),
            Box::new(DropEveryNth::new(3)),
            Box::new(FecDecoderFilter::fec_6_4().unwrap()),
        ],
    }
}

/// Materialises a generated `(kind, payload)` description as a packet.
/// `payload_only` excludes `Control` for FEC chains, whose block framing
/// assumes seq-contiguous payload packets (as in the PR 1 parity suite).
fn build_packet(
    seq: u64,
    kind_selector: u8,
    boundary: bool,
    payload: Vec<u8>,
    payload_only: bool,
) -> Packet {
    let choices = if payload_only { 3 } else { 4 };
    let kind = match kind_selector % choices {
        0 => PacketKind::AudioData,
        1 => PacketKind::Data,
        2 => PacketKind::VideoFrame {
            frame: FrameType::P,
            boundary,
        },
        _ => PacketKind::Control,
    };
    Packet::new(StreamId::new(1), SeqNo::new(seq), kind, payload)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pooled execution output equals the serial baseline for every
    /// built-in chain, packet mix, shard count, and batch size.
    #[test]
    fn runtime_serial_parity(
        selector in 0usize..6,
        shards in 1usize..=8,
        batch_size in 1usize..32,
        capacity in 4usize..64,
        descriptions in proptest::collection::vec(
            (any::<u8>(), any::<bool>(), proptest::collection::vec(any::<u8>(), 0..160)),
            1..80,
        ),
    ) {
        let uses_fec = selector % 6 >= 3;
        let packets: Vec<Packet> = descriptions
            .into_iter()
            .enumerate()
            .map(|(seq, (kind, boundary, payload))| {
                build_packet(seq as u64, kind, boundary, payload, uses_fec)
            })
            .collect();

        // Serial baseline: one packet at a time, then a final flush (the
        // pooled chain flushes at EOF, so the comparison includes it).
        let mut serial_chain = FilterChain::new();
        for filter in build_filters(selector) {
            serial_chain.push_back(filter).unwrap();
        }
        let mut serial_out: Vec<Packet> = Vec::new();
        for packet in &packets {
            serial_out.extend(serial_chain.process(packet.clone()).unwrap());
        }
        serial_out.extend(serial_chain.flush().unwrap());

        // Pooled execution on a fresh worker pool of the generated shape.
        let runtime = Runtime::start(
            RuntimeConfig::new(shards, batch_size).with_pipe_capacity(capacity),
        );
        let chain = runtime.add_chain("parity");
        for filter in build_filters(selector) {
            chain.push_back(filter).unwrap();
        }
        let input = chain.input();
        let output = chain.output();
        let consumer = std::thread::spawn(move || {
            let mut out = Vec::new();
            while let Ok(packet) = output.recv() {
                out.push(packet);
            }
            out
        });
        for packet in &packets {
            input.send(packet.clone()).unwrap();
        }
        chain.close_input();
        let pooled_out = consumer.join().unwrap();

        prop_assert_eq!(&serial_out, &pooled_out, "selector {} shards {} batch {}",
            selector, shards, batch_size);

        // The pipe-stats invariants hold on the pooled path: everything
        // sent was counted in, everything emitted was counted out.
        let stats = chain.stats();
        prop_assert_eq!(stats.packets_in, packets.len() as u64);
        prop_assert_eq!(stats.packets_out, serial_out.len() as u64);

        chain.shutdown().unwrap();
        prop_assert_eq!(runtime.live_tasks(), 0);
        runtime.shutdown().unwrap();
    }
}
