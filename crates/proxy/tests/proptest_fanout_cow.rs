//! COW fanout isolation: a tail filter that rewrites payload bytes on one
//! lane of a [`Session`] must leave every other lane byte-identical to the
//! serial per-receiver baseline.
//!
//! The fanout worker hands every lane the *same* `Arc`-backed payload
//! buffers (zero-copy).  The property under test is that copy-on-write is
//! the only way a lane-local mutation can happen: lane A's scrambler
//! rewrites bytes in place when it owns the buffer and copies first when it
//! does not, so lanes B..N must observe exactly the bytes a fully
//! independent per-receiver pipeline (deep-copied input, no sharing at all)
//! would deliver.

use proptest::prelude::*;
use rapidware_filters::{EncryptFilter, Filter, ScramblerFilter, TAG_LEN};
use rapidware_packet::{Packet, PacketKind, SeqNo, StreamId};
use rapidware_proxy::{FilterSpec, Session};

fn packet(seq: u64, payload: Vec<u8>) -> Packet {
    Packet::new(StreamId::new(1), SeqNo::new(seq), PacketKind::AudioData, payload)
}

/// The serial baseline for the mutating lane: one scrambler fed deep
/// copies of the payloads, sharing nothing with anyone.
fn serial_scrambled(payloads: &[Vec<u8>], key: u64) -> Vec<Packet> {
    let mut filter = ScramblerFilter::new(key);
    let mut out: Vec<Packet> = Vec::with_capacity(payloads.len());
    for (seq, payload) in payloads.iter().enumerate() {
        filter
            .process(packet(seq as u64, payload.clone()), &mut out)
            .expect("the scrambler never fails");
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lane A mutates, lanes B..N must match the serial per-receiver
    /// baseline byte for byte — and the mutating lane itself must match
    /// *its* serial baseline (COW never under- or over-copies).
    #[test]
    fn mutating_one_lane_never_leaks_into_the_others(
        lane_count in 2usize..6,
        key in any::<u64>(),
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..96),
            1..40,
        ),
    ) {
        let session = Session::new("cow").expect("sessions are constructible");
        let mut lanes = Vec::with_capacity(lane_count);
        for index in 0..lane_count {
            lanes.push(session.add_lane(format!("lane-{index}")).expect("unique lane names"));
        }
        // Lane 0 is the mutator; the rest are plain forwarding lanes.
        session
            .insert_lane_filter("lane-0", 0, &FilterSpec::new("scrambler").with_param("key", key.to_string()))
            .expect("the scrambler kind is registered");

        let input = session.input();
        for (seq, payload) in payloads.iter().enumerate() {
            input.send(packet(seq as u64, payload.clone())).expect("session accepts packets");
        }
        session.close_input();

        // Drain lanes concurrently: lanes are independently flow
        // controlled, and a serial drain could deadlock on backpressure.
        let outputs: Vec<Vec<Packet>> = lanes
            .into_iter()
            .map(|rx| std::thread::spawn(move || -> Vec<Packet> {
                std::iter::from_fn(|| rx.recv().ok()).collect()
            }))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|handle| handle.join().expect("lane drain does not panic"))
            .collect();

        // The mutating lane equals its fully independent serial baseline.
        let baseline = serial_scrambled(&payloads, key);
        prop_assert_eq!(outputs[0].len(), baseline.len());
        for (got, want) in outputs[0].iter().zip(&baseline) {
            prop_assert_eq!(got, want);
        }

        // Every other lane equals the untouched input (its serial baseline
        // is the identity pipeline), byte for byte.
        for lane in &outputs[1..] {
            prop_assert_eq!(lane.len(), payloads.len());
            for (got, original) in lane.iter().zip(&payloads) {
                prop_assert_eq!(got.payload(), &original[..]);
            }
        }
        session.shutdown().expect("clean shutdown");
    }

    /// A lane that *grows* the payload — the AEAD seal appending its
    /// 16-byte tag through the length-changing COW path — must never leak
    /// the growth into sibling lanes or diverge from its serial baseline.
    #[test]
    fn growing_one_lane_never_leaks_into_the_others(
        lane_count in 2usize..6,
        key in any::<u64>(),
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..96),
            1..40,
        ),
    ) {
        let session = Session::new("cow-grow").expect("sessions are constructible");
        let mut lanes = Vec::with_capacity(lane_count);
        for index in 0..lane_count {
            lanes.push(session.add_lane(format!("lane-{index}")).expect("unique lane names"));
        }
        // Lane 0 seals every frame in place (payload grows by TAG_LEN).
        session
            .insert_lane_filter("lane-0", 0, &FilterSpec::new("encrypt").with_param("key", key.to_string()))
            .expect("the encrypt kind is registered");

        let input = session.input();
        for (seq, payload) in payloads.iter().enumerate() {
            input.send(packet(seq as u64, payload.clone())).expect("session accepts packets");
        }
        session.close_input();

        let outputs: Vec<Vec<Packet>> = lanes
            .into_iter()
            .map(|rx| std::thread::spawn(move || -> Vec<Packet> {
                std::iter::from_fn(|| rx.recv().ok()).collect()
            }))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|handle| handle.join().expect("lane drain does not panic"))
            .collect();

        // The sealing lane equals its fully independent serial baseline:
        // same ciphertext, same tag, payload exactly TAG_LEN longer.
        let mut serial = EncryptFilter::new(key);
        let mut baseline: Vec<Packet> = Vec::with_capacity(payloads.len());
        for (seq, payload) in payloads.iter().enumerate() {
            serial
                .process(packet(seq as u64, payload.clone()), &mut baseline)
                .expect("the seal never fails");
        }
        prop_assert_eq!(outputs[0].len(), baseline.len());
        for ((got, want), original) in outputs[0].iter().zip(&baseline).zip(&payloads) {
            prop_assert_eq!(got, want);
            prop_assert_eq!(
                got.payload_len(),
                original.len() + TAG_LEN,
                "sealed payloads grow by exactly one tag"
            );
        }

        // Sibling lanes observe the original bytes at the original length:
        // the grow happened in a private buffer, never in the shared one.
        for lane in &outputs[1..] {
            prop_assert_eq!(lane.len(), payloads.len());
            for (got, original) in lane.iter().zip(&payloads) {
                prop_assert_eq!(got.payload(), &original[..]);
            }
        }
        session.shutdown().expect("clean shutdown");
    }
}
