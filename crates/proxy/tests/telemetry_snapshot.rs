//! End-to-end telemetry acceptance: one pooled, shared-socket, encrypted
//! FEC fanout session must surface everything the unified subsystem
//! promises through a single [`Proxy::telemetry`] snapshot — end-to-end
//! latency histograms, per-stage timings, runtime poll / queue-wait /
//! steal / reactor-scan profiling, carrier drain batching, and the legacy
//! stats structs folded in as flat metrics.

use rapidware_packet::{Packet, PacketKind, SeqNo, StreamId};
use rapidware_proxy::{
    FilterSpec, Proxy, RuntimeConfig, SharedUdpSessionConfig, UdpCarrierConfig,
};
use rapidware_transport::{SharedDrain, SharedUdpIngress, UdpConfig};

fn stream_packet(seq: u64) -> Packet {
    Packet::new(
        StreamId::new(1),
        SeqNo::new(seq),
        PacketKind::AudioData,
        vec![7u8; 48],
    )
}

fn encode_to(socket: &std::net::UdpSocket, peer: std::net::SocketAddr, packet: &Packet) {
    let mut scratch = Vec::new();
    packet.encode_into(&mut scratch);
    socket.send_to(&scratch, peer).unwrap();
}

/// Drains the app-side shared socket until `predicate` holds, with a hard
/// deadline bounding a genuine hang.
fn drain_app_until(app: &SharedUdpIngress, mut predicate: impl FnMut() -> bool) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while !predicate() {
        assert!(
            std::time::Instant::now() < deadline,
            "app-side shared drain made no progress"
        );
        if app.drain_batch() == SharedDrain::Empty {
            std::thread::yield_now();
        }
    }
}

#[test]
fn pooled_shared_udp_encrypted_fec_session_reports_unified_telemetry() {
    let config = UdpConfig::default();
    let app = SharedUdpIngress::bind("127.0.0.1:0", &config).unwrap();
    let route = app.open_stream(StreamId::new(1)).unwrap();

    let mut proxy = Proxy::with_runtime("observed", RuntimeConfig::new(2, 16));
    // Telemetry goes on before any placement so every layer — carrier
    // drain, session spans, runtime profiling — is instrumented.
    let registry = proxy.enable_telemetry();
    assert!(proxy.telemetry_registry().is_some());
    proxy.add_udp_carrier("wire", UdpCarrierConfig::new()).unwrap();
    let handle = proxy
        .add_session_udp_shared(
            "fanout",
            SharedUdpSessionConfig::on_carrier("wire")
                .with_stream(StreamId::new(1))
                .with_lane("wlan", app.local_addr()),
        )
        .unwrap();
    // Head: seal then FEC-encode; lane: FEC-decode then open — the app
    // receives plaintext source packets while the secure and recovery
    // counters all move.
    let session = proxy.pooled_session("fanout").unwrap();
    session
        .insert_head_filter(0, &FilterSpec::new("encrypt").with_param("key", "99"))
        .unwrap();
    session.insert_head_filter(1, &FilterSpec::new("fec-encoder")).unwrap();
    session.insert_lane_filter("wlan", 0, &FilterSpec::new("fec-decoder")).unwrap();
    session
        .insert_lane_filter("wlan", 1, &FilterSpec::new("decrypt").with_param("key", "99"))
        .unwrap();

    let app_tx = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
    for seq in 0..8u64 {
        encode_to(&app_tx, handle.ingress_addr(), &stream_packet(seq));
    }
    let mut received = 0u64;
    drain_app_until(&app, || {
        while let Ok(packet) = route.try_recv() {
            assert_eq!(packet.seq().value(), received, "plaintext source order");
            assert_eq!(packet.payload(), &[7u8; 48][..], "decrypt restored payload");
            received += 1;
        }
        received == 8
    });

    // Snapshot while the session is live so the legacy stats structs are
    // still attached.
    let snapshot = proxy.telemetry().expect("telemetry enabled");

    // Packet-lifecycle spans: the lane (egress) chain records batch and
    // ingress-to-egress latency; the head (interior) chain records batch
    // latency; both record sampled per-filter stage timings.
    let e2e = snapshot
        .histogram("session.fanout.lane.wlan.e2e_ns")
        .expect("end-to-end histogram registered");
    assert!(e2e.count() >= 8, "every delivered packet timed: {e2e:?}");
    assert!(e2e.sum > 0, "socket-ingress timestamps flowed to egress");
    assert!(
        snapshot.histogram("session.fanout.lane.wlan.batch_ns").expect("lane batch").count() > 0
    );
    assert!(snapshot.histogram("session.fanout.head.batch_ns").expect("head batch").count() > 0);
    assert!(
        snapshot.merged_histogram("session.fanout.head.filter.").count() > 0,
        "sampled head stage timings"
    );
    assert!(
        snapshot.merged_histogram("session.fanout.lane.wlan.filter.").count() > 0,
        "sampled lane stage timings"
    );

    // Runtime profiling hooks.
    assert!(snapshot.histogram("runtime.poll_ns").expect("poll histogram").count() > 0);
    assert!(
        snapshot.histogram("runtime.queue_wait_ns").expect("queue-wait histogram").count() > 0
    );
    assert!(
        snapshot.histogram("runtime.reactor.scan_ns").expect("scan histogram").count() > 0,
        "reactor scan latency recorded"
    );
    let drain = snapshot.histogram("udp.wire.drain_batch").expect("drain-batch histogram");
    assert!(drain.count() > 0 && drain.sum >= 8, "carrier drain batch sizes: {drain:?}");

    // Legacy stats folded into the same snapshot as flat metrics.
    assert_eq!(snapshot.stat("session.fanout.lane.wlan.delivered"), Some(8));
    assert!(snapshot.stat("session.fanout.head.packets_in") >= Some(8));
    assert!(snapshot.stat("session.fanout.secure.sealed") >= Some(8), "head sealed every packet");
    assert!(snapshot.stat("session.fanout.secure.opened") >= Some(8), "lane opened every packet");
    assert!(snapshot.stat("udp.wire.ingress.rx_datagrams") >= Some(8));
    assert!(snapshot.stat("udp.wire.egress.tx_datagrams") >= Some(8));
    assert_eq!(snapshot.stat("udp.wire.unknown_streams"), Some(0));
    assert!(snapshot.stat("runtime.polls") > Some(0));
    assert!(snapshot.stat("runtime.steals").is_some(), "steal counter present even when zero");
    assert_eq!(snapshot.stat("runtime.workers"), Some(2));

    // The JSON export and the control verb carry the same document.
    let json = proxy.telemetry_json().expect("json export");
    assert!(json.contains("\"session.fanout.lane.wlan.e2e_ns\""), "{json}");
    assert!(json.contains("\"runtime.poll_ns\""), "{json}");
    assert!(json.contains("\"p99\""), "{json}");

    // The registry handle returned by enable_telemetry is the live one.
    let direct = registry.snapshot();
    assert!(direct.histogram("session.fanout.lane.wlan.e2e_ns").is_some());

    handle.close_input();
    proxy.shutdown().unwrap();
}
