//! Stress tests for the thread-per-filter runtime: concurrent control
//! operations racing against a live stream, multiple independent streams on
//! one proxy, and shutdown under load.

use std::sync::Arc;

use rapidware_filters::{NullFilter, TapFilter};
use rapidware_packet::{Packet, PacketKind, SeqNo, StreamId};
use rapidware_proxy::{FilterSpec, Proxy, ThreadedChain};

fn packet(stream: u32, seq: u64) -> Packet {
    Packet::new(
        StreamId::new(stream),
        SeqNo::new(seq),
        PacketKind::AudioData,
        vec![(seq % 251) as u8; 200],
    )
}

#[test]
fn concurrent_splices_from_two_control_threads() {
    let chain = Arc::new(ThreadedChain::with_capacity(64).expect("chain"));
    let input = chain.input();
    let output = chain.output();
    const TOTAL: u64 = 8_000;

    let producer = std::thread::spawn(move || {
        for seq in 0..TOTAL {
            input.send(packet(1, seq)).unwrap();
        }
    });
    let consumer = std::thread::spawn(move || {
        let mut seqs = Vec::new();
        while let Ok(p) = output.recv() {
            seqs.push(p.seq().value());
        }
        seqs
    });

    // Two "control managers" reconfigure the same chain concurrently.
    // Inserting at the head is always valid; removals may race with the
    // other controller and are allowed to fail.
    let controllers: Vec<_> = (0..2)
        .map(|_| {
            let chain = Arc::clone(&chain);
            std::thread::spawn(move || {
                for _ in 0..25usize {
                    chain.insert(0, Box::new(NullFilter::new())).unwrap();
                    if chain.len() > 1 {
                        let _ = chain.remove(0);
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            })
        })
        .collect();
    for controller in controllers {
        controller.join().unwrap();
    }
    while !chain.is_empty() {
        chain.remove(0).unwrap();
    }

    producer.join().unwrap();
    chain.close_input();
    let seqs = consumer.join().unwrap();
    assert_eq!(seqs.len() as u64, TOTAL);
    for (index, seq) in seqs.iter().enumerate() {
        assert_eq!(*seq, index as u64);
    }
    assert!(chain.stats().splices >= 50);
    chain.shutdown().unwrap();
}

#[test]
fn multiple_streams_are_isolated() {
    let mut proxy = Proxy::new("multi-stream");
    let (audio_in, audio_out) = proxy.add_stream("audio").unwrap();
    let (video_in, video_out) = proxy.add_stream("video").unwrap();
    // Only the video stream gets a filter; the audio stream must be
    // unaffected by its presence (and by its later removal).
    proxy
        .insert_filter("video", 0, &FilterSpec::new("tap").with_param("name", "video-tap"))
        .unwrap();

    let audio_consumer = std::thread::spawn(move || {
        let mut count = 0u64;
        while audio_out.recv().is_ok() {
            count += 1;
        }
        count
    });
    let video_consumer = std::thread::spawn(move || {
        let mut count = 0u64;
        while video_out.recv().is_ok() {
            count += 1;
        }
        count
    });

    for seq in 0..500u64 {
        audio_in.send(packet(1, seq)).unwrap();
        video_in.send(packet(2, seq)).unwrap();
    }
    proxy.remove_filter("video", 0).unwrap();
    for seq in 500..1_000u64 {
        audio_in.send(packet(1, seq)).unwrap();
        video_in.send(packet(2, seq)).unwrap();
    }
    audio_in.close();
    video_in.close();
    assert_eq!(audio_consumer.join().unwrap(), 1_000);
    assert_eq!(video_consumer.join().unwrap(), 1_000);
    let status = proxy.status();
    assert_eq!(status.streams.len(), 2);
    assert!(status.streams.iter().all(|s| s.stats.packets_in == 1_000));
    proxy.shutdown().unwrap();
}

#[test]
fn shutdown_while_producer_is_blocked_does_not_hang() {
    // Fill the pipe so the producer blocks, then shut down; the producer's
    // send must fail (not deadlock) and shutdown must complete.
    let chain = ThreadedChain::with_capacity(4).expect("chain");
    let input = chain.input();
    let producer = std::thread::spawn(move || {
        let mut sent = 0u64;
        for seq in 0..10_000u64 {
            if input.send(packet(1, seq)).is_err() {
                break;
            }
            sent += 1;
        }
        sent
    });
    // Give the producer time to fill the buffer and block.
    std::thread::sleep(std::time::Duration::from_millis(20));
    // Drain a little, then close the output side entirely.
    let output = chain.output();
    let _ = output.try_recv();
    output.close();
    chain.shutdown().unwrap();
    let sent = producer.join().unwrap();
    assert!(sent < 10_000, "producer must observe the shutdown");
}

#[test]
fn tap_counters_survive_removal() {
    let chain = ThreadedChain::new().expect("chain");
    let tap = TapFilter::new("observed");
    let counters = tap.counters();
    chain.push_back(Box::new(tap)).unwrap();
    let input = chain.input();
    let output = chain.output();
    for seq in 0..50u64 {
        input.send(packet(1, seq)).unwrap();
    }
    // Drain so the removal's pause can complete, then remove the tap.
    let mut drained = 0;
    while drained < 50 {
        if output.recv().is_ok() {
            drained += 1;
        }
    }
    let removed = chain.remove(0).unwrap();
    assert_eq!(removed.name(), "observed");
    assert_eq!(counters.packets(), 50);
    chain.close_input();
    chain.shutdown().unwrap();
}
