//! Error types for detachable-stream operations.
//!
//! Every fallible public operation of this crate returns one of the error
//! enums defined here.  All error types implement [`std::error::Error`],
//! [`Send`], and [`Sync`], and their `Display` messages are lowercase without
//! trailing punctuation, per the Rust API guidelines.

use std::error::Error;
use std::fmt;

/// Error returned by [`DetachableSender::send`](crate::DetachableSender::send).
///
/// The undelivered item is handed back to the caller so that nothing is
/// silently dropped (the caller may retry, reroute, or count the loss).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendError<T> {
    /// The sending half has been closed (explicitly or because every handle
    /// was dropped).  No further sends will ever succeed.
    Closed(T),
    /// The receiver this sender is attached to has been closed or dropped.
    /// The sender itself is still usable after a
    /// [`reconnect`](crate::DetachableSender::reconnect) to a live
    /// receiver.
    ReceiverClosed(T),
}

impl<T> SendError<T> {
    /// Consumes the error and returns the item that could not be delivered.
    pub fn into_inner(self) -> T {
        match self {
            SendError::Closed(item) | SendError::ReceiverClosed(item) => item,
        }
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendError::Closed(_) => write!(f, "send on a closed detachable sender"),
            SendError::ReceiverClosed(_) => {
                write!(f, "send to a closed detachable receiver")
            }
        }
    }
}

impl<T: fmt::Debug> Error for SendError<T> {}

/// Error returned by [`DetachableReceiver::recv`](crate::DetachableReceiver::recv).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecvError {
    /// The attached sender closed the stream and every buffered item has
    /// already been consumed: clean end of stream.
    Eof,
    /// The receiver itself has been closed.
    Closed,
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvError::Eof => write!(f, "end of stream"),
            RecvError::Closed => write!(f, "receive on a closed detachable receiver"),
        }
    }
}

impl Error for RecvError {}

/// Error returned by
/// [`DetachableReceiver::try_recv`](crate::DetachableReceiver::try_recv) and
/// [`DetachableReceiver::recv_timeout`](crate::DetachableReceiver::recv_timeout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TryRecvError {
    /// The buffer is currently empty but the stream has not ended; trying
    /// again later may succeed.
    Empty,
    /// Clean end of stream (see [`RecvError::Eof`]).
    Eof,
    /// The receiver has been closed (see [`RecvError::Closed`]).
    Closed,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "detachable receiver buffer is empty"),
            TryRecvError::Eof => write!(f, "end of stream"),
            TryRecvError::Closed => write!(f, "receive on a closed detachable receiver"),
        }
    }
}

impl Error for TryRecvError {}

impl From<RecvError> for TryRecvError {
    fn from(err: RecvError) -> Self {
        match err {
            RecvError::Eof => TryRecvError::Eof,
            RecvError::Closed => TryRecvError::Closed,
        }
    }
}

/// Error returned by [`DetachableSender::pause`](crate::DetachableSender::pause).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PauseError {
    /// The sender has already been closed.
    Closed,
}

impl fmt::Display for PauseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PauseError::Closed => write!(f, "pause on a closed detachable sender"),
        }
    }
}

impl Error for PauseError {}

/// Error returned by
/// [`DetachableSender::reconnect`](crate::DetachableSender::reconnect).
///
/// Mirrors the `IOException("Already connected!")` thrown by the paper's
/// `reconnect()` when either side is still attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReconnectError {
    /// The sender is still attached to a receiver and has not been paused.
    SenderStillConnected,
    /// The target receiver already has a sender attached to it.
    ReceiverStillConnected,
    /// The sender has been closed.
    SenderClosed,
    /// The target receiver has been closed.
    ReceiverClosed,
}

impl fmt::Display for ReconnectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconnectError::SenderStillConnected => {
                write!(f, "sender is already connected; call pause first")
            }
            ReconnectError::ReceiverStillConnected => {
                write!(f, "receiver already has an attached sender")
            }
            ReconnectError::SenderClosed => write!(f, "reconnect on a closed sender"),
            ReconnectError::ReceiverClosed => write!(f, "reconnect to a closed receiver"),
        }
    }
}

impl Error for ReconnectError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_error_returns_item() {
        let err = SendError::Closed(42u32);
        assert_eq!(err.clone().into_inner(), 42);
        let err = SendError::ReceiverClosed("abc");
        assert_eq!(err.into_inner(), "abc");
    }

    #[test]
    fn display_messages_are_lowercase_without_period() {
        let messages = [
            SendError::Closed(()).to_string(),
            SendError::ReceiverClosed(()).to_string(),
            RecvError::Eof.to_string(),
            RecvError::Closed.to_string(),
            TryRecvError::Empty.to_string(),
            PauseError::Closed.to_string(),
            ReconnectError::SenderStillConnected.to_string(),
            ReconnectError::ReceiverStillConnected.to_string(),
            ReconnectError::SenderClosed.to_string(),
            ReconnectError::ReceiverClosed.to_string(),
        ];
        for msg in messages {
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'), "{msg}");
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
        }
    }

    #[test]
    fn try_recv_error_from_recv_error() {
        assert_eq!(TryRecvError::from(RecvError::Eof), TryRecvError::Eof);
        assert_eq!(TryRecvError::from(RecvError::Closed), TryRecvError::Closed);
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SendError<u32>>();
        assert_send_sync::<RecvError>();
        assert_send_sync::<TryRecvError>();
        assert_send_sync::<PauseError>();
        assert_send_sync::<ReconnectError>();
    }
}
