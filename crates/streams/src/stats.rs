//! Lightweight transfer statistics for a detachable pipe.
//!
//! Statistics are kept on both halves of a pipe and are used by the proxy's
//! observer raplets (e.g. a loss-rate observer compares what a sender
//! delivered with what a downstream endpoint received) and by the benchmark
//! harness.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, lock-free counters describing the lifetime activity of one pipe
/// half.
///
/// A [`PipeStats`] is cheap to clone (it is an `Arc` of atomics) and can be
/// handed to monitoring code while the pipe continues to run.
#[derive(Debug, Clone, Default)]
pub struct PipeStats {
    inner: Arc<StatsInner>,
}

#[derive(Debug, Default)]
struct StatsInner {
    items: AtomicU64,
    pauses: AtomicU64,
    reconnects: AtomicU64,
    blocked_sends: AtomicU64,
}

/// A point-in-time copy of a [`PipeStats`], suitable for diffing between two
/// observation instants.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct StatsSnapshot {
    /// Number of items successfully transferred through this half.
    pub items: u64,
    /// Number of completed `pause()` operations.
    pub pauses: u64,
    /// Number of completed `reconnect()` operations.
    pub reconnects: u64,
    /// Number of `send` calls that had to block (back-pressure or pause).
    pub blocked_sends: u64,
}

impl PipeStats {
    /// Creates a fresh, zeroed statistics block.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_item(&self) {
        self.inner.items.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_items(&self, count: u64) {
        self.inner.items.fetch_add(count, Ordering::Relaxed);
    }

    pub(crate) fn record_pause(&self) {
        self.inner.pauses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_reconnect(&self) {
        self.inner.reconnects.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_blocked_send(&self) {
        self.inner.blocked_sends.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of items successfully transferred so far.
    pub fn items(&self) -> u64 {
        self.inner.items.load(Ordering::Relaxed)
    }

    /// Number of completed `pause()` operations so far.
    pub fn pauses(&self) -> u64 {
        self.inner.pauses.load(Ordering::Relaxed)
    }

    /// Number of completed `reconnect()` operations so far.
    pub fn reconnects(&self) -> u64 {
        self.inner.reconnects.load(Ordering::Relaxed)
    }

    /// Number of `send` calls that had to block before completing.
    pub fn blocked_sends(&self) -> u64 {
        self.inner.blocked_sends.load(Ordering::Relaxed)
    }

    /// Returns a consistent-enough point-in-time copy of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            items: self.items(),
            pauses: self.pauses(),
            reconnects: self.reconnects(),
            blocked_sends: self.blocked_sends(),
        }
    }
}

impl rapidware_telemetry::StatSource for PipeStats {
    fn snapshot(&self) -> Vec<rapidware_telemetry::Metric> {
        rapidware_telemetry::StatSource::snapshot(&self.snapshot())
    }
}

impl rapidware_telemetry::StatSource for StatsSnapshot {
    fn snapshot(&self) -> Vec<rapidware_telemetry::Metric> {
        use rapidware_telemetry::Metric;
        vec![
            Metric::new("items", self.items),
            Metric::new("pauses", self.pauses),
            Metric::new("reconnects", self.reconnects),
            Metric::new("blocked_sends", self.blocked_sends),
        ]
    }
}

impl StatsSnapshot {
    /// Returns the per-counter difference `self - earlier`, saturating at
    /// zero so that a reset never produces nonsense deltas.
    pub fn delta_since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            items: self.items.saturating_sub(earlier.items),
            pauses: self.pauses.saturating_sub(earlier.pauses),
            reconnects: self.reconnects.saturating_sub(earlier.reconnects),
            blocked_sends: self.blocked_sends.saturating_sub(earlier.blocked_sends),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero() {
        let stats = PipeStats::new();
        assert_eq!(stats.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn counters_accumulate() {
        let stats = PipeStats::new();
        stats.record_item();
        stats.record_item();
        stats.record_pause();
        stats.record_reconnect();
        stats.record_blocked_send();
        let snap = stats.snapshot();
        assert_eq!(snap.items, 2);
        assert_eq!(snap.pauses, 1);
        assert_eq!(snap.reconnects, 1);
        assert_eq!(snap.blocked_sends, 1);
    }

    #[test]
    fn clones_share_counters() {
        let stats = PipeStats::new();
        let clone = stats.clone();
        clone.record_item();
        assert_eq!(stats.items(), 1);
    }

    #[test]
    fn delta_since_saturates() {
        let a = StatsSnapshot {
            items: 5,
            pauses: 1,
            reconnects: 0,
            blocked_sends: 2,
        };
        let b = StatsSnapshot {
            items: 3,
            pauses: 2,
            reconnects: 0,
            blocked_sends: 1,
        };
        let d = a.delta_since(&b);
        assert_eq!(d.items, 2);
        assert_eq!(d.pauses, 0); // saturated
        assert_eq!(d.blocked_sends, 1);
    }
}
