//! The detachable pipe itself: [`DetachableSender`] and [`DetachableReceiver`].
//!
//! The implementation mirrors the structure of the paper's
//! `DetachableOutputStream` / `DetachableInputStream` pair:
//!
//! * the item buffer lives on the **receiver** side (the DIS buffer);
//! * the sender holds a reference to its current sink (the `DOS.sink` field);
//! * `pause()` blocks new writes, waits for the receiver's buffer to drain,
//!   and then marks both halves disconnected (the `swflag` protocol);
//! * `reconnect()` validates that neither side is still connected, splices
//!   the two halves together, clears the pause flag, and wakes every thread
//!   that was blocked on the paused pipe (the `notifyAll()` calls).

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::error::{PauseError, ReconnectError, RecvError, SendError, TryRecvError};
use crate::stats::PipeStats;

/// Default buffer capacity (in items) of a detachable pipe created with
/// [`pipe`] when the caller does not care about tuning back-pressure.
pub const DEFAULT_CAPACITY: usize = 64;

/// A readiness hook installed on a pipe endpoint.
///
/// Watchers are the event-driven alternative to the blocking condvar waits:
/// a cooperative scheduler (such as the sharded runtime in
/// `rapidware-proxy`) registers a watcher and is *notified* when the pipe
/// may have become usable again, instead of parking a whole OS thread on
/// the pipe.  Notifications are **level-assisted edge triggers**:
///
/// * a watcher may be notified spuriously (the condition may already have
///   been consumed by the time it runs), but
/// * it is never *missed*: registration fires immediately when the watched
///   condition already holds, and every state transition that could unblock
///   the watcher fires it after the pipe's internal lock is released.
///
/// Implementations must be cheap and must never block or re-enter the pipe
/// that notified them (they run on the thread that triggered the
/// transition).
pub trait PipeWatcher: Send + Sync {
    /// Called when the watched endpoint may be ready.
    fn notify(&self);
}

// ---------------------------------------------------------------------------
// Receiver-side shared state (the DIS buffer).
// ---------------------------------------------------------------------------

struct RecvInner<T> {
    queue: VecDeque<T>,
    capacity: usize,
    /// Whether a sender is currently attached to this receiver.
    attached: bool,
    /// Set when the attached sender closed the stream: once the queue drains,
    /// `recv` reports a clean end of stream.
    eof: bool,
    /// Set when every receiver handle has been dropped or `close` was called.
    closed: bool,
    /// Notified when items (or EOF/close) become observable to a reader.
    data_watcher: Option<Arc<dyn PipeWatcher>>,
    /// Notified when buffer space (or close) becomes observable to a writer.
    space_watcher: Option<Arc<dyn PipeWatcher>>,
}

struct RecvShared<T> {
    inner: Mutex<RecvInner<T>>,
    /// Signalled when an item is pushed or the stream state changes.
    not_empty: Condvar,
    /// Signalled when an item is popped (space is available again).
    not_full: Condvar,
    /// Signalled when the queue becomes empty (pause() waits on this).
    drained: Condvar,
    /// Number of live `DetachableReceiver` handles sharing this state.
    handles: AtomicUsize,
    stats: PipeStats,
}

// ---------------------------------------------------------------------------
// Sender-side shared state (the DOS).
// ---------------------------------------------------------------------------

struct SendInner<T> {
    sink: Option<Arc<RecvShared<T>>>,
    paused: bool,
    closed: bool,
    /// Notified when the sender becomes attached-and-unpaused (or closed).
    ready_watcher: Option<Arc<dyn PipeWatcher>>,
    /// Number of `send` calls that have committed to the current sink but
    /// not yet finished pushing.  `pause` waits for this to reach zero so
    /// that no item can land on the *old* receiver after the pause completes
    /// (the paper gets the same guarantee from `synchronized` write/pause).
    in_flight: usize,
}

struct SendShared<T> {
    inner: Mutex<SendInner<T>>,
    /// Signalled when the sender is reconnected or closed, waking writers
    /// that blocked while the pipe was paused or detached.
    resumed: Condvar,
    /// Signalled when an in-flight send completes (pause waits on this).
    idle: Condvar,
    handles: AtomicUsize,
    stats: PipeStats,
}

/// The writing half of a detachable pipe (the paper's
/// `DetachableOutputStream`).
///
/// Cloning a `DetachableSender` yields another handle to the *same* sender:
/// the proxy's control thread typically keeps one clone for splicing while a
/// filter thread uses another clone for writing.  The sender closes when the
/// last handle is dropped or [`close`](Self::close) is called explicitly.
pub struct DetachableSender<T> {
    shared: Arc<SendShared<T>>,
}

/// The reading half of a detachable pipe (the paper's
/// `DetachableInputStream`).
///
/// The buffer of in-flight items lives on this side.  Cloning yields another
/// handle to the same receiver; the receiver closes when the last handle is
/// dropped or [`close`](Self::close) is called.
pub struct DetachableReceiver<T> {
    shared: Arc<RecvShared<T>>,
}

impl<T> fmt::Debug for DetachableSender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.shared.inner.lock();
        f.debug_struct("DetachableSender")
            .field("connected", &inner.sink.is_some())
            .field("paused", &inner.paused)
            .field("closed", &inner.closed)
            .finish()
    }
}

impl<T> fmt::Debug for DetachableReceiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.shared.inner.lock();
        f.debug_struct("DetachableReceiver")
            .field("buffered", &inner.queue.len())
            .field("capacity", &inner.capacity)
            .field("attached", &inner.attached)
            .field("eof", &inner.eof)
            .field("closed", &inner.closed)
            .finish()
    }
}

impl<T> Clone for DetachableSender<T> {
    fn clone(&self) -> Self {
        self.shared.handles.fetch_add(1, Ordering::SeqCst);
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for DetachableReceiver<T> {
    fn clone(&self) -> Self {
        self.shared.handles.fetch_add(1, Ordering::SeqCst);
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for DetachableSender<T> {
    fn drop(&mut self) {
        if self.shared.handles.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.close_impl();
        }
    }
}

impl<T> Drop for DetachableReceiver<T> {
    fn drop(&mut self) {
        if self.shared.handles.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.close_impl();
        }
    }
}

/// Creates a connected sender/receiver pair with the given buffer capacity.
///
/// This is the analogue of constructing a DOS/DIS pair and calling the
/// paper's `connect()` on them.
///
/// # Panics
///
/// Panics if `capacity` is zero; a zero-capacity pipe could never transfer
/// any item.
pub fn pipe<T>(capacity: usize) -> (DetachableSender<T>, DetachableReceiver<T>) {
    assert!(capacity > 0, "detachable pipe capacity must be non-zero");
    let receiver = DetachableReceiver::new_detached(capacity);
    {
        let mut r = receiver.shared.inner.lock();
        r.attached = true;
    }
    let sender = DetachableSender {
        shared: Arc::new(SendShared {
            inner: Mutex::new(SendInner {
                sink: Some(Arc::clone(&receiver.shared)),
                paused: false,
                closed: false,
                ready_watcher: None,
                in_flight: 0,
            }),
            resumed: Condvar::new(),
            idle: Condvar::new(),
            handles: AtomicUsize::new(1),
            stats: PipeStats::new(),
        }),
    };
    (sender, receiver)
}

/// Creates a sender and a receiver that are **not** connected to each other
/// (nor to anything else).
///
/// Detached pairs are the raw material for splicing: the proxy creates a new
/// filter with a detached input receiver and output sender, then uses
/// [`DetachableSender::reconnect`] to wire it into a live chain.
pub fn detached_pair<T>(capacity: usize) -> (DetachableSender<T>, DetachableReceiver<T>) {
    (
        DetachableSender::new_detached(),
        DetachableReceiver::new_detached(capacity),
    )
}

impl<T> DetachableSender<T> {
    /// Creates a sender that is not attached to any receiver.  Sends block
    /// until the sender is connected via [`reconnect`](Self::reconnect).
    pub fn new_detached() -> Self {
        Self {
            shared: Arc::new(SendShared {
                inner: Mutex::new(SendInner {
                    sink: None,
                    paused: false,
                    closed: false,
                    ready_watcher: None,
                    in_flight: 0,
                }),
                resumed: Condvar::new(),
                idle: Condvar::new(),
                handles: AtomicUsize::new(1),
                stats: PipeStats::new(),
            }),
        }
    }

    /// Delivers `item` to the currently attached receiver.
    ///
    /// If the pipe is paused or detached, the call **blocks** until the
    /// sender is reconnected (this is what makes splicing transparent to the
    /// upstream code, exactly as the paper's blocked writers are released by
    /// `reconnect()`'s `notifyAll`).  If the receiver's buffer is full the
    /// call blocks until space is available (back-pressure).
    ///
    /// # Errors
    ///
    /// Returns [`SendError::Closed`] if this sender has been closed, or
    /// [`SendError::ReceiverClosed`] if the attached receiver was closed; in
    /// both cases the item is handed back inside the error.
    pub fn send(&self, item: T) -> Result<(), SendError<T>> {
        // Phase 1: wait until we are attached to a live sink and not paused,
        // then register the send as in-flight so a concurrent `pause` waits
        // for it before declaring the old receiver drained.
        let sink = {
            let mut s = self.shared.inner.lock();
            loop {
                if s.closed {
                    return Err(SendError::Closed(item));
                }
                if !s.paused {
                    if let Some(sink) = &s.sink {
                        let sink = Arc::clone(sink);
                        s.in_flight += 1;
                        break sink;
                    }
                }
                self.shared.stats.record_blocked_send();
                self.shared.resumed.wait(&mut s);
            }
        };
        // Phase 2: push into the sink buffer, honouring back-pressure.
        let result = self.push_to(&sink, item);
        // Phase 3: un-register the in-flight send and wake any pauser.
        {
            let mut s = self.shared.inner.lock();
            s.in_flight -= 1;
        }
        self.shared.idle.notify_all();
        result
    }

    /// Delivers a whole batch to the currently attached receiver with one
    /// lock acquisition (plus one per back-pressure stall).
    ///
    /// Semantically equivalent to calling [`send`](Self::send) for each
    /// item in order — the same blocking behaviour while paused or
    /// detached, the same back-pressure against a full receiver buffer —
    /// but the per-item mutex and wake-up costs are paid once per batch.
    /// This is the sending half of the batched data plane; the receiving
    /// half is [`DetachableReceiver::recv_up_to`].
    ///
    /// ```
    /// use rapidware_streams::pipe;
    ///
    /// let (tx, rx) = pipe::<u32>(64);
    /// tx.send_batch((0..5).collect()).unwrap();
    /// assert_eq!(rx.recv_up_to(8).unwrap(), vec![0, 1, 2, 3, 4]);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`SendError::Closed`] or [`SendError::ReceiverClosed`]
    /// carrying the items that were **not** delivered (items pushed before
    /// the receiver closed stay delivered, exactly as with per-item sends).
    pub fn send_batch(&self, items: Vec<T>) -> Result<(), SendError<Vec<T>>> {
        if items.is_empty() {
            return Ok(());
        }
        // Phase 1: as in `send`, wait until attached and unpaused, then
        // register in-flight so a concurrent `pause` waits for the batch.
        let sink = {
            let mut s = self.shared.inner.lock();
            loop {
                if s.closed {
                    return Err(SendError::Closed(items));
                }
                if !s.paused {
                    if let Some(sink) = &s.sink {
                        let sink = Arc::clone(sink);
                        s.in_flight += 1;
                        break sink;
                    }
                }
                self.shared.stats.record_blocked_send();
                self.shared.resumed.wait(&mut s);
            }
        };
        // Phase 2: push the whole batch under one receiver lock, stalling
        // only when the buffer fills.
        let result = self.push_batch_to(&sink, items);
        // Phase 3: un-register and wake any pauser.
        {
            let mut s = self.shared.inner.lock();
            s.in_flight -= 1;
        }
        self.shared.idle.notify_all();
        result
    }

    /// Delivers as much of `items` as currently fits, **without blocking**,
    /// and returns the items that were not delivered.
    ///
    /// This is the cooperative-scheduler counterpart of
    /// [`send_batch`](Self::send_batch): instead of parking the calling
    /// thread on back-pressure, pause, or detachment, the call pushes the
    /// longest prefix that fits and hands the rest back so the caller can
    /// retry when its [`PipeWatcher`] fires.  An empty returned `Vec` means
    /// everything was delivered.  Items delivered by this call are counted
    /// in the pipe stats before the receiver lock is released, so an item a
    /// consumer has received is always already counted.
    ///
    /// ```
    /// use rapidware_streams::pipe;
    ///
    /// let (tx, rx) = pipe::<u32>(2);
    /// let leftover = tx.try_send_batch(vec![0, 1, 2, 3]).unwrap();
    /// assert_eq!(leftover, vec![2, 3], "only two slots were available");
    /// assert_eq!(rx.recv_up_to(8).unwrap(), vec![0, 1]);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`SendError::Closed`] if this sender has been closed or
    /// [`SendError::ReceiverClosed`] if the attached receiver was closed,
    /// carrying the undelivered items.  A paused or detached sender is not
    /// an error: nothing is delivered and every item is handed back.
    pub fn try_send_batch(&self, items: Vec<T>) -> Result<Vec<T>, SendError<Vec<T>>> {
        if items.is_empty() {
            return Ok(items);
        }
        // Phase 1: non-blocking attachment check; register in-flight so a
        // concurrent `pause` waits for the push below before detaching.
        let sink = {
            let mut s = self.shared.inner.lock();
            if s.closed {
                return Err(SendError::Closed(items));
            }
            if s.paused {
                self.shared.stats.record_blocked_send();
                return Ok(items);
            }
            match &s.sink {
                Some(sink) => {
                    let sink = Arc::clone(sink);
                    s.in_flight += 1;
                    sink
                }
                None => {
                    self.shared.stats.record_blocked_send();
                    return Ok(items);
                }
            }
        };
        // Phase 2: push the prefix that fits under one receiver lock.
        let result = {
            let mut items = items;
            let mut r = sink.inner.lock();
            if r.closed {
                drop(r);
                Err(SendError::ReceiverClosed(items))
            } else {
                let space = r.capacity.saturating_sub(r.queue.len());
                let leftover = items.split_off(space.min(items.len()));
                let delivered = items.len() as u64;
                for item in items {
                    r.queue.push_back(item);
                }
                if delivered > 0 {
                    // Counted before the lock is released ("received ⇒
                    // counted", as in the blocking paths).
                    sink.stats.record_items(delivered);
                    self.shared.stats.record_items(delivered);
                }
                let watcher = if delivered > 0 { r.data_watcher.clone() } else { None };
                drop(r);
                if delivered > 0 {
                    sink.not_empty.notify_one();
                    if let Some(watcher) = watcher {
                        watcher.notify();
                    }
                }
                if !leftover.is_empty() {
                    self.shared.stats.record_blocked_send();
                }
                Ok(leftover)
            }
        };
        // Phase 3: un-register and wake any pauser.
        {
            let mut s = self.shared.inner.lock();
            s.in_flight -= 1;
        }
        self.shared.idle.notify_all();
        result
    }

    fn push_batch_to(
        &self,
        sink: &Arc<RecvShared<T>>,
        items: Vec<T>,
    ) -> Result<(), SendError<Vec<T>>> {
        let mut iter = items.into_iter();
        let mut delivered = 0u64;
        let mut recorded = 0u64;
        let mut pending: Option<T> = None;
        let mut r = sink.inner.lock();
        // Stats are recorded while the receiver lock is still held (before
        // every point that releases it, including the back-pressure wait):
        // a consumer that popped one of these items must acquire the same
        // lock afterwards, so an item a consumer has received is always
        // already counted.
        macro_rules! record_delivered {
            () => {
                if delivered > recorded {
                    sink.stats.record_items(delivered - recorded);
                    self.shared.stats.record_items(delivered - recorded);
                    #[allow(unused_assignments)]
                    {
                        recorded = delivered;
                    }
                }
            };
        }
        loop {
            if r.closed {
                let rest: Vec<T> = pending.into_iter().chain(iter).collect();
                record_delivered!();
                drop(r);
                return Err(SendError::ReceiverClosed(rest));
            }
            while r.queue.len() < r.capacity {
                match pending.take().or_else(|| iter.next()) {
                    Some(item) => {
                        r.queue.push_back(item);
                        delivered += 1;
                    }
                    None => {
                        record_delivered!();
                        let watcher = r.data_watcher.clone();
                        drop(r);
                        sink.not_empty.notify_one();
                        if let Some(watcher) = watcher {
                            watcher.notify();
                        }
                        return Ok(());
                    }
                }
            }
            match pending.take().or_else(|| iter.next()) {
                None => {
                    record_delivered!();
                    let watcher = r.data_watcher.clone();
                    drop(r);
                    sink.not_empty.notify_one();
                    if let Some(watcher) = watcher {
                        watcher.notify();
                    }
                    return Ok(());
                }
                Some(item) => {
                    // Buffer full with items left: wake the consumer and
                    // wait for space (the wait releases the lock, so the
                    // items pushed so far are counted first).
                    pending = Some(item);
                    record_delivered!();
                    sink.not_empty.notify_one();
                    if let Some(watcher) = r.data_watcher.clone() {
                        watcher.notify();
                    }
                    self.shared.stats.record_blocked_send();
                    sink.not_full.wait(&mut r);
                }
            }
        }
    }

    fn push_to(&self, sink: &Arc<RecvShared<T>>, item: T) -> Result<(), SendError<T>> {
        let mut r = sink.inner.lock();
        loop {
            if r.closed {
                return Err(SendError::ReceiverClosed(item));
            }
            if r.queue.len() < r.capacity {
                break;
            }
            self.shared.stats.record_blocked_send();
            sink.not_full.wait(&mut r);
        }
        r.queue.push_back(item);
        // Counted before the lock is released: an item a consumer has
        // received is always already visible in the stats.
        sink.stats.record_item();
        self.shared.stats.record_item();
        let watcher = r.data_watcher.clone();
        drop(r);
        sink.not_empty.notify_one();
        if let Some(watcher) = watcher {
            watcher.notify();
        }
        Ok(())
    }

    /// Pauses the pipe: blocks new writes, waits until the attached
    /// receiver's buffer has been fully drained by its reader, and then marks
    /// both halves disconnected.
    ///
    /// After `pause` returns, the sender can be attached to a different
    /// receiver with [`reconnect`](Self::reconnect).  Pausing an already
    /// paused or detached sender is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`PauseError::Closed`] if the sender has been closed.
    ///
    /// # Blocking
    ///
    /// This method blocks until the downstream reader drains the buffer; if
    /// the reader has stopped reading (but is not closed) it blocks
    /// indefinitely, matching the paper's `wait()` on the sink's sync object.
    /// If the receiver is closed while waiting, the buffered items are
    /// dropped along with the receiver and `pause` returns successfully.
    pub fn pause(&self) -> Result<(), PauseError> {
        let sink = {
            let mut s = self.shared.inner.lock();
            if s.closed {
                return Err(PauseError::Closed);
            }
            s.paused = true;
            // Wait for sends that already committed to the current sink so
            // no item can arrive at the old receiver after we detach.
            while s.in_flight > 0 {
                self.shared.idle.wait(&mut s);
            }
            s.sink.clone()
        };
        if let Some(sink) = sink {
            let mut r = sink.inner.lock();
            while !r.queue.is_empty() && !r.closed {
                sink.drained.wait(&mut r);
            }
            r.attached = false;
            drop(r);
            // Wake a reader blocked on an empty queue so it can notice that
            // the producer went away if it is polling connection state.
            sink.not_empty.notify_all();
        }
        let mut s = self.shared.inner.lock();
        s.sink = None;
        drop(s);
        self.shared.stats.record_pause();
        Ok(())
    }

    /// Detaches this sender from its receiver **without** waiting for the
    /// receiver's buffer to drain.
    ///
    /// Unlike [`pause`](Self::pause), which implements the paper's
    /// drain-before-switch protocol (needed when the *same* sender will be
    /// re-attached elsewhere and ordering across the splice must be
    /// preserved), `detach` simply severs the connection: items already
    /// buffered at the receiver stay there and will be consumed in order
    /// before anything a *later* sender attaches and delivers.  This is the
    /// right operation when a sender is being discarded (e.g. a filter is
    /// removed from a chain) and the downstream consumer may be slow or
    /// absent — waiting for a drain there could block forever.
    ///
    /// The sender is left in the paused state; it can be re-attached with
    /// [`reconnect`](Self::reconnect) or simply dropped.
    ///
    /// # Errors
    ///
    /// Returns [`PauseError::Closed`] if the sender has been closed.
    pub fn detach(&self) -> Result<(), PauseError> {
        let sink = {
            let mut s = self.shared.inner.lock();
            if s.closed {
                return Err(PauseError::Closed);
            }
            s.paused = true;
            // Let sends that already committed to the old sink finish so the
            // buffered prefix is complete and ordered.
            while s.in_flight > 0 {
                self.shared.idle.wait(&mut s);
            }
            s.sink.take()
        };
        if let Some(sink) = sink {
            let mut r = sink.inner.lock();
            r.attached = false;
            drop(r);
            sink.not_empty.notify_all();
        }
        self.shared.stats.record_pause();
        Ok(())
    }

    /// Attaches this (paused or detached) sender to `receiver` and resumes
    /// any writers that were blocked while the pipe was paused.
    ///
    /// # Errors
    ///
    /// * [`ReconnectError::SenderStillConnected`] if the sender is attached
    ///   and has not been paused (call [`pause`](Self::pause) first);
    /// * [`ReconnectError::ReceiverStillConnected`] if `receiver` already has
    ///   a sender attached;
    /// * [`ReconnectError::SenderClosed`] / [`ReconnectError::ReceiverClosed`]
    ///   if either half has been closed.
    pub fn reconnect(&self, receiver: &DetachableReceiver<T>) -> Result<(), ReconnectError> {
        let mut s = self.shared.inner.lock();
        if s.closed {
            return Err(ReconnectError::SenderClosed);
        }
        if s.sink.is_some() && !s.paused {
            return Err(ReconnectError::SenderStillConnected);
        }
        {
            let mut r = receiver.shared.inner.lock();
            if r.closed {
                return Err(ReconnectError::ReceiverClosed);
            }
            if r.attached {
                return Err(ReconnectError::ReceiverStillConnected);
            }
            r.attached = true;
            r.eof = false;
        }
        s.sink = Some(Arc::clone(&receiver.shared));
        s.paused = false;
        let ready = s.ready_watcher.clone();
        drop(s);
        self.shared.stats.record_reconnect();
        receiver.shared.stats.record_reconnect();
        self.shared.resumed.notify_all();
        receiver.shared.not_empty.notify_all();
        if let Some(ready) = ready {
            ready.notify();
        }
        Ok(())
    }

    /// Closes the sender.  If a receiver is attached, it observes a clean end
    /// of stream once its buffer drains.  Subsequent sends fail with
    /// [`SendError::Closed`].
    pub fn close(&self) {
        self.close_impl();
    }

    fn close_impl(&self) {
        let (sink, ready) = {
            let mut s = self.shared.inner.lock();
            if s.closed {
                (None, None)
            } else {
                s.closed = true;
                (s.sink.take(), s.ready_watcher.clone())
            }
        };
        self.shared.resumed.notify_all();
        if let Some(ready) = ready {
            ready.notify();
        }
        if let Some(sink) = sink {
            let mut r = sink.inner.lock();
            r.eof = true;
            r.attached = false;
            let watcher = r.data_watcher.clone();
            drop(r);
            sink.not_empty.notify_all();
            sink.drained.notify_all();
            if let Some(watcher) = watcher {
                watcher.notify();
            }
        }
    }

    /// Returns `true` if the sender is currently attached to a receiver and
    /// not paused.
    pub fn is_connected(&self) -> bool {
        let s = self.shared.inner.lock();
        s.sink.is_some() && !s.paused && !s.closed
    }

    /// Returns `true` if the sender is paused (or detached) but not closed.
    pub fn is_paused(&self) -> bool {
        let s = self.shared.inner.lock();
        !s.closed && (s.paused || s.sink.is_none())
    }

    /// Returns `true` if the sender has been closed.
    pub fn is_closed(&self) -> bool {
        self.shared.inner.lock().closed
    }

    /// Lifetime transfer statistics for this sender.
    pub fn stats(&self) -> PipeStats {
        self.shared.stats.clone()
    }

    /// Installs (or replaces) the readiness watcher of this sender.
    ///
    /// The watcher is notified when a paused or detached sender becomes
    /// attached-and-unpaused again ([`reconnect`](Self::reconnect)) and when
    /// the sender is closed.  If the sender is already usable (or already
    /// closed) at registration time, the watcher fires immediately — a
    /// watcher registered "too late" can never miss the transition it was
    /// installed to observe.
    pub fn set_ready_watcher(&self, watcher: Arc<dyn PipeWatcher>) {
        let fire = {
            let mut s = self.shared.inner.lock();
            let fire = s.closed || (s.sink.is_some() && !s.paused);
            s.ready_watcher = Some(Arc::clone(&watcher));
            fire
        };
        if fire {
            watcher.notify();
        }
    }
}

impl<T> DetachableReceiver<T> {
    /// Creates a receiver that is not attached to any sender.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new_detached(capacity: usize) -> Self {
        assert!(capacity > 0, "detachable pipe capacity must be non-zero");
        Self {
            shared: Arc::new(RecvShared {
                inner: Mutex::new(RecvInner {
                    queue: VecDeque::with_capacity(capacity.min(1024)),
                    capacity,
                    attached: false,
                    eof: false,
                    closed: false,
                    data_watcher: None,
                    space_watcher: None,
                }),
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
                drained: Condvar::new(),
                handles: AtomicUsize::new(1),
                stats: PipeStats::new(),
            }),
        }
    }

    /// Blocks until an item is available and returns it.
    ///
    /// While the pipe is paused for splicing, `recv` simply keeps waiting —
    /// from the reader's perspective a splice is indistinguishable from a
    /// quiet producer, which is exactly the transparency property the paper
    /// requires of filter insertion.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError::Eof`] after the attached sender closed and the
    /// buffer drained, or [`RecvError::Closed`] if the receiver was closed.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut r = self.shared.inner.lock();
        loop {
            if let Some(item) = r.queue.pop_front() {
                let empty = r.queue.is_empty();
                let watcher = r.space_watcher.clone();
                drop(r);
                self.shared.not_full.notify_one();
                if empty {
                    self.shared.drained.notify_all();
                }
                if let Some(watcher) = watcher {
                    watcher.notify();
                }
                return Ok(item);
            }
            if r.closed {
                return Err(RecvError::Closed);
            }
            if r.eof {
                return Err(RecvError::Eof);
            }
            self.shared.not_empty.wait(&mut r);
        }
    }

    /// Receives up to `max` buffered items with a single lock acquisition,
    /// blocking only for the first.
    ///
    /// This is the batched data plane's drain operation: a consumer that
    /// calls `recv` in a loop pays one mutex acquisition (and possibly one
    /// condvar wake-up) per item, while `recv_up_to` moves everything
    /// currently buffered — capped at `max` — in one critical section.  The
    /// returned batch preserves arrival order and is never empty.
    ///
    /// ```
    /// use rapidware_streams::pipe;
    ///
    /// let (tx, rx) = pipe::<u32>(64);
    /// for item in 0..10 {
    ///     tx.send(item).unwrap();
    /// }
    /// let batch = rx.recv_up_to(8).unwrap();
    /// assert_eq!(batch, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    /// assert_eq!(rx.recv_up_to(8).unwrap(), vec![8, 9]);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`RecvError::Eof`] after the attached sender closed and the
    /// buffer drained, or [`RecvError::Closed`] if the receiver was closed.
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero.
    pub fn recv_up_to(&self, max: usize) -> Result<Vec<T>, RecvError> {
        assert!(max > 0, "recv_up_to needs a non-zero batch size");
        let mut r = self.shared.inner.lock();
        loop {
            if !r.queue.is_empty() {
                let take = r.queue.len().min(max);
                let batch: Vec<T> = r.queue.drain(..take).collect();
                let empty = r.queue.is_empty();
                let watcher = r.space_watcher.clone();
                drop(r);
                // Potentially many slots opened up: wake every blocked
                // producer, not just one.
                self.shared.not_full.notify_all();
                if empty {
                    self.shared.drained.notify_all();
                }
                if let Some(watcher) = watcher {
                    watcher.notify();
                }
                return Ok(batch);
            }
            if r.closed {
                return Err(RecvError::Closed);
            }
            if r.eof {
                return Err(RecvError::Eof);
            }
            self.shared.not_empty.wait(&mut r);
        }
    }

    /// Receives up to `max` buffered items with a single lock acquisition,
    /// **without blocking**.
    ///
    /// This is the cooperative-scheduler counterpart of
    /// [`recv_up_to`](Self::recv_up_to): where a thread-per-filter worker
    /// parks on an empty pipe, a pooled chain task calls `try_recv_up_to`,
    /// and — when it reports [`TryRecvError::Empty`] — goes idle until the
    /// receiver's data [`PipeWatcher`] fires.  The returned batch preserves
    /// arrival order and is never empty.
    ///
    /// ```
    /// use rapidware_streams::{pipe, TryRecvError};
    ///
    /// let (tx, rx) = pipe::<u32>(8);
    /// assert_eq!(rx.try_recv_up_to(4).unwrap_err(), TryRecvError::Empty);
    /// tx.send_batch(vec![0, 1, 2]).unwrap();
    /// assert_eq!(rx.try_recv_up_to(2).unwrap(), vec![0, 1]);
    /// assert_eq!(rx.try_recv_up_to(2).unwrap(), vec![2]);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`TryRecvError::Empty`] if nothing is buffered (but the
    /// stream is still live), [`TryRecvError::Eof`] after the attached
    /// sender closed and the buffer drained, or [`TryRecvError::Closed`] if
    /// the receiver was closed.
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero.
    pub fn try_recv_up_to(&self, max: usize) -> Result<Vec<T>, TryRecvError> {
        assert!(max > 0, "try_recv_up_to needs a non-zero batch size");
        let mut r = self.shared.inner.lock();
        if !r.queue.is_empty() {
            let take = r.queue.len().min(max);
            let batch: Vec<T> = r.queue.drain(..take).collect();
            let empty = r.queue.is_empty();
            let watcher = r.space_watcher.clone();
            drop(r);
            self.shared.not_full.notify_all();
            if empty {
                self.shared.drained.notify_all();
            }
            if let Some(watcher) = watcher {
                watcher.notify();
            }
            return Ok(batch);
        }
        if r.closed {
            return Err(TryRecvError::Closed);
        }
        if r.eof {
            return Err(TryRecvError::Eof);
        }
        Err(TryRecvError::Empty)
    }

    /// Like [`recv`](Self::recv) but gives up after `timeout`.
    ///
    /// # Errors
    ///
    /// Returns [`TryRecvError::Empty`] on timeout, and the usual end-of-stream
    /// or closed errors otherwise.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, TryRecvError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut r = self.shared.inner.lock();
        loop {
            if let Some(item) = r.queue.pop_front() {
                let empty = r.queue.is_empty();
                let watcher = r.space_watcher.clone();
                drop(r);
                self.shared.not_full.notify_one();
                if empty {
                    self.shared.drained.notify_all();
                }
                if let Some(watcher) = watcher {
                    watcher.notify();
                }
                return Ok(item);
            }
            if r.closed {
                return Err(TryRecvError::Closed);
            }
            if r.eof {
                return Err(TryRecvError::Eof);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(TryRecvError::Empty);
            }
            if self
                .shared
                .not_empty
                .wait_for(&mut r, deadline - now)
                .timed_out()
                && r.queue.is_empty()
                && !r.closed
                && !r.eof
            {
                return Err(TryRecvError::Empty);
            }
        }
    }

    /// Returns an item if one is immediately available.
    ///
    /// # Errors
    ///
    /// Returns [`TryRecvError::Empty`] if the buffer is empty (but the stream
    /// is still live), [`TryRecvError::Eof`] on clean end of stream, or
    /// [`TryRecvError::Closed`] if the receiver is closed.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut r = self.shared.inner.lock();
        if let Some(item) = r.queue.pop_front() {
            let empty = r.queue.is_empty();
            let watcher = r.space_watcher.clone();
            drop(r);
            self.shared.not_full.notify_one();
            if empty {
                self.shared.drained.notify_all();
            }
            if let Some(watcher) = watcher {
                watcher.notify();
            }
            return Ok(item);
        }
        if r.closed {
            return Err(TryRecvError::Closed);
        }
        if r.eof {
            return Err(TryRecvError::Eof);
        }
        Err(TryRecvError::Empty)
    }

    /// Number of items currently buffered (the paper's `available()`).
    pub fn available(&self) -> usize {
        self.shared.inner.lock().queue.len()
    }

    /// Returns `true` if no items are buffered.
    pub fn is_empty(&self) -> bool {
        self.available() == 0
    }

    /// Buffer capacity this receiver was created with.
    pub fn capacity(&self) -> usize {
        self.shared.inner.lock().capacity
    }

    /// Returns `true` if a sender is currently attached.
    pub fn is_attached(&self) -> bool {
        self.shared.inner.lock().attached
    }

    /// Returns `true` if the stream has ended (sender closed) — buffered
    /// items may still be readable.
    pub fn is_eof(&self) -> bool {
        self.shared.inner.lock().eof
    }

    /// Returns `true` if this receiver has been closed.
    pub fn is_closed(&self) -> bool {
        self.shared.inner.lock().closed
    }

    /// Closes the receiver.  Blocked and future senders observe
    /// [`SendError::ReceiverClosed`]; buffered items are dropped.
    pub fn close(&self) {
        self.close_impl();
    }

    fn close_impl(&self) {
        let mut r = self.shared.inner.lock();
        if r.closed {
            return;
        }
        r.closed = true;
        r.attached = false;
        r.queue.clear();
        let data_watcher = r.data_watcher.clone();
        let space_watcher = r.space_watcher.clone();
        drop(r);
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        self.shared.drained.notify_all();
        // Both sides of a cooperative pipeline must observe the close: a
        // reader task to stop waiting for data, a writer task to fail fast
        // instead of waiting for space that will never appear.
        if let Some(watcher) = data_watcher {
            watcher.notify();
        }
        if let Some(watcher) = space_watcher {
            watcher.notify();
        }
    }

    /// Drains every currently buffered item into a `Vec` without blocking.
    pub fn drain_buffered(&self) -> Vec<T> {
        let mut r = self.shared.inner.lock();
        let items: Vec<T> = r.queue.drain(..).collect();
        let watcher = r.space_watcher.clone();
        drop(r);
        if !items.is_empty() {
            self.shared.not_full.notify_all();
            self.shared.drained.notify_all();
            if let Some(watcher) = watcher {
                watcher.notify();
            }
        }
        items
    }

    /// Lifetime transfer statistics for this receiver.
    pub fn stats(&self) -> PipeStats {
        self.shared.stats.clone()
    }

    /// Installs (or replaces) the data-readiness watcher of this receiver.
    ///
    /// The watcher is notified after items are delivered into the buffer,
    /// when the attached sender closes (EOF becomes observable), and when
    /// the receiver itself is closed.  If any of those conditions already
    /// holds at registration time the watcher fires immediately, so a
    /// consumer that registers *after* items arrived can never sleep
    /// through them — the missed-notify window a bare condition variable
    /// would have here is closed by design.
    pub fn set_data_watcher(&self, watcher: Arc<dyn PipeWatcher>) {
        let fire = {
            let mut r = self.shared.inner.lock();
            let fire = !r.queue.is_empty() || r.eof || r.closed;
            r.data_watcher = Some(Arc::clone(&watcher));
            fire
        };
        if fire {
            watcher.notify();
        }
    }

    /// Installs (or replaces) the space-readiness watcher of this receiver.
    ///
    /// The watcher is notified after a consumer pops items (buffer space
    /// opened up) and when the receiver is closed (writers should fail
    /// fast).  If the buffer already has free space — or the receiver is
    /// already closed — at registration time, the watcher fires
    /// immediately.
    pub fn set_space_watcher(&self, watcher: Arc<dyn PipeWatcher>) {
        let fire = {
            let mut r = self.shared.inner.lock();
            let fire = r.queue.len() < r.capacity || r.closed;
            r.space_watcher = Some(Arc::clone(&watcher));
            fire
        };
        if fire {
            watcher.notify();
        }
    }
}

/// Iterator adapter: iterating a receiver yields items until end of stream
/// or close.
impl<T> IntoIterator for DetachableReceiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;

    fn into_iter(self) -> IntoIter<T> {
        IntoIter { receiver: self }
    }
}

/// Blocking iterator over the items of a [`DetachableReceiver`].
#[derive(Debug)]
pub struct IntoIter<T> {
    receiver: DetachableReceiver<T>,
}

impl<T> Iterator for IntoIter<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn basic_send_recv_in_order() {
        let (tx, rx) = pipe::<u32>(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_panics() {
        let _ = pipe::<u8>(0);
    }

    #[test]
    fn close_propagates_eof_after_drain() {
        let (tx, rx) = pipe::<u8>(4);
        tx.send(7).unwrap();
        tx.close();
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(rx.recv().unwrap_err(), RecvError::Eof);
    }

    #[test]
    fn drop_of_last_sender_is_eof() {
        let (tx, rx) = pipe::<u8>(4);
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        drop(tx);
        // Still one live handle: no EOF yet.
        assert_eq!(rx.try_recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Empty);
        drop(tx2);
        assert_eq!(rx.recv().unwrap_err(), RecvError::Eof);
    }

    #[test]
    fn send_after_close_returns_item() {
        let (tx, _rx) = pipe::<String>(4);
        tx.close();
        let err = tx.send("hello".to_string()).unwrap_err();
        assert_eq!(err.into_inner(), "hello");
    }

    #[test]
    fn send_to_closed_receiver_errors() {
        let (tx, rx) = pipe::<u8>(4);
        rx.close();
        assert!(matches!(
            tx.send(1).unwrap_err(),
            SendError::ReceiverClosed(1)
        ));
    }

    #[test]
    fn backpressure_blocks_and_resumes() {
        let (tx, rx) = pipe::<u32>(2);
        tx.send(0).unwrap();
        tx.send(1).unwrap();
        let producer = thread::spawn(move || {
            // This send must block until the consumer makes space.
            tx.send(2).unwrap();
            tx.stats().blocked_sends()
        });
        thread::sleep(Duration::from_millis(50));
        assert_eq!(rx.recv().unwrap(), 0);
        let blocked = producer.join().unwrap();
        assert!(blocked >= 1, "producer should have blocked at least once");
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn pause_waits_for_drain() {
        let (tx, rx) = pipe::<u32>(8);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let tx_ctl = tx.clone();
        let pauser = thread::spawn(move || {
            tx_ctl.pause().unwrap();
        });
        thread::sleep(Duration::from_millis(50));
        assert!(!pauser.is_finished(), "pause must wait for buffer drain");
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        pauser.join().unwrap();
        assert!(tx.is_paused());
        assert!(!rx.is_attached());
    }

    #[test]
    fn paused_sender_blocks_until_reconnected() {
        let (tx, rx) = pipe::<u32>(8);
        tx.pause().unwrap();
        let tx_writer = tx.clone();
        let writer = thread::spawn(move || {
            tx_writer.send(99).unwrap();
        });
        thread::sleep(Duration::from_millis(50));
        assert!(!writer.is_finished(), "send must block while paused");
        // Reconnect to a brand-new receiver; the blocked writer resumes and
        // its item lands at the new receiver.
        let new_rx = DetachableReceiver::new_detached(8);
        tx.reconnect(&new_rx).unwrap();
        writer.join().unwrap();
        assert_eq!(new_rx.recv().unwrap(), 99);
        assert!(rx.is_empty());
    }

    #[test]
    fn reconnect_validations() {
        let (tx, rx) = pipe::<u8>(4);
        let other_rx = DetachableReceiver::new_detached(4);
        // Still connected: must pause first.
        assert_eq!(
            tx.reconnect(&other_rx).unwrap_err(),
            ReconnectError::SenderStillConnected
        );
        tx.pause().unwrap();
        // Attaching to a receiver that already has a sender is rejected.
        let (_tx2, rx2) = pipe::<u8>(4);
        assert_eq!(
            tx.reconnect(&rx2).unwrap_err(),
            ReconnectError::ReceiverStillConnected
        );
        // Attaching to a closed receiver is rejected.
        other_rx.close();
        assert_eq!(
            tx.reconnect(&other_rx).unwrap_err(),
            ReconnectError::ReceiverClosed
        );
        // Reattaching to the original (now detached) receiver works.
        tx.reconnect(&rx).unwrap();
        tx.send(5).unwrap();
        assert_eq!(rx.recv().unwrap(), 5);
    }

    #[test]
    fn reconnect_after_close_fails() {
        let (tx, _rx) = pipe::<u8>(4);
        tx.close();
        let rx2 = DetachableReceiver::new_detached(4);
        assert_eq!(
            tx.reconnect(&rx2).unwrap_err(),
            ReconnectError::SenderClosed
        );
        assert_eq!(tx.pause().unwrap_err(), PauseError::Closed);
    }

    #[test]
    fn detach_does_not_wait_for_drain() {
        let (tx, rx) = pipe::<u32>(8);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        // Nobody is reading rx, yet detach returns immediately.
        tx.detach().unwrap();
        assert!(tx.is_paused());
        assert!(!rx.is_attached());
        // The buffered items are still there, in order.
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        // The receiver can be adopted by a new sender and ordering holds:
        // old buffered items first, then the new sender's items.
        let new_tx = DetachableSender::new_detached();
        new_tx.reconnect(&rx).unwrap();
        new_tx.send(3).unwrap();
        assert_eq!(rx.recv().unwrap(), 3);
        // The detached sender can also be re-attached elsewhere.
        let other_rx = DetachableReceiver::new_detached(8);
        tx.reconnect(&other_rx).unwrap();
        tx.send(4).unwrap();
        assert_eq!(other_rx.recv().unwrap(), 4);
    }

    #[test]
    fn detach_on_closed_sender_errors() {
        let (tx, _rx) = pipe::<u8>(4);
        tx.close();
        assert_eq!(tx.detach().unwrap_err(), PauseError::Closed);
    }

    #[test]
    fn pause_is_idempotent() {
        let (tx, _rx) = pipe::<u8>(4);
        tx.pause().unwrap();
        tx.pause().unwrap();
        assert!(tx.is_paused());
    }

    #[test]
    fn detached_pair_wires_up() {
        let (tx, rx) = detached_pair::<u8>(4);
        assert!(!tx.is_connected());
        assert!(!rx.is_attached());
        tx.reconnect(&rx).unwrap();
        assert!(tx.is_connected());
        tx.send(3).unwrap();
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn recv_up_to_batches_preserve_order_and_eof() {
        let (tx, rx) = pipe::<u32>(16);
        for item in 0..10 {
            tx.send(item).unwrap();
        }
        assert_eq!(rx.recv_up_to(4).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(rx.recv_up_to(100).unwrap(), vec![4, 5, 6, 7, 8, 9]);
        tx.send(10).unwrap();
        tx.close();
        assert_eq!(rx.recv_up_to(4).unwrap(), vec![10]);
        assert_eq!(rx.recv_up_to(4).unwrap_err(), RecvError::Eof);
    }

    #[test]
    fn recv_up_to_blocks_until_first_item() {
        let (tx, rx) = pipe::<u32>(4);
        let producer = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            tx.send(7).unwrap();
        });
        // Nothing buffered yet: the call must block, then return the item.
        assert_eq!(rx.recv_up_to(8).unwrap(), vec![7]);
        producer.join().unwrap();
    }

    #[test]
    fn recv_up_to_wakes_blocked_producers() {
        let (tx, rx) = pipe::<u32>(2);
        tx.send(0).unwrap();
        tx.send(1).unwrap();
        let producer = thread::spawn(move || {
            // Both of these block until the consumer drains the buffer.
            tx.send(2).unwrap();
            tx.send(3).unwrap();
        });
        thread::sleep(Duration::from_millis(30));
        let mut received = rx.recv_up_to(2).unwrap();
        while received.len() < 4 {
            received.extend(rx.recv_up_to(2).unwrap());
        }
        producer.join().unwrap();
        assert_eq!(received, vec![0, 1, 2, 3]);
    }

    #[test]
    fn recv_timeout_times_out_and_then_succeeds() {
        let (tx, rx) = pipe::<u8>(4);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)).unwrap_err(),
            TryRecvError::Empty
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(20)).unwrap(), 9);
    }

    #[test]
    fn splice_moves_stream_mid_flight_without_loss() {
        // Producer writes a monotone sequence; a "control thread" splices the
        // stream from receiver A to receiver B mid-flight.  The union of
        // items seen at A and B must be the exact sequence, in order.
        const TOTAL: u64 = 10_000;
        let (tx, rx_a) = pipe::<u64>(4);
        let producer_tx = tx.clone();
        let producer = thread::spawn(move || {
            for i in 0..TOTAL {
                producer_tx.send(i).unwrap();
            }
            producer_tx.close();
        });

        // Consume the head of the stream from A; with a 4-item buffer the
        // producer cannot run far ahead, so the splice is guaranteed to
        // happen mid-stream.
        let mut seen_a = Vec::new();
        for _ in 0..100 {
            seen_a.push(rx_a.recv().unwrap());
        }

        // Initiate the splice from a control thread while this thread keeps
        // draining A (pause() waits for the buffer to drain).
        let pauser = {
            let tx = tx.clone();
            thread::spawn(move || tx.pause().unwrap())
        };
        loop {
            match rx_a.recv_timeout(Duration::from_millis(20)) {
                Ok(v) => seen_a.push(v),
                Err(TryRecvError::Empty) => {
                    if !rx_a.is_attached() && rx_a.is_empty() {
                        break;
                    }
                }
                Err(other) => panic!("unexpected receive error on A: {other}"),
            }
        }
        pauser.join().unwrap();

        // Reconnect the live sender to a brand-new receiver B.
        let rx_b = DetachableReceiver::new_detached(4);
        tx.reconnect(&rx_b).unwrap();

        let mut seen_b = Vec::new();
        while let Ok(v) = rx_b.recv() {
            seen_b.push(v);
        }
        producer.join().unwrap();

        let mut all = seen_a.clone();
        all.extend(&seen_b);
        assert_eq!(all.len() as u64, TOTAL, "no item lost or duplicated");
        for (i, v) in all.iter().enumerate() {
            assert_eq!(*v, i as u64, "items delivered in order");
        }
        assert!(!seen_b.is_empty(), "splice happened mid-stream");
        assert!(seen_a.len() >= 100, "head of stream was seen at A");
    }

    #[test]
    fn stats_track_activity() {
        let (tx, rx) = pipe::<u8>(4);
        tx.send(1).unwrap();
        rx.recv().unwrap();
        tx.pause().unwrap();
        tx.reconnect(&rx).unwrap();
        assert_eq!(tx.stats().items(), 1);
        assert_eq!(tx.stats().pauses(), 1);
        assert_eq!(tx.stats().reconnects(), 1);
        assert_eq!(rx.stats().items(), 1);
    }

    #[test]
    fn drain_buffered_empties_queue() {
        let (tx, rx) = pipe::<u8>(8);
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.drain_buffered(), vec![0, 1, 2, 3, 4]);
        assert!(rx.is_empty());
    }

    #[test]
    fn iterator_yields_until_eof() {
        let (tx, rx) = pipe::<u8>(8);
        for i in 0..3 {
            tx.send(i).unwrap();
        }
        tx.close();
        let collected: Vec<u8> = rx.into_iter().collect();
        assert_eq!(collected, vec![0, 1, 2]);
    }

    #[test]
    fn debug_impls_are_nonempty() {
        let (tx, rx) = pipe::<u8>(4);
        assert!(!format!("{tx:?}").is_empty());
        assert!(!format!("{rx:?}").is_empty());
    }

    #[test]
    fn handles_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<DetachableSender<u32>>();
        assert_send::<DetachableReceiver<u32>>();
    }

    /// A watcher that counts its notifications and flags a condvar, so
    /// tests can wait for (and count) wake-ups.
    struct CountingWatcher {
        fired: AtomicUsize,
        gate: Mutex<bool>,
        cv: Condvar,
    }

    impl CountingWatcher {
        fn new() -> Arc<Self> {
            Arc::new(Self {
                fired: AtomicUsize::new(0),
                gate: Mutex::new(false),
                cv: Condvar::new(),
            })
        }

        fn count(&self) -> usize {
            self.fired.load(Ordering::SeqCst)
        }

        /// Waits (bounded) until the watcher has fired at least once since
        /// the last `reset`, returning whether it did.
        fn wait_fired(&self, timeout: Duration) -> bool {
            let mut gate = self.gate.lock();
            if *gate {
                return true;
            }
            self.cv.wait_for(&mut gate, timeout);
            *gate
        }

        fn reset(&self) {
            *self.gate.lock() = false;
        }
    }

    impl PipeWatcher for CountingWatcher {
        fn notify(&self) {
            self.fired.fetch_add(1, Ordering::SeqCst);
            let mut gate = self.gate.lock();
            *gate = true;
            self.cv.notify_all();
        }
    }

    #[test]
    fn try_recv_up_to_is_nonblocking_and_ordered() {
        let (tx, rx) = pipe::<u32>(16);
        assert_eq!(rx.try_recv_up_to(4).unwrap_err(), TryRecvError::Empty);
        tx.send_batch((0..6).collect()).unwrap();
        assert_eq!(rx.try_recv_up_to(4).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(rx.try_recv_up_to(4).unwrap(), vec![4, 5]);
        assert_eq!(rx.try_recv_up_to(4).unwrap_err(), TryRecvError::Empty);
        tx.close();
        assert_eq!(rx.try_recv_up_to(4).unwrap_err(), TryRecvError::Eof);
        rx.close();
        assert_eq!(rx.try_recv_up_to(4).unwrap_err(), TryRecvError::Closed);
    }

    #[test]
    fn try_send_batch_delivers_the_prefix_that_fits() {
        let (tx, rx) = pipe::<u32>(3);
        let leftover = tx.try_send_batch(vec![0, 1, 2, 3, 4]).unwrap();
        assert_eq!(leftover, vec![3, 4]);
        assert_eq!(rx.recv_up_to(8).unwrap(), vec![0, 1, 2]);
        // Retrying the leftover now succeeds completely.
        assert!(tx.try_send_batch(leftover).unwrap().is_empty());
        assert_eq!(rx.recv_up_to(8).unwrap(), vec![3, 4]);
    }

    #[test]
    fn try_send_batch_on_paused_or_detached_hands_everything_back() {
        let (tx, _rx) = pipe::<u8>(4);
        tx.pause().unwrap();
        assert_eq!(tx.try_send_batch(vec![1, 2]).unwrap(), vec![1, 2]);
        let detached = DetachableSender::<u8>::new_detached();
        assert_eq!(detached.try_send_batch(vec![3]).unwrap(), vec![3]);
    }

    #[test]
    fn try_send_batch_error_cases_return_items() {
        let (tx, rx) = pipe::<u8>(4);
        rx.close();
        assert!(matches!(
            tx.try_send_batch(vec![1, 2]).unwrap_err(),
            SendError::ReceiverClosed(rest) if rest == vec![1, 2]
        ));
        tx.close();
        assert!(matches!(
            tx.try_send_batch(vec![3]).unwrap_err(),
            SendError::Closed(rest) if rest == vec![3]
        ));
    }

    #[test]
    fn data_watcher_fires_on_delivery_eof_and_close() {
        let (tx, rx) = pipe::<u8>(8);
        let watcher = CountingWatcher::new();
        rx.set_data_watcher(watcher.clone());
        assert_eq!(watcher.count(), 0, "no data yet: registration must not fire");

        tx.send(1).unwrap();
        assert!(watcher.wait_fired(Duration::from_secs(1)));
        watcher.reset();
        tx.send_batch(vec![2, 3]).unwrap();
        assert!(watcher.wait_fired(Duration::from_secs(1)));
        watcher.reset();
        let leftover = tx.try_send_batch(vec![4]).unwrap();
        assert!(leftover.is_empty());
        assert!(watcher.wait_fired(Duration::from_secs(1)));
        watcher.reset();
        tx.close();
        assert!(watcher.wait_fired(Duration::from_secs(1)), "EOF must wake the reader");
    }

    #[test]
    fn data_watcher_registered_after_delivery_fires_immediately() {
        // The missed-notify regression: items arrive *before* the watcher
        // exists.  A naive edge-triggered hook would leave the consumer
        // asleep forever; registration must observe the level.
        let (tx, rx) = pipe::<u8>(8);
        tx.send(7).unwrap();
        let watcher = CountingWatcher::new();
        rx.set_data_watcher(watcher.clone());
        assert_eq!(watcher.count(), 1, "registration fires when data is already buffered");

        // Same for a stream that already ended.
        let (tx2, rx2) = pipe::<u8>(8);
        tx2.close();
        let eof_watcher = CountingWatcher::new();
        rx2.set_data_watcher(eof_watcher.clone());
        assert_eq!(eof_watcher.count(), 1, "registration fires on an already-ended stream");
    }

    #[test]
    fn space_watcher_fires_on_pop_and_close() {
        let (tx, rx) = pipe::<u8>(2);
        tx.send_batch(vec![1, 2]).unwrap();
        let watcher = CountingWatcher::new();
        rx.set_space_watcher(watcher.clone());
        assert_eq!(watcher.count(), 0, "full buffer: registration must not fire");

        assert_eq!(rx.try_recv_up_to(1).unwrap(), vec![1]);
        assert!(watcher.wait_fired(Duration::from_secs(1)));
        watcher.reset();
        rx.close();
        assert!(watcher.wait_fired(Duration::from_secs(1)), "close must wake writers");

        // A receiver with free space fires at registration.
        let (_tx3, rx3) = pipe::<u8>(2);
        let roomy = CountingWatcher::new();
        rx3.set_space_watcher(roomy.clone());
        assert_eq!(roomy.count(), 1);
    }

    #[test]
    fn ready_watcher_fires_on_reconnect_and_when_already_usable() {
        let (tx, rx) = pipe::<u8>(4);
        let watcher = CountingWatcher::new();
        tx.set_ready_watcher(watcher.clone());
        assert_eq!(watcher.count(), 1, "a connected sender is already usable");
        watcher.reset();
        tx.pause().unwrap();
        let rx2 = DetachableReceiver::new_detached(4);
        tx.reconnect(&rx2).unwrap();
        assert!(watcher.wait_fired(Duration::from_secs(1)));
        drop(rx);
    }

    #[test]
    fn received_implies_counted_under_try_paths() {
        // The PR 3 pipe-stats invariant, re-checked on the non-blocking
        // path used by the pooled runtime: at every point where a consumer
        // holds a received item, that item is already visible in the pipe
        // stats.  The consumer drains with try_recv_up_to while the
        // producer races try_send_batch.
        let (tx, rx) = pipe::<u64>(8);
        let producer = thread::spawn(move || {
            let mut pending: Vec<u64> = (0..2_000).collect();
            while !pending.is_empty() {
                pending = tx.try_send_batch(pending).unwrap();
                if !pending.is_empty() {
                    thread::yield_now();
                }
            }
        });
        let mut received = 0u64;
        while received < 2_000 {
            match rx.try_recv_up_to(16) {
                Ok(batch) => {
                    received += batch.len() as u64;
                    assert!(
                        rx.stats().items() >= received,
                        "an item was received before it was counted"
                    );
                }
                Err(TryRecvError::Empty) => thread::yield_now(),
                Err(other) => panic!("unexpected receive error: {other}"),
            }
        }
        producer.join().unwrap();
        assert_eq!(rx.stats().items(), 2_000);
    }
}
