//! Byte-oriented adapters over a detachable pipe.
//!
//! The paper's detachable streams are byte streams (`java.io.InputStream` /
//! `OutputStream` subclasses).  Most of this crate works with typed items
//! (packets), which is what the proxy filters actually exchange, but for
//! fidelity — and for endpoints that speak `std::io` — [`ByteWriter`] and
//! [`ByteReader`] wrap a `DetachablePipe<Bytes>` behind the standard
//! [`std::io::Write`] / [`std::io::Read`] traits.
//!
//! Bytes written to a [`ByteWriter`] are accumulated into chunks (to avoid
//! per-byte locking) and flushed either when the chunk fills or when
//! [`flush`](std::io::Write::flush) is called, mirroring the buffering of the
//! paper's `DOS.write()` / `DOS.flush()` pair.

use std::io::{self, Read, Write};

use bytes::Bytes;

use crate::error::{RecvError, SendError};
use crate::pipe::{pipe, DetachableReceiver, DetachableSender};

/// Default chunk size, in bytes, used by [`ByteWriter`] before it pushes a
/// chunk into the underlying pipe.
pub const DEFAULT_CHUNK_SIZE: usize = 4096;

/// A [`std::io::Write`] adapter over the sending half of a detachable pipe.
#[derive(Debug)]
pub struct ByteWriter {
    sender: DetachableSender<Bytes>,
    buffer: Vec<u8>,
    chunk_size: usize,
}

/// A [`std::io::Read`] adapter over the receiving half of a detachable pipe.
#[derive(Debug)]
pub struct ByteReader {
    receiver: DetachableReceiver<Bytes>,
    current: Bytes,
    offset: usize,
    eof: bool,
}

/// Creates a connected byte-stream pair with the given pipe capacity (in
/// chunks) and chunk size (in bytes).
pub fn byte_pipe(capacity: usize, chunk_size: usize) -> (ByteWriter, ByteReader) {
    let (tx, rx) = pipe::<Bytes>(capacity);
    (
        ByteWriter::new(tx, chunk_size),
        ByteReader::new(rx),
    )
}

impl ByteWriter {
    /// Wraps an existing detachable sender.  `chunk_size` of zero falls back
    /// to [`DEFAULT_CHUNK_SIZE`].
    pub fn new(sender: DetachableSender<Bytes>, chunk_size: usize) -> Self {
        let chunk_size = if chunk_size == 0 {
            DEFAULT_CHUNK_SIZE
        } else {
            chunk_size
        };
        Self {
            sender,
            buffer: Vec::with_capacity(chunk_size),
            chunk_size,
        }
    }

    /// Access to the underlying detachable sender (e.g. for pausing or
    /// reconnecting the byte stream while it is in use).
    pub fn sender(&self) -> &DetachableSender<Bytes> {
        &self.sender
    }

    /// Flushes any buffered bytes and closes the underlying sender.
    pub fn close(&mut self) -> io::Result<()> {
        self.flush()?;
        self.sender.close();
        Ok(())
    }

    fn push_chunk(&mut self) -> io::Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let chunk = Bytes::from(std::mem::take(&mut self.buffer));
        self.buffer = Vec::with_capacity(self.chunk_size);
        self.sender.send(chunk).map_err(send_error_to_io)
    }
}

impl Write for ByteWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.buffer.extend_from_slice(buf);
        while self.buffer.len() >= self.chunk_size {
            let rest = self.buffer.split_off(self.chunk_size);
            let chunk = Bytes::from(std::mem::replace(&mut self.buffer, rest));
            self.sender.send(chunk).map_err(send_error_to_io)?;
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.push_chunk()
    }
}

impl Drop for ByteWriter {
    fn drop(&mut self) {
        // Destructors must not fail: ignore errors, best-effort flush.
        let _ = self.push_chunk();
    }
}

impl ByteReader {
    /// Wraps an existing detachable receiver.
    pub fn new(receiver: DetachableReceiver<Bytes>) -> Self {
        Self {
            receiver,
            current: Bytes::new(),
            offset: 0,
            eof: false,
        }
    }

    /// Access to the underlying detachable receiver.
    pub fn receiver(&self) -> &DetachableReceiver<Bytes> {
        &self.receiver
    }

    /// Number of bytes immediately available without blocking (buffered
    /// chunks plus the remainder of the chunk currently being consumed).
    pub fn available(&self) -> usize {
        self.current.len() - self.offset
    }

    fn refill(&mut self) -> io::Result<bool> {
        match self.receiver.recv() {
            Ok(chunk) => {
                self.current = chunk;
                self.offset = 0;
                Ok(true)
            }
            Err(RecvError::Eof) | Err(RecvError::Closed) => {
                self.eof = true;
                Ok(false)
            }
        }
    }
}

impl Read for ByteReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        while self.offset >= self.current.len() {
            if self.eof {
                return Ok(0);
            }
            if !self.refill()? {
                return Ok(0);
            }
        }
        let remaining = &self.current[self.offset..];
        let n = remaining.len().min(buf.len());
        buf[..n].copy_from_slice(&remaining[..n]);
        self.offset += n;
        Ok(n)
    }
}

fn send_error_to_io<T>(err: SendError<T>) -> io::Error {
    match err {
        SendError::Closed(_) => io::Error::new(io::ErrorKind::BrokenPipe, "detachable sender closed"),
        SendError::ReceiverClosed(_) => {
            io::Error::new(io::ErrorKind::BrokenPipe, "detachable receiver closed")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn round_trips_bytes_through_the_pipe() {
        let (mut w, mut r) = byte_pipe(16, 8);
        w.write_all(b"hello detachable world").unwrap();
        w.close().unwrap();
        let mut out = String::new();
        r.read_to_string(&mut out).unwrap();
        assert_eq!(out, "hello detachable world");
    }

    #[test]
    fn chunking_splits_large_writes() {
        let (mut w, r) = byte_pipe(64, 4);
        w.write_all(&[0u8; 10]).unwrap();
        // 10 bytes with a 4-byte chunk: two full chunks pushed, 2 bytes held.
        assert_eq!(r.receiver().available(), 2);
        w.flush().unwrap();
        assert_eq!(r.receiver().available(), 3);
    }

    #[test]
    fn read_returns_zero_at_eof() {
        let (mut w, mut r) = byte_pipe(4, 4);
        w.write_all(b"ab").unwrap();
        w.close().unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(r.read(&mut buf).unwrap(), 2);
        assert_eq!(r.read(&mut buf).unwrap(), 0);
        assert_eq!(r.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn empty_read_buffer_is_ok() {
        let (_w, mut r) = byte_pipe(4, 4);
        let mut buf = [];
        assert_eq!(r.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn write_after_receiver_close_is_broken_pipe() {
        let (mut w, r) = byte_pipe(4, 2);
        r.receiver().close();
        drop(r);
        let err = w.write_all(b"abcd").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn threaded_transfer() {
        let (mut w, mut r) = byte_pipe(8, 16);
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let expected = payload.clone();
        let writer = thread::spawn(move || {
            w.write_all(&payload).unwrap();
            w.close().unwrap();
        });
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        writer.join().unwrap();
        assert_eq!(out, expected);
    }

    #[test]
    fn byte_stream_survives_splice() {
        use crate::pipe::DetachableReceiver;
        let (mut w, mut r1) = byte_pipe(8, 4);
        w.write_all(b"first").unwrap();
        w.flush().unwrap();
        let mut head = vec![0u8; 5];
        r1.read_exact(&mut head).unwrap();
        assert_eq!(&head, b"first");

        // Splice the writer onto a new reader mid-stream.
        w.sender().pause().unwrap();
        let new_rx = DetachableReceiver::new_detached(8);
        w.sender().reconnect(&new_rx).unwrap();
        let mut r2 = ByteReader::new(new_rx);

        w.write_all(b"second").unwrap();
        w.close().unwrap();
        let mut tail = Vec::new();
        r2.read_to_end(&mut tail).unwrap();
        assert_eq!(&tail, b"second");
    }
}
