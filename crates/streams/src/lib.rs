//! # rapidware-streams — detachable streams
//!
//! This crate is the Rust analogue of the *detachable Java I/O streams*
//! (`DetachableOutputStream` / `DetachableInputStream`) introduced by
//! McKinley & Padmanabhan in *"Design of Composable Proxy Filters for
//! Heterogeneous Mobile Computing"* (ICDCS-21 workshop, 2001).
//!
//! A detachable pipe is a bounded, in-process, producer/consumer channel that
//! — unlike an ordinary channel — can be **paused**, **disconnected**, and
//! **reconnected** to a *different* peer while data is flowing.  This is the
//! "glue" that lets a proxy insert, delete, and reorder filters on a live
//! data stream without disturbing the endpoints and without losing,
//! duplicating, or reordering any in-flight item.
//!
//! ## Model
//!
//! * [`DetachableSender<T>`] is the analogue of `DetachableOutputStream`
//!   (DOS): the writing half.  It holds a reference to the receiver it is
//!   currently attached to (the paper's `DOS.sink`).
//! * [`DetachableReceiver<T>`] is the analogue of `DetachableInputStream`
//!   (DIS): the reading half.  The buffer lives on the receiver side, exactly
//!   as in the paper, where data written to the DOS is buffered at the DIS.
//! * [`pipe`] creates a connected pair, like the paper's `connect()`.
//! * [`DetachableSender::pause`] implements the paper's `pause()` protocol:
//!   block new writes, wait until the receiver has drained its buffer, then
//!   mark both halves disconnected.
//! * [`DetachableSender::reconnect`] implements `reconnect()`: attach the
//!   sender to a (possibly different) receiver and resume any writers that
//!   were blocked while the pipe was paused.
//!
//! ## Integrity invariant
//!
//! For any interleaving of `send`, `recv`, `pause`, and `reconnect` calls,
//! every item that `send` reports as delivered is received **exactly once**
//! and **in order** by whichever receiver the sender was attached to at the
//! time of the send.  Pausing never drops buffered items: `pause` returns
//! only after the old receiver has drained everything that was sent to it.
//!
//! ## Example
//!
//! ```
//! use rapidware_streams::pipe;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A proxy forwards packets from an upstream filter to a downstream one.
//! let (tx, rx) = pipe::<u32>(8);
//! tx.send(1)?;
//! tx.send(2)?;
//! assert_eq!(rx.recv()?, 1);
//!
//! // Splice in a new stage: pause the sender (drains the old receiver),
//! // then reconnect it to a brand-new receiver.
//! let consumed: u32 = rx.recv()?; // drain so pause() does not block
//! assert_eq!(consumed, 2);
//! tx.pause()?;
//! let (_new_tx, new_rx) = rapidware_streams::detached_pair::<u32>(8);
//! tx.reconnect(&new_rx)?;
//! tx.send(3)?;
//! assert_eq!(new_rx.recv()?, 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod byte;
mod error;
mod pipe;
mod stats;

pub use byte::{byte_pipe, ByteReader, ByteWriter, DEFAULT_CHUNK_SIZE};
pub use error::{PauseError, ReconnectError, RecvError, SendError, TryRecvError};
pub use pipe::{
    detached_pair, pipe, DetachableReceiver, DetachableSender, IntoIter, PipeWatcher,
    DEFAULT_CAPACITY,
};
pub use stats::{PipeStats, StatsSnapshot};
