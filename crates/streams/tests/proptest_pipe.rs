//! Property-based tests for the detachable-pipe integrity invariant.
//!
//! The invariant under test: for any schedule of sends, receives, pauses and
//! reconnects, every item sent is delivered exactly once and in order to the
//! sequence of receivers the sender was attached to.

use proptest::prelude::*;
use rapidware_streams::{detached_pair, pipe, DetachableReceiver, TryRecvError};

/// One step of a randomly generated splice schedule.
#[derive(Debug, Clone)]
enum Step {
    /// Send this many items.
    Send(u8),
    /// Drain everything currently buffered at the active receiver.
    Drain,
    /// Pause and reconnect the sender to a fresh receiver.
    Splice,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1u8..20).prop_map(Step::Send),
        Just(Step::Drain),
        Just(Step::Splice),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-threaded schedule: items are never lost, duplicated or
    /// reordered across an arbitrary sequence of splices.
    #[test]
    fn splice_schedule_preserves_sequence(steps in proptest::collection::vec(step_strategy(), 1..40)) {
        let (tx, first_rx) = pipe::<u64>(512);
        let mut receivers: Vec<DetachableReceiver<u64>> = vec![first_rx];
        let mut next_item: u64 = 0;
        let mut collected: Vec<u64> = Vec::new();

        for step in &steps {
            match step {
                Step::Send(n) => {
                    for _ in 0..*n {
                        tx.send(next_item).unwrap();
                        next_item += 1;
                    }
                }
                Step::Drain => {
                    let rx = receivers.last().unwrap();
                    loop {
                        match rx.try_recv() {
                            Ok(v) => collected.push(v),
                            Err(TryRecvError::Empty) | Err(TryRecvError::Eof) => break,
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                }
                Step::Splice => {
                    // pause() blocks until the active receiver drains, so in a
                    // single-threaded schedule we must drain first.
                    {
                        let rx = receivers.last().unwrap();
                        while let Ok(v) = rx.try_recv() {
                            collected.push(v);
                        }
                    }
                    tx.pause().unwrap();
                    let (_unused_tx, new_rx) = detached_pair::<u64>(512);
                    tx.reconnect(&new_rx).unwrap();
                    receivers.push(new_rx);
                }
            }
        }

        // Final drain of every receiver (only the last can still hold data,
        // since splices drain their predecessor).
        tx.close();
        for rx in &receivers {
            while let Ok(v) = rx.try_recv() {
                collected.push(v);
            }
        }

        prop_assert_eq!(collected.len() as u64, next_item);
        for (i, v) in collected.iter().enumerate() {
            prop_assert_eq!(*v, i as u64);
        }
    }

    /// Concurrent producer with a randomly timed splice never loses items.
    #[test]
    fn concurrent_splice_preserves_sequence(
        total in 200u64..2000,
        splice_after in 1u64..190,
    ) {
        let (tx, rx_a) = pipe::<u64>(8);
        let producer_tx = tx.clone();
        let producer = std::thread::spawn(move || {
            for i in 0..total {
                producer_tx.send(i).unwrap();
            }
            producer_tx.close();
        });

        let mut seen = Vec::new();
        for _ in 0..splice_after {
            seen.push(rx_a.recv().unwrap());
        }
        let pauser = {
            let tx = tx.clone();
            std::thread::spawn(move || tx.pause().unwrap())
        };
        loop {
            match rx_a.recv_timeout(std::time::Duration::from_millis(10)) {
                Ok(v) => seen.push(v),
                Err(TryRecvError::Empty) => {
                    if !rx_a.is_attached() && rx_a.is_empty() {
                        break;
                    }
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        pauser.join().unwrap();

        let rx_b = DetachableReceiver::new_detached(8);
        tx.reconnect(&rx_b).unwrap();
        while let Ok(v) = rx_b.recv() {
            seen.push(v);
        }
        producer.join().unwrap();

        prop_assert_eq!(seen.len() as u64, total);
        for (i, v) in seen.iter().enumerate() {
            prop_assert_eq!(*v, i as u64);
        }
    }
}
