//! Transport integration tests: the socket endpoints must behave like
//! pipes — same surface, same ordering, same EOF, and the same stats
//! invariant — and the impairment relay must be deterministic per seed.
//!
//! Everything here synchronises on data (blocking receives, watchdog
//! deadlines), never on sleeps.

use std::net::UdpSocket;
use std::time::{Duration, Instant};

use rapidware_packet::{Packet, PacketKind, SeqNo, StreamId};
use rapidware_streams::{pipe, DetachableReceiver, TryRecvError};
use rapidware_transport::{
    ImpairmentPlan, UdpConfig, UdpEgress, UdpIngress,
};

const WATCHDOG: Duration = Duration::from_secs(60);

fn packet(seq: u64) -> Packet {
    Packet::new(StreamId::new(3), SeqNo::new(seq), PacketKind::AudioData, vec![(seq % 251) as u8; 64])
}

/// The received ⇒ counted regression, shared across **both endpoint
/// kinds**: at every point where the consumer holds `n` packets, the
/// endpoint's own counter must already be at least `n`.  PR 3 established
/// this for the in-process pipes; the socket endpoints must uphold the
/// identical discipline or loss-rate observers comparing "sent" with
/// "counted at the receiver" would transiently over-report loss.
///
/// `counted` reads the endpoint's counter; `drain` pulls the next batch.
fn assert_received_implies_counted(
    received: &mut u64,
    target: u64,
    counted: impl Fn() -> u64,
    drain: impl Fn() -> Result<Vec<Packet>, TryRecvError>,
) {
    let deadline = Instant::now() + WATCHDOG;
    while *received < target {
        assert!(Instant::now() < deadline, "endpoint stalled at {received}/{target}");
        match drain() {
            Ok(batch) => {
                *received += batch.len() as u64;
                let visible = counted();
                assert!(
                    visible >= *received,
                    "consumer holds {received} packets but only {visible} are counted"
                );
            }
            Err(TryRecvError::Empty) => std::thread::yield_now(),
            Err(other) => panic!("unexpected receive error: {other}"),
        }
    }
}

#[test]
fn received_implies_counted_on_pipe_endpoints() {
    let (tx, rx) = pipe::<Packet>(8);
    let producer = std::thread::spawn(move || {
        let mut pending: Vec<Packet> = (0..2_000).map(packet).collect();
        while !pending.is_empty() {
            pending = tx.try_send_batch(pending).unwrap();
            if !pending.is_empty() {
                std::thread::yield_now();
            }
        }
    });
    let stats = rx.stats();
    let mut received = 0u64;
    assert_received_implies_counted(&mut received, 2_000, || stats.items(), || {
        rx.try_recv_up_to(16)
    });
    assert_eq!(stats.items(), 2_000);
    producer.join().unwrap();
}

#[test]
fn received_implies_counted_on_socket_endpoints() {
    // Windowed flow control, exactly like the transport's real drivers
    // (the appliers quiesce every window): UDP has no end-to-end
    // back-pressure, so an unpaced 2,000-packet blast would overflow the
    // loopback socket buffer and the OS — not the endpoint — would drop.
    let config = UdpConfig::default().with_capacity(8);
    let ingress = UdpIngress::bind("127.0.0.1:0", &config).unwrap();
    let egress = UdpEgress::connect(ingress.local_addr(), &config).unwrap();
    let stats = ingress.stats();
    let mut received = 0u64;
    for window in 0..40u64 {
        egress
            .send_batch((window * 50..(window + 1) * 50).map(packet).collect())
            .unwrap();
        assert_received_implies_counted(&mut received, (window + 1) * 50, || stats.rx_packets(), || {
            ingress.try_recv_up_to(16)
        });
    }
    assert_eq!(stats.rx_packets(), 2_000);
}

#[test]
fn the_socket_surface_is_interchangeable_with_a_pipe_receiver() {
    // Code written against DetachableReceiver<Packet> must accept an
    // ingress's receiver handle without knowing a socket is behind it.
    fn drain_to_eof(rx: &DetachableReceiver<Packet>) -> Vec<u64> {
        let mut seqs = Vec::new();
        let deadline = Instant::now() + WATCHDOG;
        loop {
            assert!(Instant::now() < deadline, "receiver stalled");
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(packet) => seqs.push(packet.seq().value()),
                Err(TryRecvError::Empty) => continue,
                Err(_) => return seqs,
            }
        }
    }
    let config = UdpConfig::default();
    let ingress = UdpIngress::bind("127.0.0.1:0", &config).unwrap();
    let egress = UdpEgress::connect(ingress.local_addr(), &config).unwrap();
    egress.send_batch((0..10).map(packet).collect()).unwrap();
    egress.close();
    let handle = ingress.receiver();
    assert_eq!(drain_to_eof(&handle), (0..10).collect::<Vec<_>>());
}

#[test]
fn impaired_relay_is_deterministic_per_seed() {
    // The same plan and seed must drop the same frames on every run —
    // the property that makes scenario runs over real sockets repeatable.
    fn run(seed: u64) -> (Vec<u64>, u64) {
        let config = UdpConfig::default();
        let ingress = UdpIngress::bind("127.0.0.1:0", &config).unwrap();
        let relay = rapidware_transport::ImpairedUdp::spawn(
            ingress.local_addr(),
            ImpairmentPlan::bernoulli(seed, 0.2),
        )
        .unwrap();
        let egress = UdpEgress::connect(relay.local_addr(), &config).unwrap();
        let relay_stats = relay.stats();
        let ingress_stats = ingress.stats();
        // Drain concurrently so the survivors never pile up in a socket
        // buffer while the producer runs ahead (the relay's decisions
        // depend only on arrival order, not on consumer speed).
        let consumer = std::thread::spawn(move || {
            let mut seqs = Vec::new();
            let deadline = Instant::now() + WATCHDOG;
            loop {
                assert!(Instant::now() < deadline, "impaired stream never ended");
                match ingress.recv_timeout(Duration::from_millis(50)) {
                    Ok(packet) => seqs.push(packet.seq().value()),
                    Err(TryRecvError::Empty) => continue,
                    Err(_) => return seqs,
                }
            }
        });
        for window in 0..10u64 {
            egress
                .send_batch((window * 50..(window + 1) * 50).map(packet).collect())
                .unwrap();
            // Pace each window end to end: every frame accounted by the
            // relay (forwarded or dropped), every survivor received by the
            // ingress, before the next burst — so neither socket's kernel
            // buffer can overflow and silently lose a frame (or, worse,
            // the FIN).  UDP has no back-pressure; the accounting is the
            // only flow control available, and it does not perturb the
            // relay's seeded decisions, which depend on arrival order
            // alone.
            let deadline = Instant::now() + WATCHDOG;
            while relay_stats.forwarded() + relay_stats.dropped() < (window + 1) * 50 {
                assert!(Instant::now() < deadline, "the relay fell behind");
                std::thread::yield_now();
            }
            while ingress_stats.rx_datagrams() < relay_stats.forwarded() {
                assert!(Instant::now() < deadline, "the ingress fell behind");
                std::thread::yield_now();
            }
        }
        egress.close();
        let seqs = consumer.join().unwrap();
        (seqs, relay.stats().dropped())
    }
    let (first, dropped_first) = run(2001);
    let (second, dropped_second) = run(2001);
    assert_eq!(first, second, "same seed must survive the same frames");
    assert_eq!(dropped_first, dropped_second);
    assert!(dropped_first > 0, "a 20% regime must drop something in 500 frames");
    assert_eq!(first.len() as u64 + dropped_first, 500);

    let (other, _) = run(42);
    assert_ne!(first, other, "different seeds must explore different loss");
}

#[test]
fn impaired_delay_reorders_deterministically_without_loss() {
    let config = UdpConfig::default();
    let ingress = UdpIngress::bind("127.0.0.1:0", &config).unwrap();
    // Hold every 4th data frame back for 3 frames.
    let relay = rapidware_transport::ImpairedUdp::spawn(
        ingress.local_addr(),
        ImpairmentPlan::new(7, vec![(0, rapidware_transport::ImpairmentPhase::delay(4, 3))]),
    )
    .unwrap();
    let egress = UdpEgress::connect(relay.local_addr(), &config).unwrap();
    egress.send_batch((0..40).map(packet).collect()).unwrap();
    egress.close();
    let mut seqs = Vec::new();
    let deadline = Instant::now() + WATCHDOG;
    loop {
        assert!(Instant::now() < deadline, "delayed stream never ended");
        match ingress.recv_timeout(Duration::from_millis(50)) {
            Ok(packet) => seqs.push(packet.seq().value()),
            Err(TryRecvError::Empty) => continue,
            Err(_) => break,
        }
    }
    assert_eq!(seqs.len(), 40, "delay must never lose frames");
    let mut sorted = seqs.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..40).collect::<Vec<_>>());
    assert_ne!(seqs, sorted, "a held frame must come out late");
    assert!(relay.stats().delayed() > 0);
    assert_eq!(relay.stats().dropped(), 0);
}

#[test]
fn undecodable_datagrams_do_not_reach_the_consumer() {
    let config = UdpConfig::default();
    let ingress = UdpIngress::bind("127.0.0.1:0", &config).unwrap();
    let probe = UdpSocket::bind("127.0.0.1:0").unwrap();
    // A truncated frame and a corrupted frame: both must be counted and
    // neither may surface as a packet.
    let valid = packet(5).encode();
    probe.send_to(&valid[..20], ingress.local_addr()).unwrap();
    let mut corrupted = valid.to_vec();
    corrupted[25] ^= 0xFF;
    probe.send_to(&corrupted, ingress.local_addr()).unwrap();
    probe.send_to(&valid, ingress.local_addr()).unwrap();
    let delivered = ingress.recv().unwrap();
    assert_eq!(delivered.seq().value(), 5);
    assert_eq!(ingress.stats().decode_errors(), 2);
    assert_eq!(ingress.stats().rx_packets(), 1);
    assert_eq!(ingress.stats().rx_datagrams(), 3);
}
