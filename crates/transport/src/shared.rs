//! Shared-socket UDP endpoints: one bound socket carrying N streams.
//!
//! [`UdpIngress`](crate::UdpIngress) / [`UdpEgress`](crate::UdpEgress)
//! spend two pump threads per socket, which at hundreds of sessions is the
//! thread-per-filter anti-pattern all over again.  The shared endpoints
//! here spend **zero** threads: they only expose non-blocking batch
//! operations — [`SharedUdpIngress::drain_batch`] and
//! [`SharedUdpEgress::flush_batch`] — and rely on a readiness loop (the
//! pooled runtime's reactor) to call them when the socket is readable or
//! a pipe has data:
//!
//! ```text
//!   socket ──▶ drain_batch: recv_from × batch ──decode──▶ route by stream id ──▶ pipe per stream
//!   pipe per lane ──▶ flush_batch: try_recv × batch ──encode──▶ send_to(lane peer) ──▶ socket
//! ```
//!
//! Demultiplexing is by the stream id already in every
//! [`Packet`] header.  Frames for an
//! unregistered stream id are counted (see
//! [`SharedUdpIngress::unknown_streams`]) and dropped without disturbing
//! registered neighbours; a per-stream FIN
//! ([`stream_fin_packet`](crate::stream_fin_packet)) closes only its own
//! stream's route.  Both endpoints keep the transport-wide accounting
//! invariants: an ingress counts a packet **before** it becomes observable
//! to a consumer, an egress counts after the OS accepted the datagram.
//!
//! A full route never blocks the drain: the frame is dropped and counted,
//! exactly as a real shared socket sheds one flow's overflow without
//! stalling its socket-mates.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use rapidware_packet::{Packet, StreamId};
use rapidware_streams::{pipe, DetachableReceiver, DetachableSender, TryRecvError};

use crate::stats::TransportStats;
use crate::{fits_in_datagram, is_stream_fin, stream_fin_packet, MAX_DATAGRAM_LEN};

/// Errors from shared-socket route management.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SharedUdpError {
    /// The stream id already has a registered route on this socket.
    StreamTaken(StreamId),
}

impl fmt::Display for SharedUdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::StreamTaken(stream) => {
                write!(f, "stream {} already has a route on this socket", stream.value())
            }
        }
    }
}

impl std::error::Error for SharedUdpError {}

/// What a [`SharedUdpIngress::drain_batch`] pass left behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharedDrain {
    /// A full batch was drained; the socket likely still holds datagrams,
    /// so the caller should run another pass before going idle.
    MoreReady,
    /// The socket ran dry before the batch filled; wait for readiness.
    Empty,
}

/// How a [`SharedUdpEgress::flush_batch`] pass ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharedFlush {
    /// At least one frame moved; more may be pending, run another pass.
    Progress,
    /// Nothing to send: every live source pipe was empty.
    Idle,
    /// The socket refused a send (`WouldBlock`); the frame is held and the
    /// caller should retry after a writability tick.
    Blocked,
}

/// The receiving half of a shared socket: one bound socket, N logical
/// streams, each with its own registered pipe route.
///
/// Created with [`bind`](Self::bind).  Streams register either an owned
/// route ([`open_stream`](Self::open_stream), returning the pipe receiver)
/// or a bridged route ([`open_stream_into`](Self::open_stream_into),
/// delivering straight into a supplied sender such as a proxy chain
/// input).  There is no pump thread; a driver (normally a pooled-runtime
/// task woken by the reactor) calls [`drain_batch`](Self::drain_batch)
/// whenever the socket is readable.
pub struct SharedUdpIngress {
    socket: Arc<UdpSocket>,
    local_addr: SocketAddr,
    batch_size: usize,
    route_capacity: usize,
    stats: TransportStats,
    unknown_streams: Arc<AtomicU64>,
    routes: Mutex<BTreeMap<u32, DetachableSender<Packet>>>,
    scratch: Mutex<Vec<u8>>,
}

impl fmt::Debug for SharedUdpIngress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedUdpIngress")
            .field("local_addr", &self.local_addr)
            .field("batch_size", &self.batch_size)
            .field("routes", &self.route_count())
            .finish()
    }
}

impl SharedUdpIngress {
    /// Binds a non-blocking shared socket on `addr`.
    ///
    /// `config.capacity` sizes the pipe behind each owned route;
    /// `config.batch_size` bounds how many datagrams one
    /// [`drain_batch`](Self::drain_batch) pass moves.
    ///
    /// # Errors
    ///
    /// Any socket error from binding or configuring the socket.
    pub fn bind(addr: impl ToSocketAddrs, config: &crate::UdpConfig) -> io::Result<Self> {
        let socket = UdpSocket::bind(addr)?;
        socket.set_nonblocking(true)?;
        let local_addr = socket.local_addr()?;
        Ok(Self {
            socket: Arc::new(socket),
            local_addr,
            batch_size: config.batch_size.max(1),
            route_capacity: config.capacity,
            stats: TransportStats::new(),
            unknown_streams: Arc::new(AtomicU64::new(0)),
            routes: Mutex::new(BTreeMap::new()),
            scratch: Mutex::new(vec![0u8; MAX_DATAGRAM_LEN]),
        })
    }

    /// The socket's bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The underlying socket, shared so a [`SharedUdpEgress`] can send
    /// from the same port ([`SharedUdpEgress::over`]) and a reactor can
    /// watch it for readability.
    pub fn socket(&self) -> Arc<UdpSocket> {
        Arc::clone(&self.socket)
    }

    /// Delivery accounting for the whole socket (all streams combined).
    pub fn stats(&self) -> TransportStats {
        self.stats.clone()
    }

    /// Datagrams that decoded fine but carried a stream id with no
    /// registered route.  Each is also counted in
    /// [`dropped`](TransportStats::dropped).
    pub fn unknown_streams(&self) -> u64 {
        self.unknown_streams.load(Ordering::Relaxed)
    }

    /// Number of currently registered stream routes.
    pub fn route_count(&self) -> usize {
        self.lock_routes().len()
    }

    /// Registers an owned route for `stream` and returns the receiving end
    /// of its pipe.
    ///
    /// # Errors
    ///
    /// [`SharedUdpError::StreamTaken`] if the stream id is already routed.
    pub fn open_stream(&self, stream: StreamId) -> Result<DetachableReceiver<Packet>, SharedUdpError> {
        let (tx, rx) = pipe::<Packet>(self.route_capacity);
        self.open_stream_into(stream, tx)?;
        Ok(rx)
    }

    /// Registers a bridged route: datagrams for `stream` are delivered
    /// straight into `sink` (for example a proxy chain input).  Several
    /// stream ids may deliberately share one sink — a per-stream FIN on
    /// any of them then closes the shared pipe.
    ///
    /// # Errors
    ///
    /// [`SharedUdpError::StreamTaken`] if the stream id is already routed.
    pub fn open_stream_into(
        &self,
        stream: StreamId,
        sink: DetachableSender<Packet>,
    ) -> Result<(), SharedUdpError> {
        let mut routes = self.lock_routes();
        if routes.contains_key(&stream.value()) {
            return Err(SharedUdpError::StreamTaken(stream));
        }
        routes.insert(stream.value(), sink);
        Ok(())
    }

    /// Deregisters (and closes) the route for `stream`.  Returns `false`
    /// if no such route existed.
    pub fn close_stream(&self, stream: StreamId) -> bool {
        match self.lock_routes().remove(&stream.value()) {
            Some(sink) => {
                sink.close();
                true
            }
            None => false,
        }
    }

    /// Closes and deregisters every route — the shared-socket equivalent
    /// of closing a dedicated ingress's pipe at shutdown.
    pub fn close_all_streams(&self) {
        let mut routes = self.lock_routes();
        for (_, sink) in std::mem::take(&mut *routes) {
            sink.close();
        }
    }

    /// Receives and routes up to `batch_size` datagrams without blocking.
    ///
    /// Per frame: count the datagram, decode (errors counted), then route
    /// by the packet's stream id.  A per-stream FIN closes that stream's
    /// route only; frames for unregistered streams bump
    /// [`unknown_streams`](Self::unknown_streams) and are dropped; a full
    /// route drops the frame rather than stall its socket-mates.
    pub fn drain_batch(&self) -> SharedDrain {
        let mut scratch = self.scratch.lock().unwrap_or_else(|e| e.into_inner());
        for _ in 0..self.batch_size {
            let len = match self.socket.recv_from(&mut scratch) {
                Ok((len, _peer)) => len,
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => return SharedDrain::Empty,
                // Transient socket errors (e.g. ICMP-induced) are treated
                // as "nothing readable"; the reactor will retry.
                Err(_) => return SharedDrain::Empty,
            };
            self.stats.record_rx_datagram();
            match Packet::decode(&scratch[..len]) {
                Ok(mut packet) => {
                    // Stamp the span clock at the socket boundary so
                    // end-to-end latency covers routing and demux time too.
                    packet.stamp_ingress_ns(rapidware_telemetry::now_ns());
                    self.route(packet);
                }
                Err(_) => self.stats.record_decode_error(),
            }
        }
        SharedDrain::MoreReady
    }

    fn route(&self, packet: Packet) {
        let stream = packet.stream().value();
        let mut routes = self.lock_routes();
        let Some(sink) = routes.get(&stream) else {
            self.unknown_streams.fetch_add(1, Ordering::Relaxed);
            self.stats.record_drop();
            return;
        };
        if is_stream_fin(&packet) {
            sink.close();
            routes.remove(&stream);
            return;
        }
        // Received ⇒ counted: the counter moves before the packet becomes
        // observable to any consumer.
        self.stats.record_rx_packet();
        // Never block the drain: a full (or paused/closed) route sheds the
        // frame, UDP-style, instead of stalling neighbouring streams.
        match sink.try_send_batch(vec![packet]) {
            Ok(leftover) if leftover.is_empty() => {}
            Ok(_) | Err(_) => self.stats.record_drop(),
        }
    }

    fn lock_routes(&self) -> MutexGuard<'_, BTreeMap<u32, DetachableSender<Packet>>> {
        self.routes.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// One attached egress lane: a pipe being drained onto the shared socket
/// towards a fixed peer.
struct EgressLane {
    /// Stream id stamped on the per-stream FIN when `source` ends.
    stream: StreamId,
    peer: SocketAddr,
    source: DetachableReceiver<Packet>,
    /// Frames accepted from the pipe but not yet accepted by the OS
    /// (socket `WouldBlock`); drained before anything new is pulled.
    held: VecDeque<Packet>,
    /// The source hit EOF; the FIN still needs to go out.
    fin_due: bool,
    /// Nothing more will ever move on this lane.
    finished: bool,
}

/// The sending half of a shared socket: N lanes, each draining its own
/// pipe and sending to its own peer, multiplexed onto one socket.
///
/// Created with [`over`](Self::over) (reusing a [`SharedUdpIngress`]'s
/// socket, so one port carries both directions) or
/// [`bind`](Self::bind).  There is no pump thread; a driver calls
/// [`flush_batch`](Self::flush_batch) when any source pipe has data (and
/// again after a writability tick if the socket pushed back).
///
/// When a lane's pipe reports EOF the lane sends a per-stream FIN
/// ([`stream_fin_packet`](crate::stream_fin_packet)) so the remote end
/// can close exactly that stream; a pipe closed without EOF finishes the
/// lane silently (abort semantics, matching
/// [`UdpEgress`](crate::UdpEgress)).
pub struct SharedUdpEgress {
    socket: Arc<UdpSocket>,
    local_addr: SocketAddr,
    batch_size: usize,
    stats: TransportStats,
    lanes: Mutex<Vec<EgressLane>>,
    scratch: Mutex<Vec<u8>>,
}

impl fmt::Debug for SharedUdpEgress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedUdpEgress")
            .field("local_addr", &self.local_addr)
            .field("batch_size", &self.batch_size)
            .field("lanes", &self.lane_count())
            .finish()
    }
}

enum SendOutcome {
    Sent,
    Dropped,
    Blocked,
}

impl SharedUdpEgress {
    /// Builds an egress over an existing (non-blocking) socket — normally
    /// a [`SharedUdpIngress::socket`], so one bound port carries both
    /// directions of all its streams.
    ///
    /// # Errors
    ///
    /// Any socket error from reading the local address or switching the
    /// socket to non-blocking mode.
    pub fn over(socket: Arc<UdpSocket>, config: &crate::UdpConfig) -> io::Result<Self> {
        socket.set_nonblocking(true)?;
        let local_addr = socket.local_addr()?;
        Ok(Self {
            socket,
            local_addr,
            batch_size: config.batch_size.max(1),
            stats: TransportStats::new(),
            lanes: Mutex::new(Vec::new()),
            scratch: Mutex::new(Vec::new()),
        })
    }

    /// Binds a fresh non-blocking socket on `addr` for a send-only egress.
    ///
    /// # Errors
    ///
    /// Any socket error from binding.
    pub fn bind(addr: impl ToSocketAddrs, config: &crate::UdpConfig) -> io::Result<Self> {
        let socket = UdpSocket::bind(addr)?;
        Self::over(Arc::new(socket), config)
    }

    /// The socket's bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The underlying socket (for reactor registration).
    pub fn socket(&self) -> Arc<UdpSocket> {
        Arc::clone(&self.socket)
    }

    /// Delivery accounting for the whole socket (all lanes combined).
    pub fn stats(&self) -> TransportStats {
        self.stats.clone()
    }

    /// Number of attached lanes still capable of moving frames.
    pub fn lane_count(&self) -> usize {
        self.lock_lanes().iter().filter(|lane| !lane.finished).count()
    }

    /// Attaches a lane: frames from `source` are encoded and sent to
    /// `peer`, and when `source` ends a per-stream FIN for `stream` is
    /// sent.  Lanes may share a peer (distinguished by stream id) or a
    /// stream id (towards distinct peers, e.g. fanout).
    pub fn attach(&self, stream: StreamId, peer: SocketAddr, source: DetachableReceiver<Packet>) {
        self.lock_lanes().push(EgressLane {
            stream,
            peer,
            source,
            held: VecDeque::new(),
            fin_due: false,
            finished: false,
        });
    }

    /// Drains every lane's pipe onto the socket, up to `batch_size`
    /// frames per lane per pass.
    ///
    /// Returns [`SharedFlush::Blocked`] as soon as the OS refuses a send
    /// (`WouldBlock`): the refused frame is held, and the caller should
    /// retry after a writability tick.  Finished lanes are pruned.
    pub fn flush_batch(&self) -> SharedFlush {
        let mut lanes = self.lock_lanes();
        let mut scratch = self.scratch.lock().unwrap_or_else(|e| e.into_inner());
        let mut progressed = false;
        let mut blocked = false;
        for lane in lanes.iter_mut() {
            if lane.finished {
                continue;
            }
            match self.flush_lane(lane, &mut scratch) {
                SharedFlush::Progress => progressed = true,
                SharedFlush::Blocked => {
                    // One refused send means the socket's buffer is full
                    // for every lane; stop the pass here.
                    blocked = true;
                    break;
                }
                SharedFlush::Idle => {}
            }
        }
        lanes.retain(|lane| !lane.finished);
        if blocked {
            SharedFlush::Blocked
        } else if progressed {
            SharedFlush::Progress
        } else {
            SharedFlush::Idle
        }
    }

    /// Moves one lane's frames: held frames first, then up to
    /// `batch_size` fresh ones from the pipe, then the FIN if due.
    fn flush_lane(&self, lane: &mut EgressLane, scratch: &mut Vec<u8>) -> SharedFlush {
        let mut progressed = false;
        while let Some(packet) = lane.held.front() {
            match self.send_frame(lane.peer, packet, scratch) {
                SendOutcome::Blocked => return SharedFlush::Blocked,
                SendOutcome::Sent | SendOutcome::Dropped => {
                    lane.held.pop_front();
                    progressed = true;
                }
            }
        }
        if !lane.fin_due {
            match lane.source.try_recv_up_to(self.batch_size) {
                Ok(batch) => {
                    let mut queue: VecDeque<Packet> = batch.into();
                    while let Some(packet) = queue.front() {
                        match self.send_frame(lane.peer, packet, scratch) {
                            SendOutcome::Blocked => {
                                lane.held = queue;
                                return SharedFlush::Blocked;
                            }
                            SendOutcome::Sent | SendOutcome::Dropped => {
                                queue.pop_front();
                                progressed = true;
                            }
                        }
                    }
                }
                Err(TryRecvError::Empty) => {}
                Err(TryRecvError::Eof) => lane.fin_due = true,
                Err(TryRecvError::Closed) => {
                    // Abort semantics: the producer side vanished without a
                    // clean end of stream, so no FIN is owed.
                    lane.finished = true;
                    return if progressed { SharedFlush::Progress } else { SharedFlush::Idle };
                }
            }
        }
        if lane.fin_due {
            match self.send_frame(lane.peer, &stream_fin_packet(lane.stream), scratch) {
                SendOutcome::Blocked => return SharedFlush::Blocked,
                SendOutcome::Sent | SendOutcome::Dropped => {
                    lane.fin_due = false;
                    lane.finished = true;
                    progressed = true;
                }
            }
        }
        if progressed {
            SharedFlush::Progress
        } else {
            SharedFlush::Idle
        }
    }

    fn send_frame(&self, peer: SocketAddr, packet: &Packet, scratch: &mut Vec<u8>) -> SendOutcome {
        if !fits_in_datagram(packet) {
            self.stats.record_drop();
            return SendOutcome::Dropped;
        }
        packet.encode_into(scratch);
        match self.socket.send_to(scratch, peer) {
            Ok(_) => {
                self.stats.record_tx();
                SendOutcome::Sent
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => SendOutcome::Blocked,
            Err(_) => {
                self.stats.record_drop();
                SendOutcome::Dropped
            }
        }
    }

    fn lock_lanes(&self) -> MutexGuard<'_, Vec<EgressLane>> {
        self.lanes.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UdpConfig;
    use rapidware_packet::{PacketKind, SeqNo};
    use std::time::{Duration, Instant};

    fn packet(stream: u32, seq: u64) -> Packet {
        Packet::new(
            StreamId::new(stream),
            SeqNo::new(seq),
            PacketKind::AudioData,
            vec![(seq % 251) as u8; 32],
        )
    }

    fn send_encoded(socket: &UdpSocket, peer: SocketAddr, packet: &Packet) {
        let mut scratch = Vec::new();
        packet.encode_into(&mut scratch);
        socket.send_to(&scratch, peer).expect("loopback send");
    }

    /// Drains the shared ingress until `predicate` holds, spinning on the
    /// non-blocking drain with a hard deadline (no sleeps-as-sync: the
    /// deadline only bounds a genuine hang).
    fn drain_until(ingress: &SharedUdpIngress, predicate: impl Fn() -> bool) {
        let deadline = Instant::now() + Duration::from_secs(30);
        while !predicate() {
            assert!(Instant::now() < deadline, "shared drain made no progress");
            if ingress.drain_batch() == SharedDrain::Empty {
                std::thread::yield_now();
            }
        }
    }

    #[test]
    fn interleaved_streams_in_one_drain_are_demultiplexed_in_order() {
        let ingress = SharedUdpIngress::bind("127.0.0.1:0", &UdpConfig::default()).unwrap();
        let routes: Vec<_> = (1..=4)
            .map(|stream| ingress.open_stream(StreamId::new(stream)).unwrap())
            .collect();
        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
        // Interleave 4 streams round-robin so a single batched drain pulls
        // frames from many streams back to back.
        for seq in 0..8u64 {
            for stream in 1..=4u32 {
                send_encoded(&tx, ingress.local_addr(), &packet(stream, seq));
            }
        }
        drain_until(&ingress, || ingress.stats.rx_packets() == 32);
        for (index, route) in routes.iter().enumerate() {
            let stream = index as u32 + 1;
            for seq in 0..8u64 {
                let got = route.try_recv().expect("routed frame is buffered");
                assert_eq!(got.stream().value(), stream);
                assert_eq!(got.seq().value(), seq, "per-stream order is preserved");
            }
        }
        assert_eq!(ingress.unknown_streams(), 0);
        assert_eq!(ingress.stats().dropped(), 0);
    }

    #[test]
    fn unknown_stream_frames_are_counted_and_dropped_without_poisoning_neighbours() {
        let ingress = SharedUdpIngress::bind("127.0.0.1:0", &UdpConfig::default()).unwrap();
        let route = ingress.open_stream(StreamId::new(1)).unwrap();
        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
        send_encoded(&tx, ingress.local_addr(), &packet(1, 0));
        send_encoded(&tx, ingress.local_addr(), &packet(999, 0));
        send_encoded(&tx, ingress.local_addr(), &packet(1, 1));
        drain_until(&ingress, || ingress.stats.rx_datagrams() == 3);
        assert_eq!(ingress.unknown_streams(), 1);
        assert_eq!(ingress.stats().dropped(), 1);
        // The registered neighbour saw exactly its own frames, in order.
        assert_eq!(route.try_recv().unwrap().seq().value(), 0);
        assert_eq!(route.try_recv().unwrap().seq().value(), 1);
        assert!(route.try_recv().is_err());
    }

    #[test]
    fn a_fin_on_one_stream_does_not_end_its_socket_mates() {
        let ingress = SharedUdpIngress::bind("127.0.0.1:0", &UdpConfig::default()).unwrap();
        let ending = ingress.open_stream(StreamId::new(1)).unwrap();
        let surviving = ingress.open_stream(StreamId::new(2)).unwrap();
        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
        send_encoded(&tx, ingress.local_addr(), &packet(1, 0));
        send_encoded(&tx, ingress.local_addr(), &stream_fin_packet(StreamId::new(1)));
        send_encoded(&tx, ingress.local_addr(), &packet(2, 0));
        drain_until(&ingress, || ingress.stats.rx_datagrams() == 3);
        assert_eq!(ending.try_recv().unwrap().seq().value(), 0);
        assert_eq!(
            ending.try_recv().unwrap_err(),
            TryRecvError::Eof,
            "the FIN ends its own stream"
        );
        assert_eq!(ingress.route_count(), 1, "only the FIN'd route is deregistered");
        assert_eq!(
            surviving.try_recv().unwrap().stream().value(),
            2,
            "the socket-mate keeps flowing"
        );
        // A late frame for the ended stream is now unknown: counted, not
        // delivered, and the survivor is untouched.
        send_encoded(&tx, ingress.local_addr(), &packet(1, 1));
        drain_until(&ingress, || ingress.stats.rx_datagrams() == 4);
        assert_eq!(ingress.unknown_streams(), 1);
    }

    #[test]
    fn a_full_route_sheds_frames_without_stalling_the_drain() {
        let config = UdpConfig::default().with_capacity(4).with_batch_size(64);
        let ingress = SharedUdpIngress::bind("127.0.0.1:0", &config).unwrap();
        let narrow = ingress.open_stream(StreamId::new(1)).unwrap();
        let neighbour = ingress.open_stream(StreamId::new(2)).unwrap();
        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
        // 8 frames into a capacity-4 route, then one for the neighbour.
        for seq in 0..8u64 {
            send_encoded(&tx, ingress.local_addr(), &packet(1, seq));
        }
        send_encoded(&tx, ingress.local_addr(), &packet(2, 0));
        drain_until(&ingress, || ingress.stats.rx_datagrams() == 9);
        assert_eq!(ingress.stats().rx_packets(), 9, "received ⇒ counted, even when shed");
        assert_eq!(ingress.stats().dropped(), 4, "overflow beyond capacity is shed");
        let mut delivered = 0;
        while narrow.try_recv().is_ok() {
            delivered += 1;
        }
        assert_eq!(delivered, 4);
        assert_eq!(neighbour.try_recv().unwrap().stream().value(), 2, "neighbour unaffected");
    }

    #[test]
    fn egress_lanes_multiplex_onto_one_socket_and_fin_per_stream() {
        let config = UdpConfig::default();
        // Two app-side shared ingresses play the remote peers.
        let peer_a = SharedUdpIngress::bind("127.0.0.1:0", &config).unwrap();
        let peer_b = SharedUdpIngress::bind("127.0.0.1:0", &config).unwrap();
        let route_a = peer_a.open_stream(StreamId::new(1)).unwrap();
        let route_b = peer_b.open_stream(StreamId::new(2)).unwrap();
        let egress = SharedUdpEgress::bind("127.0.0.1:0", &config).unwrap();
        let (tx_a, rx_a) = pipe::<Packet>(16);
        let (tx_b, rx_b) = pipe::<Packet>(16);
        egress.attach(StreamId::new(1), peer_a.local_addr(), rx_a);
        egress.attach(StreamId::new(2), peer_b.local_addr(), rx_b);
        tx_a.send(packet(1, 0)).unwrap();
        tx_b.send(packet(2, 0)).unwrap();
        tx_a.close();
        let deadline = Instant::now() + Duration::from_secs(30);
        while egress.lane_count() > 1 {
            assert!(Instant::now() < deadline, "egress made no progress");
            egress.flush_batch();
        }
        // Lane A delivered its frame and its per-stream FIN; lane B is
        // still live.
        drain_until(&peer_a, || peer_a.stats().rx_datagrams() == 2);
        assert_eq!(route_a.try_recv().unwrap().seq().value(), 0);
        assert_eq!(route_a.try_recv().unwrap_err(), TryRecvError::Eof);
        drain_until(&peer_b, || peer_b.stats().rx_packets() == 1);
        assert_eq!(route_b.try_recv().unwrap().stream().value(), 2);
        assert!(route_b.try_recv().is_err());
        assert_eq!(egress.stats().tx_packets(), 3, "two data frames plus one FIN");
        assert_eq!(egress.lane_count(), 1);
    }

    #[test]
    fn a_closed_lane_finishes_silently_without_a_fin() {
        let config = UdpConfig::default();
        let peer = SharedUdpIngress::bind("127.0.0.1:0", &config).unwrap();
        let route = peer.open_stream(StreamId::new(1)).unwrap();
        let egress = SharedUdpEgress::bind("127.0.0.1:0", &config).unwrap();
        let (tx, rx) = pipe::<Packet>(16);
        let abort_handle = rx.clone();
        egress.attach(StreamId::new(1), peer.local_addr(), rx);
        tx.send(packet(1, 0)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(30);
        while egress.stats().tx_packets() < 1 {
            assert!(Instant::now() < deadline, "egress made no progress");
            egress.flush_batch();
        }
        // Receiver-side close is the abort path: the lane finishes without
        // sending a FIN.
        abort_handle.close();
        while egress.lane_count() > 0 {
            assert!(Instant::now() < deadline, "egress made no progress");
            egress.flush_batch();
        }
        assert_eq!(egress.stats().tx_packets(), 1, "no FIN after an abort");
        drop(tx);
        let _ = route;
    }

    #[test]
    fn duplicate_stream_registration_is_rejected() {
        let ingress = SharedUdpIngress::bind("127.0.0.1:0", &UdpConfig::default()).unwrap();
        let _route = ingress.open_stream(StreamId::new(7)).unwrap();
        assert_eq!(
            ingress.open_stream(StreamId::new(7)).unwrap_err(),
            SharedUdpError::StreamTaken(StreamId::new(7))
        );
        assert!(ingress.close_stream(StreamId::new(7)));
        assert!(!ingress.close_stream(StreamId::new(7)));
        let _reopened = ingress.open_stream(StreamId::new(7)).unwrap();
    }
}
