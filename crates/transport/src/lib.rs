//! # rapidware-transport — real UDP ingress/egress behind the proxy
//!
//! Every other crate in this workspace moves packets over in-process
//! detachable pipes or the simulated `netsim` medium.  This crate is where
//! bytes first cross a socket: it carries the existing wire format
//! ([`Packet::encode_into`] / [`Packet::decode`], one packet per datagram)
//! over nonblocking [`std::net::UdpSocket`]s, behind endpoints that expose
//! the *same surface* as a [`DetachableSender`] / [`DetachableReceiver`]
//! pair — `send` / `send_batch` / `try_send_batch` on the way out, `recv` /
//! `recv_up_to` / `try_recv_up_to` plus [`PipeWatcher`]-style readiness on
//! the way in — so filter chains, fanout lanes, and pooled-runtime tasks
//! run unmodified whether their peer is a pipe or a socket.
//!
//! * [`UdpIngress`] — binds a socket; a pump thread decodes each datagram
//!   and delivers it into a detachable pipe (its own, or one supplied by
//!   the proxy so the packets land directly on a chain input).
//! * [`UdpEgress`] — a pump thread drains a detachable pipe (its own, or a
//!   chain output supplied by the proxy), frames each packet with
//!   [`Packet::encode_into`], and sends one datagram per packet to a peer.
//! * [`ImpairedUdp`] — a loopback relay applying a **seeded, deterministic**
//!   drop/delay schedule to the datagrams passing through it, mirroring
//!   `netsim`'s `ScheduledLoss` so scenario runs over real sockets stay
//!   reproducible.
//! * [`SharedUdpIngress`] / [`SharedUdpEgress`] — **shared-socket**
//!   endpoints: one bound socket carrying N logical streams, demultiplexed
//!   by the stream id in every [`Packet`] header.
//!   They have no pump threads at all; a readiness reactor (the pooled
//!   runtime's) wakes pool tasks that call [`drain_batch`] /
//!   [`flush_batch`] directly, so hundreds of sessions share a handful of
//!   sockets with zero per-socket threads.  The pump-per-socket endpoints
//!   above remain for single-stream edges (and as the app-side harness in
//!   tests), but are deprecated in spirit for multi-session use.
//!
//! ## End of stream
//!
//! UDP has no connection teardown, so the transport defines one: when an
//! egress pump's upstream ends (the pipe reports EOF), it sends a final
//! **FIN frame** — a [`PacketKind::Control`] packet on the reserved
//! [`FIN_STREAM`] — and an ingress that receives a FIN closes its pipe, so
//! the consumer observes the same clean end-of-stream a local pipe would
//! deliver.  [`FIN_STREAM`] is reserved for the transport; application
//! traffic must not use it.
//!
//! Shared sockets need a finer-grained form: ending one stream must not
//! end its socket-mates.  A **per-stream FIN** ([`stream_fin_packet`]) is a
//! control frame on the ending stream's *own* id at the reserved sequence
//! number [`STREAM_FIN_SEQ`]; a shared ingress closes only that stream's
//! route, while a dedicated [`UdpIngress`] (which carries exactly one
//! logical stream) treats it like the transport-wide FIN.
//!
//! [`drain_batch`]: SharedUdpIngress::drain_batch
//! [`flush_batch`]: SharedUdpEgress::flush_batch
//!
//! ## Delivery accounting
//!
//! Both endpoints keep [`TransportStats`]: datagrams and packets in and
//! out, decode errors, and drops.  The ingress counts a packet **before**
//! handing it to the pipe, upholding the same received ⇒ counted invariant
//! the in-process pipes provide — by the time a consumer holds a packet,
//! the endpoint's counters already include it.
//!
//! ## Example
//!
//! ```
//! use rapidware_packet::{Packet, PacketKind, SeqNo, StreamId};
//! use rapidware_transport::{UdpConfig, UdpEgress, UdpIngress};
//!
//! # fn main() -> std::io::Result<()> {
//! let config = UdpConfig::default();
//! let ingress = UdpIngress::bind("127.0.0.1:0", &config)?;
//! let egress = UdpEgress::connect(ingress.local_addr(), &config)?;
//!
//! let packet = Packet::new(StreamId::new(1), SeqNo::new(0), PacketKind::AudioData, vec![1, 2, 3]);
//! egress.send(packet.clone()).expect("egress pipe is open");
//! assert_eq!(ingress.recv().expect("delivered over loopback"), packet);
//!
//! egress.close(); // sends the FIN frame
//! assert!(ingress.recv().is_err(), "FIN closes the stream");
//! # Ok(())
//! # }
//! ```
//!
//! [`Packet::encode_into`]: rapidware_packet::Packet::encode_into
//! [`Packet::decode`]: rapidware_packet::Packet::decode
//! [`DetachableSender`]: rapidware_streams::DetachableSender
//! [`DetachableReceiver`]: rapidware_streams::DetachableReceiver
//! [`PipeWatcher`]: rapidware_streams::PipeWatcher
//! [`PacketKind::Control`]: rapidware_packet::PacketKind::Control

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod endpoint;
mod impaired;
mod shared;
mod stats;

pub use endpoint::{UdpConfig, UdpEgress, UdpIngress};
pub use impaired::{
    ImpairedSnapshot, ImpairedStats, ImpairedUdp, ImpairmentPhase, ImpairmentPlan,
};
pub use shared::{SharedDrain, SharedFlush, SharedUdpEgress, SharedUdpError, SharedUdpIngress};
pub use stats::{TransportSnapshot, TransportStats};

use rapidware_packet::{Packet, PacketKind, SeqNo, StreamId};

/// Largest datagram the transport will send or receive: the IPv4 UDP
/// maximum (65,535 minus the 8-byte UDP and 20-byte IP headers).  Packets
/// whose wire form exceeds this are counted as drops at the egress; larger
/// datagrams arriving at an ingress are truncated by the OS and rejected by
/// the frame CRC.
pub const MAX_DATAGRAM_LEN: usize = 65_507;

/// Stream id reserved for the transport's FIN frames.
///
/// Chosen next to the scenario engine's quiescence-marker stream
/// (`u32::MAX`) so both live outside any plausible media stream id space.
pub const FIN_STREAM: u32 = u32::MAX - 1;

/// Builds the FIN frame an egress sends when its upstream ends.
pub fn fin_packet() -> Packet {
    Packet::new(
        StreamId::new(FIN_STREAM),
        SeqNo::new(0),
        PacketKind::Control,
        Vec::new(),
    )
}

/// Returns `true` if `packet` is a transport FIN frame.
pub fn is_fin(packet: &Packet) -> bool {
    packet.kind() == PacketKind::Control && packet.stream().value() == FIN_STREAM
}

/// Sequence number reserved for **per-stream** FIN frames.
///
/// A shared socket carries many logical streams, so the transport-wide
/// [`FIN_STREAM`] frame cannot say *which* of them ended.  A per-stream FIN
/// instead rides the ending stream's own id, marked by this reserved
/// sequence number on a [`PacketKind::Control`] frame.  Application
/// control traffic must not use `u64::MAX` as a sequence number.
pub const STREAM_FIN_SEQ: u64 = u64::MAX;

/// Builds the FIN frame a shared egress sends when one stream's upstream
/// ends: a control frame on the stream's own id at [`STREAM_FIN_SEQ`].
pub fn stream_fin_packet(stream: StreamId) -> Packet {
    Packet::new(
        stream,
        SeqNo::new(STREAM_FIN_SEQ),
        PacketKind::Control,
        Vec::new(),
    )
}

/// Returns `true` if `packet` is a per-stream FIN frame built by
/// [`stream_fin_packet`].
pub fn is_stream_fin(packet: &Packet) -> bool {
    packet.kind() == PacketKind::Control && packet.seq().value() == STREAM_FIN_SEQ
}

/// Sanity guard used by the egress: `true` if the packet fits in one
/// datagram.
pub(crate) fn fits_in_datagram(packet: &Packet) -> bool {
    packet.wire_len() <= MAX_DATAGRAM_LEN
}

/// Resolves a peer argument to its first socket address (shared by the
/// egress and the impairment relay so the two cannot drift).
pub(crate) fn resolve_peer(
    peer: impl std::net::ToSocketAddrs,
) -> std::io::Result<std::net::SocketAddr> {
    peer.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "peer resolved to nothing")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapidware_packet::HEADER_LEN;

    #[test]
    fn fin_frames_are_recognised_and_fit_in_a_datagram() {
        let fin = fin_packet();
        assert!(is_fin(&fin));
        assert!(fits_in_datagram(&fin));
        let data = Packet::new(StreamId::new(1), SeqNo::new(0), PacketKind::Data, vec![1]);
        assert!(!is_fin(&data));
        // A control packet on another stream is not a FIN.
        let marker = Packet::new(StreamId::new(u32::MAX), SeqNo::new(0), PacketKind::Control, vec![]);
        assert!(!is_fin(&marker));
    }

    #[test]
    fn the_datagram_cap_accounts_for_the_header() {
        let snug = Packet::new(
            StreamId::new(1),
            SeqNo::new(0),
            PacketKind::Data,
            vec![0u8; MAX_DATAGRAM_LEN - HEADER_LEN],
        );
        assert!(fits_in_datagram(&snug));
        let oversized = Packet::new(
            StreamId::new(1),
            SeqNo::new(0),
            PacketKind::Data,
            vec![0u8; MAX_DATAGRAM_LEN - HEADER_LEN + 1],
        );
        assert!(!fits_in_datagram(&oversized));
    }
}
