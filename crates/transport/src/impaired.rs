//! [`ImpairedUdp`]: a deterministic loopback impairment relay.
//!
//! Real networks drop, delay, and reorder datagrams; loopback does not.  To
//! exercise the FEC/adaptation machinery over *real sockets* while keeping
//! test runs reproducible, `ImpairedUdp` interposes a relay between an
//! egress and an ingress and applies a **seeded schedule** of impairments,
//! mirroring `netsim`'s `ScheduledLoss`: phases are keyed by the index of
//! the data frame being relayed (the datagram analogue of simulated time),
//! drop decisions come from a seeded RNG or a fixed stride, and "delay" is
//! expressed in *frames held back* rather than wall-clock time — the held
//! frame is released after N further data frames pass, which reorders the
//! stream deterministically instead of racing a timer.
//!
//! Control frames (quiescence markers, FIN) always pass, and a FIN flushes
//! any held frames first, so an impaired stream still ends cleanly and
//! closed-loop scenario runs stay deterministic.

use std::fmt;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rapidware_packet::{Packet, PacketKind};

use crate::MAX_DATAGRAM_LEN;

/// The impairments in force during one phase of an [`ImpairmentPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImpairmentPhase {
    /// Per-data-frame drop probability, drawn from the plan's seeded RNG.
    pub drop_rate: f64,
    /// Drops every `n`-th data frame of the run (1-based; `None` disables).
    /// Unlike [`drop_rate`](Self::drop_rate) this is a fixed stride, which
    /// gives tests a loss pattern with a *provable* worst case per FEC
    /// block.
    pub drop_every: Option<u64>,
    /// Holds every `n`-th data frame back (1-based; `None` disables)…
    pub delay_every: Option<u64>,
    /// …for this many subsequent data frames, after which it is released —
    /// a deterministic reordering of the stream.
    pub delay_frames: u64,
}

impl ImpairmentPhase {
    /// A phase that forwards everything untouched.
    pub fn clean() -> Self {
        Self {
            drop_rate: 0.0,
            drop_every: None,
            delay_every: None,
            delay_frames: 0,
        }
    }

    /// A phase dropping data frames independently with probability `rate`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn drop_rate(rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "drop rate must be within [0, 1]");
        Self {
            drop_rate: rate,
            ..Self::clean()
        }
    }

    /// A phase dropping every `n`-th data frame.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn drop_every(n: u64) -> Self {
        assert!(n > 0, "drop stride must be non-zero");
        Self {
            drop_every: Some(n),
            ..Self::clean()
        }
    }

    /// A phase holding every `every`-th data frame back for `frames`
    /// subsequent data frames (deterministic reordering).
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn delay(every: u64, frames: u64) -> Self {
        assert!(every > 0, "delay stride must be non-zero");
        Self {
            delay_every: Some(every),
            delay_frames: frames,
            ..Self::clean()
        }
    }
}

/// A seeded, phased impairment schedule (the datagram analogue of
/// `netsim::ScheduledLoss`): each `(start_frame, phase)` entry is in effect
/// from its start index until the next phase begins; the last phase runs
/// forever.  The same plan produces the same drop/delay pattern on every
/// run.
#[derive(Debug, Clone)]
pub struct ImpairmentPlan {
    seed: u64,
    /// `(first data-frame index, phase)` pairs, sorted by start index.
    phases: Vec<(u64, ImpairmentPhase)>,
}

impl ImpairmentPlan {
    /// Creates a plan from `(start_frame, phase)` entries (sorted by start
    /// index; indices before the first entry fall back to it).
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty.
    pub fn new(seed: u64, mut phases: Vec<(u64, ImpairmentPhase)>) -> Self {
        assert!(!phases.is_empty(), "impairment plan needs at least one phase");
        phases.sort_by_key(|(start, _)| *start);
        Self { seed, phases }
    }

    /// A plan that forwards everything untouched.
    pub fn clean(seed: u64) -> Self {
        Self::new(seed, vec![(0, ImpairmentPhase::clean())])
    }

    /// A single-phase plan dropping data frames with probability `rate`.
    pub fn bernoulli(seed: u64, rate: f64) -> Self {
        Self::new(seed, vec![(0, ImpairmentPhase::drop_rate(rate))])
    }

    /// A single-phase plan dropping every `n`-th data frame.
    pub fn drop_every(seed: u64, n: u64) -> Self {
        Self::new(seed, vec![(0, ImpairmentPhase::drop_every(n))])
    }

    /// The RNG seed driving probabilistic decisions.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of phases in the schedule.
    pub fn phase_count(&self) -> usize {
        self.phases.len()
    }

    /// The phase in effect for data frame `index`.
    pub fn phase_at(&self, index: u64) -> &ImpairmentPhase {
        let position = self
            .phases
            .iter()
            .rposition(|(start, _)| *start <= index)
            .unwrap_or(0);
        &self.phases[position].1
    }
}

/// Shared counters of one [`ImpairedUdp`] relay.
#[derive(Debug, Clone, Default)]
pub struct ImpairedStats {
    inner: Arc<ImpairedInner>,
}

#[derive(Debug, Default)]
struct ImpairedInner {
    forwarded: AtomicU64,
    dropped: AtomicU64,
    delayed: AtomicU64,
    control: AtomicU64,
}

/// A point-in-time copy of an [`ImpairedStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct ImpairedSnapshot {
    /// Data frames forwarded (on time or after a hold).
    pub forwarded: u64,
    /// Data frames dropped by the schedule.
    pub dropped: u64,
    /// Data frames held back for reordering (also counted in `forwarded`
    /// once released).
    pub delayed: u64,
    /// Control frames passed through untouched.
    pub control: u64,
}

impl ImpairedStats {
    /// Data frames forwarded so far.
    pub fn forwarded(&self) -> u64 {
        self.inner.forwarded.load(Ordering::Relaxed)
    }

    /// Data frames dropped so far.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Data frames held back so far.
    pub fn delayed(&self) -> u64 {
        self.inner.delayed.load(Ordering::Relaxed)
    }

    /// Control frames passed so far.
    pub fn control(&self) -> u64 {
        self.inner.control.load(Ordering::Relaxed)
    }

    /// A consistent-enough point-in-time copy of every counter.
    pub fn snapshot(&self) -> ImpairedSnapshot {
        ImpairedSnapshot {
            forwarded: self.forwarded(),
            dropped: self.dropped(),
            delayed: self.delayed(),
            control: self.control(),
        }
    }
}

/// A loopback relay applying a seeded [`ImpairmentPlan`] to the datagrams
/// passing through it.
///
/// Send to [`local_addr`](Self::local_addr); survivors come out at `peer`.
pub struct ImpairedUdp {
    local_addr: SocketAddr,
    stats: ImpairedStats,
    plan: Arc<Mutex<ImpairmentPlan>>,
    stop: Arc<AtomicBool>,
    pump: Option<JoinHandle<()>>,
}

impl fmt::Debug for ImpairedUdp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ImpairedUdp")
            .field("local_addr", &self.local_addr)
            .field("forwarded", &self.stats.forwarded())
            .field("dropped", &self.stats.dropped())
            .finish()
    }
}

impl ImpairedUdp {
    /// Spawns a relay on an ephemeral loopback port that forwards the
    /// surviving datagrams to `peer` under `plan`.
    ///
    /// # Errors
    ///
    /// Returns the socket `bind`/configuration error, if any.
    pub fn spawn(peer: impl ToSocketAddrs, plan: ImpairmentPlan) -> io::Result<Self> {
        let peer = crate::resolve_peer(peer)?;
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        socket.set_read_timeout(Some(Duration::from_millis(20)))?;
        let local_addr = socket.local_addr()?;
        let stats = ImpairedStats::default();
        let plan = Arc::new(Mutex::new(plan));
        let stop = Arc::new(AtomicBool::new(false));
        let pump = {
            let stats = stats.clone();
            let plan = Arc::clone(&plan);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(format!("impaired-udp-{local_addr}"))
                .spawn(move || pump_impaired(&socket, peer, &plan, &stats, &stop))
                .expect("spawning the impairment relay thread")
        };
        Ok(Self {
            local_addr,
            stats,
            plan,
            stop,
            pump: Some(pump),
        })
    }

    /// The relay's ingress address: point an egress peer here.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The relay's counters.
    pub fn stats(&self) -> ImpairedStats {
        self.stats.clone()
    }

    /// Replaces the impairment schedule while the relay runs.
    ///
    /// The swap takes effect on the next data frame: the data-frame clock
    /// keeps counting, but phase lookups (and stride decisions keyed on the
    /// frame index) consult the new plan.  The relay's RNG stream is *not*
    /// re-seeded — probabilistic decisions keep drawing from the original
    /// seed's sequence, so two runs that swap plans at the same frame index
    /// still behave identically.  This is the hook chaos tests use to
    /// black out a socket mid-run (swap in a `drop_rate(1.0)` phase) and
    /// later restore it.
    pub fn set_plan(&self, plan: ImpairmentPlan) {
        *self.plan.lock().expect("impairment plan lock") = plan;
    }

    /// A copy of the schedule currently in force.
    pub fn plan(&self) -> ImpairmentPlan {
        self.plan.lock().expect("impairment plan lock").clone()
    }

    /// Stops the relay thread and waits for it to exit.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(pump) = self.pump.take() {
            let _ = pump.join();
        }
    }
}

impl Drop for ImpairedUdp {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn pump_impaired(
    socket: &UdpSocket,
    peer: SocketAddr,
    plan: &Mutex<ImpairmentPlan>,
    stats: &ImpairedStats,
    stop: &AtomicBool,
) {
    let seed = plan.lock().expect("impairment plan lock").seed();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut buf = vec![0u8; MAX_DATAGRAM_LEN];
    // Data frames relayed so far; the "clock" the plan's phases run on.
    let mut data_index = 0u64;
    // Frames held for reordering: `(release_before_index, frame)`, in hold
    // order (which is also release order, holds being FIFO per phase).
    let mut held: Vec<(u64, Vec<u8>)> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        let len = match socket.recv_from(&mut buf) {
            Ok((len, _peer)) => len,
            Err(err)
                if err.kind() == io::ErrorKind::WouldBlock
                    || err.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        let frame = &buf[..len];
        let is_control = Packet::decode(frame)
            .map(|packet| packet.kind() == PacketKind::Control)
            .unwrap_or(false);
        if is_control {
            // Quiescence markers and FIN frames delimit the stream: flush
            // anything held so nothing is reordered across the delimiter
            // (or lost at end of stream), then pass the control frame.
            for (_, late) in held.drain(..) {
                let _ = socket.send_to(&late, peer);
                stats.inner.forwarded.fetch_add(1, Ordering::Relaxed);
            }
            let _ = socket.send_to(frame, peer);
            stats.inner.control.fetch_add(1, Ordering::Relaxed);
            continue;
        }

        // Release held frames that have served their delay (moved out,
        // not cloned: partition splits the hold queue in arrival order).
        if held.iter().any(|(release_before, _)| *release_before <= data_index) {
            let (due, kept): (Vec<_>, Vec<_>) = held
                .drain(..)
                .partition(|(release_before, _)| *release_before <= data_index);
            held = kept;
            for (_, late) in due {
                let _ = socket.send_to(&late, peer);
                stats.inner.forwarded.fetch_add(1, Ordering::Relaxed);
            }
        }

        let index = data_index;
        data_index += 1;
        let phase = *plan.lock().expect("impairment plan lock").phase_at(index);
        // One RNG draw per data frame regardless of phase, so the random
        // sequence each frame sees is independent of the schedule shape.
        let roll: f64 = rng.gen();
        let stride_drop = phase.drop_every.is_some_and(|n| (index + 1).is_multiple_of(n));
        if roll < phase.drop_rate || stride_drop {
            stats.inner.dropped.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        if phase.delay_every.is_some_and(|n| (index + 1).is_multiple_of(n)) && phase.delay_frames > 0 {
            held.push((index + 1 + phase.delay_frames, frame.to_vec()));
            stats.inner.delayed.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        let _ = socket.send_to(frame, peer);
        stats.inner.forwarded.fetch_add(1, Ordering::Relaxed);
    }
    // Relay going away: release anything still held rather than losing it.
    for (_, late) in held.drain(..) {
        let _ = socket.send_to(&late, peer);
        stats.inner.forwarded.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_are_sorted_and_selected_by_index() {
        let plan = ImpairmentPlan::new(
            1,
            vec![
                (100, ImpairmentPhase::drop_rate(1.0)),
                (0, ImpairmentPhase::clean()),
                (200, ImpairmentPhase::drop_every(2)),
            ],
        );
        assert_eq!(plan.phase_count(), 3);
        assert_eq!(plan.phase_at(0).drop_rate, 0.0);
        assert_eq!(plan.phase_at(99).drop_rate, 0.0);
        assert_eq!(plan.phase_at(100).drop_rate, 1.0);
        assert_eq!(plan.phase_at(500).drop_every, Some(2));
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_plans_are_rejected() {
        let _ = ImpairmentPlan::new(1, Vec::new());
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn bad_drop_rates_are_rejected() {
        let _ = ImpairmentPhase::drop_rate(1.5);
    }

    #[test]
    fn builders_cover_the_common_regimes() {
        assert_eq!(ImpairmentPlan::clean(9).seed(), 9);
        assert_eq!(ImpairmentPlan::bernoulli(1, 0.25).phase_at(0).drop_rate, 0.25);
        assert_eq!(ImpairmentPlan::drop_every(1, 5).phase_at(0).drop_every, Some(5));
        let delayed = ImpairmentPhase::delay(3, 2);
        assert_eq!(delayed.delay_every, Some(3));
        assert_eq!(delayed.delay_frames, 2);
    }
}
