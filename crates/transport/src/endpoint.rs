//! The UDP endpoints: [`UdpIngress`] and [`UdpEgress`].
//!
//! Each endpoint pairs a socket with a pump thread and a detachable pipe.
//! The pipe is what gives a socket the full endpoint surface the rest of
//! the system is written against — blocking and non-blocking batch
//! operations, watcher-based readiness, clean EOF — without teaching any
//! chain, lane, or runtime task about sockets:
//!
//! ```text
//!   ingress:  socket ──(pump: decode, count)──▶ pipe ──▶ consumer/chain
//!   egress:   producer/chain ──▶ pipe ──(pump: encode)──▶ socket
//! ```
//!
//! In **bridged** mode (`bind_into` / `drain`) the pipe belongs to someone
//! else — a proxy chain input or output — so packets flow from the wire
//! straight into a live filter chain and back out.  In **owned** mode
//! (`bind` / `connect`) the endpoint creates its own pipe and exposes the
//! pipe-endpoint surface by delegation.

use std::fmt;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use rapidware_packet::Packet;
use rapidware_streams::{
    pipe, DetachableReceiver, DetachableSender, PipeWatcher, RecvError, SendError, TryRecvError,
};

use crate::stats::TransportStats;
use crate::{fin_packet, fits_in_datagram, is_fin, is_stream_fin, MAX_DATAGRAM_LEN};

/// Tuning for a UDP endpoint.
#[derive(Debug, Clone)]
pub struct UdpConfig {
    /// Capacity (in packets) of the endpoint's detachable pipe; this is the
    /// back-pressure window between the socket and the consumer/producer.
    pub capacity: usize,
    /// Batch size the pumps move per lock acquisition.
    pub batch_size: usize,
    /// How often a pump re-checks its shutdown flag while idle.  Pure
    /// shutdown latency — it never gates data movement.
    pub poll_interval: Duration,
}

impl Default for UdpConfig {
    fn default() -> Self {
        Self {
            capacity: 256,
            batch_size: 32,
            poll_interval: Duration::from_millis(20),
        }
    }
}

impl UdpConfig {
    /// Overrides the pipe capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "endpoint pipe capacity must be non-zero");
        self.capacity = capacity;
        self
    }

    /// Overrides the pump batch size.
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }
}

// ---------------------------------------------------------------------------
// Ingress.
// ---------------------------------------------------------------------------

/// The receiving half of the datagram transport: a bound socket whose pump
/// decodes each arriving datagram and delivers it into a detachable pipe.
///
/// Created with [`bind`](UdpIngress::bind) (owned pipe: this endpoint *is*
/// the consumer-facing receiver, exposing `recv` / `recv_up_to` /
/// `try_recv_up_to` / watcher registration by delegation) or
/// [`bind_into`](UdpIngress::bind_into) (bridged: datagrams land on a pipe
/// sender supplied by the caller, e.g. a proxy chain input).
///
/// A received FIN frame closes the pipe, so consumers observe the same
/// clean end of stream a local producer's `close()` would deliver.
pub struct UdpIngress {
    local_addr: SocketAddr,
    receiver: Option<DetachableReceiver<Packet>>,
    stats: TransportStats,
    stop: Arc<AtomicBool>,
    pump: Option<JoinHandle<()>>,
}

impl fmt::Debug for UdpIngress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UdpIngress")
            .field("local_addr", &self.local_addr)
            .field("owned_pipe", &self.receiver.is_some())
            .field("rx_packets", &self.stats.rx_packets())
            .finish()
    }
}

impl UdpIngress {
    /// Binds a socket on `addr` and delivers decoded packets into a fresh
    /// internal pipe whose receiver surface this endpoint exposes.
    ///
    /// # Errors
    ///
    /// Returns the socket `bind`/configuration error, if any.
    pub fn bind(addr: impl ToSocketAddrs, config: &UdpConfig) -> io::Result<Self> {
        let (sink, receiver) = pipe(config.capacity);
        let mut ingress = Self::bind_into(addr, sink, config)?;
        ingress.receiver = Some(receiver);
        Ok(ingress)
    }

    /// Binds a socket on `addr` and delivers decoded packets into `sink` —
    /// the bridged mode the proxy uses to run datagrams straight into a
    /// live chain input.
    ///
    /// # Errors
    ///
    /// Returns the socket `bind`/configuration error, if any.
    pub fn bind_into(
        addr: impl ToSocketAddrs,
        sink: DetachableSender<Packet>,
        config: &UdpConfig,
    ) -> io::Result<Self> {
        let socket = UdpSocket::bind(addr)?;
        socket.set_read_timeout(Some(config.poll_interval))?;
        let local_addr = socket.local_addr()?;
        let stats = TransportStats::new();
        let stop = Arc::new(AtomicBool::new(false));
        let pump = {
            let stats = stats.clone();
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(format!("udp-ingress-{local_addr}"))
                .spawn(move || pump_ingress(&socket, &sink, &stats, &stop))
                .expect("spawning the ingress pump thread")
        };
        Ok(Self {
            local_addr,
            receiver: None,
            stats,
            stop,
            pump: Some(pump),
        })
    }

    /// The socket's bound address (the port is concrete even when the
    /// endpoint was bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// This endpoint's transfer counters.
    pub fn stats(&self) -> TransportStats {
        self.stats.clone()
    }

    /// A clone of the consumer-facing pipe receiver, for handing to code
    /// written against [`DetachableReceiver`] (owned mode only).
    ///
    /// # Panics
    ///
    /// Panics in bridged mode (`bind_into`), where the consumer side
    /// belongs to the caller.
    pub fn receiver(&self) -> DetachableReceiver<Packet> {
        self.pipe().clone()
    }

    fn pipe(&self) -> &DetachableReceiver<Packet> {
        self.receiver
            .as_ref()
            .expect("this ingress was bound into an external pipe; read from that pipe instead")
    }

    /// Blocks until a packet arrives and returns it (owned mode only; see
    /// [`DetachableReceiver::recv`]).
    ///
    /// # Errors
    ///
    /// Returns [`RecvError::Eof`] after a FIN frame drained, or
    /// [`RecvError::Closed`] if the pipe was closed locally.
    ///
    /// # Panics
    ///
    /// Panics in bridged mode.
    pub fn recv(&self) -> Result<Packet, RecvError> {
        self.pipe().recv()
    }

    /// Receives up to `max` buffered packets, blocking only for the first
    /// (owned mode only; see [`DetachableReceiver::recv_up_to`]).
    ///
    /// # Errors
    ///
    /// Same as [`recv`](Self::recv).
    ///
    /// # Panics
    ///
    /// Panics in bridged mode, or if `max` is zero.
    pub fn recv_up_to(&self, max: usize) -> Result<Vec<Packet>, RecvError> {
        self.pipe().recv_up_to(max)
    }

    /// Receives up to `max` buffered packets without blocking (owned mode
    /// only; see [`DetachableReceiver::try_recv_up_to`]).
    ///
    /// # Errors
    ///
    /// Returns [`TryRecvError::Empty`] when nothing is buffered, plus the
    /// end-of-stream errors of [`recv`](Self::recv).
    ///
    /// # Panics
    ///
    /// Panics in bridged mode, or if `max` is zero.
    pub fn try_recv_up_to(&self, max: usize) -> Result<Vec<Packet>, TryRecvError> {
        self.pipe().try_recv_up_to(max)
    }

    /// Like [`recv`](Self::recv) but gives up after `timeout`.
    ///
    /// # Errors
    ///
    /// Returns [`TryRecvError::Empty`] on timeout, plus the usual
    /// end-of-stream errors.
    ///
    /// # Panics
    ///
    /// Panics in bridged mode.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Packet, TryRecvError> {
        self.pipe().recv_timeout(timeout)
    }

    /// Installs the data-readiness watcher on the consumer side (owned mode
    /// only; see [`DetachableReceiver::set_data_watcher`] — registration
    /// fires immediately when data, EOF, or close is already observable).
    ///
    /// # Panics
    ///
    /// Panics in bridged mode.
    pub fn set_data_watcher(&self, watcher: Arc<dyn PipeWatcher>) {
        self.pipe().set_data_watcher(watcher);
    }

    /// Number of packets currently buffered (owned mode only).
    ///
    /// # Panics
    ///
    /// Panics in bridged mode.
    pub fn available(&self) -> usize {
        self.pipe().available()
    }

    /// Stops the pump thread and waits for it to exit.
    ///
    /// Teardown ordering is identical to `Drop`: the owned pipe (if any) is
    /// closed *before* the join, so a pump stalled on back-pressure — or a
    /// consumer blocked on `recv` — is released and the join cannot hang.
    /// In bridged mode the downstream pipe belongs to the caller and is
    /// left untouched; it must still be draining (or be closed) for the
    /// pump to observe the flag, which is why the proxy shuts ingress
    /// endpoints down while their chains are still live.
    pub fn shutdown(&mut self) {
        self.teardown();
    }

    /// The single teardown path shared by [`shutdown`](Self::shutdown) and
    /// `Drop`: flag the pump, close the owned pipe (releasing anything
    /// blocked on it), then join.
    fn teardown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Closing the owned pipe unblocks a pump stalled on back-pressure;
        // a bridged pipe belongs to the caller and is left untouched.
        if let Some(receiver) = &self.receiver {
            receiver.close();
        }
        if let Some(pump) = self.pump.take() {
            let _ = pump.join();
        }
    }
}

impl Drop for UdpIngress {
    fn drop(&mut self) {
        self.teardown();
    }
}

fn pump_ingress(
    socket: &UdpSocket,
    sink: &DetachableSender<Packet>,
    stats: &TransportStats,
    stop: &AtomicBool,
) {
    let mut buf = vec![0u8; MAX_DATAGRAM_LEN];
    while !stop.load(Ordering::SeqCst) {
        let len = match socket.recv_from(&mut buf) {
            Ok((len, _peer)) => len,
            Err(err)
                if err.kind() == io::ErrorKind::WouldBlock
                    || err.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        };
        stats.record_rx_datagram();
        match Packet::decode(&buf[..len]) {
            Ok(packet) if is_fin(&packet) || is_stream_fin(&packet) => {
                // The remote stream ended: propagate EOF through the pipe.
                // A dedicated socket carries exactly one logical stream, so
                // a per-stream FIN (from a shared egress) ends it just like
                // the legacy transport-wide FIN does.
                sink.close();
                return;
            }
            Ok(mut packet) => {
                // Stamp the span clock at the socket boundary: end-to-end
                // latency spans start the moment the datagram left the OS.
                packet.stamp_ingress_ns(rapidware_telemetry::now_ns());
                // Received ⇒ counted: the counter moves before the packet
                // becomes observable to any consumer.
                stats.record_rx_packet();
                if sink.send(packet).is_err() {
                    stats.record_drop();
                    return;
                }
            }
            Err(_) => stats.record_decode_error(),
        }
    }
}

// ---------------------------------------------------------------------------
// Egress.
// ---------------------------------------------------------------------------

/// The sending half of the datagram transport: a pump drains a detachable
/// pipe, frames each packet, and sends one datagram per packet to `peer`.
///
/// Created with [`connect`](UdpEgress::connect) (owned pipe: this endpoint
/// *is* the producer-facing sender, exposing `send` / `send_batch` /
/// `try_send_batch` / watcher registration by delegation) or
/// [`drain`](UdpEgress::drain) (bridged: the pump drains a pipe receiver
/// supplied by the caller, e.g. a proxy chain output).
///
/// When the upstream pipe reports EOF the pump sends a FIN frame so the
/// remote ingress can close its stream, then exits.
pub struct UdpEgress {
    local_addr: SocketAddr,
    peer: SocketAddr,
    sender: Option<DetachableSender<Packet>>,
    stats: TransportStats,
    stop: Arc<AtomicBool>,
    pump: Option<JoinHandle<()>>,
}

impl fmt::Debug for UdpEgress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UdpEgress")
            .field("local_addr", &self.local_addr)
            .field("peer", &self.peer)
            .field("owned_pipe", &self.sender.is_some())
            .field("tx_packets", &self.stats.tx_packets())
            .finish()
    }
}

impl UdpEgress {
    /// Creates an egress with its own pipe: packets written through this
    /// endpoint's sender surface are framed and sent to `peer`.
    ///
    /// # Errors
    ///
    /// Returns the socket `bind`/configuration error, if any.
    pub fn connect(peer: impl ToSocketAddrs, config: &UdpConfig) -> io::Result<Self> {
        let (sender, source) = pipe(config.capacity);
        let mut egress = Self::drain(source, peer, config)?;
        egress.sender = Some(sender);
        Ok(egress)
    }

    /// Creates an egress whose pump drains `source` — the bridged mode the
    /// proxy uses to put a live chain output on the wire.
    ///
    /// # Errors
    ///
    /// Returns the socket `bind`/configuration error, if any.
    pub fn drain(
        source: DetachableReceiver<Packet>,
        peer: impl ToSocketAddrs,
        config: &UdpConfig,
    ) -> io::Result<Self> {
        let peer = crate::resolve_peer(peer)?;
        let socket = UdpSocket::bind((loopback_like(&peer), 0))?;
        let local_addr = socket.local_addr()?;
        let stats = TransportStats::new();
        let stop = Arc::new(AtomicBool::new(false));
        let pump = {
            let stats = stats.clone();
            let stop = Arc::clone(&stop);
            let poll = config.poll_interval;
            // Clamped here as well as in the builder: the field is public,
            // and a zero batch would panic the pump's try_recv_up_to.
            let batch = config.batch_size.max(1);
            std::thread::Builder::new()
                .name(format!("udp-egress-{local_addr}"))
                .spawn(move || pump_egress(&socket, &source, peer, &stats, &stop, poll, batch))
                .expect("spawning the egress pump thread")
        };
        Ok(Self {
            local_addr,
            peer,
            sender: None,
            stats,
            stop,
            pump: Some(pump),
        })
    }

    /// The socket's bound (source) address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The destination every framed packet is sent to.
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    /// This endpoint's transfer counters.
    pub fn stats(&self) -> TransportStats {
        self.stats.clone()
    }

    /// A clone of the producer-facing pipe sender, for handing to code
    /// written against [`DetachableSender`] (owned mode only).
    ///
    /// # Panics
    ///
    /// Panics in bridged mode (`drain`), where the producer side belongs to
    /// the caller.
    pub fn sender(&self) -> DetachableSender<Packet> {
        self.pipe().clone()
    }

    fn pipe(&self) -> &DetachableSender<Packet> {
        self.sender
            .as_ref()
            .expect("this egress drains an external pipe; write into that pipe instead")
    }

    /// Queues one packet for transmission, blocking under back-pressure
    /// (owned mode only; see [`DetachableSender::send`]).
    ///
    /// # Errors
    ///
    /// Returns the pipe's [`SendError`] if the endpoint was closed.
    ///
    /// # Panics
    ///
    /// Panics in bridged mode.
    pub fn send(&self, packet: Packet) -> Result<(), SendError<Packet>> {
        self.pipe().send(packet)
    }

    /// Queues a whole batch with one lock acquisition (owned mode only; see
    /// [`DetachableSender::send_batch`]).
    ///
    /// # Errors
    ///
    /// Returns the pipe's [`SendError`] carrying the undelivered packets.
    ///
    /// # Panics
    ///
    /// Panics in bridged mode.
    pub fn send_batch(&self, packets: Vec<Packet>) -> Result<(), SendError<Vec<Packet>>> {
        self.pipe().send_batch(packets)
    }

    /// Queues as much of `packets` as currently fits without blocking and
    /// returns the rest (owned mode only; see
    /// [`DetachableSender::try_send_batch`]).
    ///
    /// # Errors
    ///
    /// Returns the pipe's [`SendError`] carrying the undelivered packets.
    ///
    /// # Panics
    ///
    /// Panics in bridged mode.
    pub fn try_send_batch(&self, packets: Vec<Packet>) -> Result<Vec<Packet>, SendError<Vec<Packet>>> {
        self.pipe().try_send_batch(packets)
    }

    /// Installs the readiness watcher on the producer side (owned mode
    /// only; see [`DetachableSender::set_ready_watcher`]).
    ///
    /// # Panics
    ///
    /// Panics in bridged mode.
    pub fn set_ready_watcher(&self, watcher: Arc<dyn PipeWatcher>) {
        self.pipe().set_ready_watcher(watcher);
    }

    /// Ends the stream (owned mode only): the pump drains what is queued,
    /// sends the FIN frame, and exits.
    ///
    /// # Panics
    ///
    /// Panics in bridged mode (close the upstream pipe instead).
    pub fn close(&self) {
        self.pipe().close();
    }

    /// Stops the pump thread and waits for it to exit.  This is an abort,
    /// not a flush: the pump finishes at most the batch it is currently
    /// sending and anything else still queued in the pipe is discarded —
    /// use [`close`](Self::close) (or close the bridged upstream pipe) for
    /// a clean end of stream.
    ///
    /// Teardown ordering is identical to `Drop`: the owned pipe (if any)
    /// is closed *before* the join, so a producer blocked on a full pipe
    /// is released and a back-pressured egress can never hang teardown.
    pub fn shutdown(&mut self) {
        self.teardown(true);
    }

    /// The single teardown path shared by [`shutdown`](Self::shutdown) and
    /// `Drop`.  Both close the owned pipe before joining (releasing any
    /// producer blocked on back-pressure); `abort` additionally flags the
    /// pump to stop without draining, where a plain drop lets an owned
    /// pump flush its queue and send the FIN.
    fn teardown(&mut self, abort: bool) {
        if let Some(sender) = &self.sender {
            sender.close();
        }
        if abort || self.sender.is_none() {
            // Bridged mode always flags the pump: the upstream pipe may
            // outlive us, so the pump cannot wait for EOF.
            self.stop.store(true, Ordering::SeqCst);
        }
        if let Some(pump) = self.pump.take() {
            let _ = pump.join();
        }
    }
}

impl Drop for UdpEgress {
    fn drop(&mut self) {
        // A clean close first, so dropping an owned egress flushes and
        // FINs; bridged mode stops the pump instead of waiting for EOF.
        self.teardown(false);
    }
}

/// Picks a bind address in the same family (and loopback-ness) as the
/// peer, so an egress towards loopback never binds a routable interface.
fn loopback_like(peer: &SocketAddr) -> std::net::IpAddr {
    match peer {
        SocketAddr::V4(v4) if v4.ip().is_loopback() => std::net::Ipv4Addr::LOCALHOST.into(),
        SocketAddr::V4(_) => std::net::Ipv4Addr::UNSPECIFIED.into(),
        SocketAddr::V6(v6) if v6.ip().is_loopback() => std::net::Ipv6Addr::LOCALHOST.into(),
        SocketAddr::V6(_) => std::net::Ipv6Addr::UNSPECIFIED.into(),
    }
}

fn pump_egress(
    socket: &UdpSocket,
    source: &DetachableReceiver<Packet>,
    peer: SocketAddr,
    stats: &TransportStats,
    stop: &AtomicBool,
    poll: Duration,
    batch: usize,
) {
    let mut scratch = Vec::new();
    loop {
        // Checked every iteration, not only when idle: a producer that
        // never pauses must not be able to starve a shutdown.
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match source.recv_timeout(poll) {
            Ok(packet) => {
                send_frame(socket, peer, &packet, &mut scratch, stats);
                // Opportunistically move whatever else is queued, one
                // batch per lock acquisition, re-checking the stop flag
                // between batches.
                while !stop.load(Ordering::SeqCst) {
                    match source.try_recv_up_to(batch) {
                        Ok(more) => {
                            for packet in more {
                                send_frame(socket, peer, &packet, &mut scratch, stats);
                            }
                        }
                        Err(_) => break,
                    }
                }
            }
            Err(TryRecvError::Empty) => {}
            Err(TryRecvError::Eof) => {
                // Clean end of stream: tell the remote ingress.
                send_frame(socket, peer, &fin_packet(), &mut scratch, stats);
                return;
            }
            Err(TryRecvError::Closed) => return,
        }
    }
}

fn send_frame(
    socket: &UdpSocket,
    peer: SocketAddr,
    packet: &Packet,
    scratch: &mut Vec<u8>,
    stats: &TransportStats,
) {
    if !fits_in_datagram(packet) {
        stats.record_drop();
        return;
    }
    packet.encode_into(scratch);
    match socket.send_to(scratch, peer) {
        Ok(_) => stats.record_tx(),
        Err(_) => stats.record_drop(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapidware_packet::{PacketKind, SeqNo, StreamId};

    fn packet(seq: u64) -> Packet {
        Packet::new(StreamId::new(7), SeqNo::new(seq), PacketKind::AudioData, vec![seq as u8; 48])
    }

    #[test]
    fn loopback_round_trip_preserves_packets_in_order() {
        let config = UdpConfig::default();
        let ingress = UdpIngress::bind("127.0.0.1:0", &config).unwrap();
        let egress = UdpEgress::connect(ingress.local_addr(), &config).unwrap();
        let sent: Vec<Packet> = (0..64).map(packet).collect();
        egress.send_batch(sent.clone()).unwrap();
        let mut received = Vec::new();
        while received.len() < sent.len() {
            received.extend(ingress.recv_up_to(16).expect("stream is still open"));
        }
        assert_eq!(received, sent);
        // Receiving a datagram does not synchronise with the pump's relaxed
        // counter bump, so give the final increments a moment to land.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        while egress.stats().tx_packets() < 64 {
            assert!(std::time::Instant::now() < deadline, "tx count never reached 64");
            std::thread::yield_now();
        }
        assert_eq!(egress.stats().tx_packets(), 64);
        assert_eq!(ingress.stats().rx_packets(), 64);
        assert_eq!(ingress.stats().decode_errors(), 0);
    }

    #[test]
    fn closing_the_egress_sends_fin_and_ends_the_stream() {
        let config = UdpConfig::default();
        let ingress = UdpIngress::bind("127.0.0.1:0", &config).unwrap();
        let egress = UdpEgress::connect(ingress.local_addr(), &config).unwrap();
        egress.send(packet(1)).unwrap();
        egress.close();
        assert_eq!(ingress.recv().unwrap().seq().value(), 1);
        assert_eq!(ingress.recv().unwrap_err(), RecvError::Eof);
    }

    #[test]
    fn garbage_datagrams_count_as_decode_errors_without_breaking_the_stream() {
        let config = UdpConfig::default();
        let ingress = UdpIngress::bind("127.0.0.1:0", &config).unwrap();
        let probe = UdpSocket::bind("127.0.0.1:0").unwrap();
        probe.send_to(b"definitely not a packet", ingress.local_addr()).unwrap();
        let egress = UdpEgress::connect(ingress.local_addr(), &config).unwrap();
        egress.send(packet(9)).unwrap();
        assert_eq!(ingress.recv().unwrap().seq().value(), 9);
        assert_eq!(ingress.stats().decode_errors(), 1);
        assert_eq!(ingress.stats().rx_datagrams(), 2);
        assert_eq!(ingress.stats().rx_packets(), 1);
    }

    #[test]
    fn oversized_packets_are_dropped_at_the_egress() {
        let config = UdpConfig::default();
        let ingress = UdpIngress::bind("127.0.0.1:0", &config).unwrap();
        let egress = UdpEgress::connect(ingress.local_addr(), &config).unwrap();
        let oversized = Packet::new(
            StreamId::new(1),
            SeqNo::new(0),
            PacketKind::Data,
            vec![0u8; MAX_DATAGRAM_LEN],
        );
        egress.send(oversized).unwrap();
        egress.send(packet(3)).unwrap();
        // The oversized packet vanished; the next one flows.
        assert_eq!(ingress.recv().unwrap().seq().value(), 3);
        assert_eq!(egress.stats().dropped(), 1);
        assert_eq!(egress.stats().tx_packets(), 1);
    }

    #[test]
    fn try_surfaces_work_over_sockets() {
        let config = UdpConfig::default().with_capacity(4);
        let ingress = UdpIngress::bind("127.0.0.1:0", &config).unwrap();
        let egress = UdpEgress::connect(ingress.local_addr(), &config).unwrap();
        // try_send_batch on the egress surface: everything fits eventually
        // because the pump keeps draining.
        let mut pending: Vec<Packet> = (0..32).map(packet).collect();
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        while !pending.is_empty() {
            assert!(std::time::Instant::now() < deadline, "egress stalled");
            pending = egress.try_send_batch(pending).unwrap();
            if !pending.is_empty() {
                std::thread::yield_now();
            }
        }
        let mut received = 0usize;
        while received < 32 {
            assert!(std::time::Instant::now() < deadline, "ingress stalled");
            match ingress.try_recv_up_to(8) {
                Ok(batch) => received += batch.len(),
                Err(TryRecvError::Empty) => std::thread::yield_now(),
                Err(other) => panic!("unexpected receive error: {other}"),
            }
        }
    }

    #[test]
    fn data_watcher_fires_for_socket_arrivals() {
        struct Gate {
            fired: std::sync::Mutex<bool>,
            cv: std::sync::Condvar,
        }
        impl PipeWatcher for Gate {
            fn notify(&self) {
                *self.fired.lock().unwrap() = true;
                self.cv.notify_all();
            }
        }
        let config = UdpConfig::default();
        let ingress = UdpIngress::bind("127.0.0.1:0", &config).unwrap();
        let gate = Arc::new(Gate {
            fired: std::sync::Mutex::new(false),
            cv: std::sync::Condvar::new(),
        });
        ingress.set_data_watcher(gate.clone());
        let egress = UdpEgress::connect(ingress.local_addr(), &config).unwrap();
        egress.send(packet(0)).unwrap();
        let guard = gate.fired.lock().unwrap();
        let (guard, timeout) = gate
            .cv
            .wait_timeout_while(guard, Duration::from_secs(10), |fired| !*fired)
            .unwrap();
        assert!(!timeout.timed_out(), "watcher never fired for a socket arrival");
        drop(guard);
        assert_eq!(ingress.available(), 1);
    }

    #[test]
    fn debug_impls_are_nonempty() {
        let config = UdpConfig::default();
        let ingress = UdpIngress::bind("127.0.0.1:0", &config).unwrap();
        let egress = UdpEgress::connect(ingress.local_addr(), &config).unwrap();
        assert!(format!("{ingress:?}").contains("UdpIngress"));
        assert!(format!("{egress:?}").contains("UdpEgress"));
    }

    /// Joins `handle` through a channel so a regression back to the old
    /// teardown ordering fails the test instead of hanging it.
    fn join_within(handle: std::thread::JoinHandle<()>, what: &str) {
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        let waiter = std::thread::spawn(move || {
            let _ = handle.join();
            let _ = done_tx.send(());
        });
        done_rx
            .recv_timeout(Duration::from_secs(30))
            .unwrap_or_else(|_| panic!("{what} is still blocked after teardown"));
        let _ = waiter.join();
    }

    #[test]
    fn shutdown_releases_a_producer_blocked_on_a_back_pressured_egress() {
        // Regression: `shutdown` used to stop the pump *without* closing
        // the owned pipe (unlike `Drop`), so a producer blocked on a full
        // pipe after the pump exited would block forever.
        let sink = UdpSocket::bind("127.0.0.1:0").unwrap();
        let config = UdpConfig::default().with_capacity(2);
        let mut egress = UdpEgress::connect(sink.local_addr().unwrap(), &config).unwrap();
        let stats = egress.stats();
        let sender = egress.sender();
        let producer = std::thread::spawn(move || {
            // Send until the closed pipe errors out.  Once shutdown stops
            // the pump, the capacity-2 pipe fills and `send` blocks — only
            // the shutdown-path close can release it.
            let mut seq = 0;
            while sender.send(packet(seq)).is_ok() {
                seq += 1;
            }
        });
        // Let the path move at least one frame so the pump is provably up.
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        while stats.tx_packets() == 0 {
            assert!(std::time::Instant::now() < deadline, "egress never sent");
            std::thread::yield_now();
        }
        egress.shutdown();
        join_within(producer, "the back-pressured producer");
    }

    #[test]
    fn shutdown_releases_a_consumer_blocked_on_an_owned_ingress() {
        // The mirror regression on the receive side: stopping the pump
        // without closing the owned pipe left a blocked `recv` waiting for
        // a packet that could never arrive.
        let config = UdpConfig::default();
        let mut ingress = UdpIngress::bind("127.0.0.1:0", &config).unwrap();
        let rx = ingress.receiver();
        let consumer = std::thread::spawn(move || {
            // Blocks until the shutdown-path close errors it out.
            let _ = rx.recv();
        });
        ingress.shutdown();
        join_within(consumer, "the blocked consumer");
    }
}
