//! Per-endpoint transfer counters, mirroring the pipe stats discipline.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, lock-free counters describing the lifetime activity of one UDP
/// endpoint (an ingress or an egress).
///
/// A `TransportStats` is cheap to clone (an `Arc` of atomics) and can be
/// handed to monitoring code — the proxy surfaces these through
/// `ProxyStatus` and the control protocol — while the endpoint keeps
/// running.
///
/// **Counting discipline**: an ingress records a received packet *before*
/// delivering it into its pipe, so a packet a consumer holds is always
/// already counted (the same received ⇒ counted invariant the in-process
/// pipes uphold).  An egress records a packet *after* the datagram was
/// handed to the OS, so `tx_packets` never exceeds what was actually put on
/// the wire.
#[derive(Debug, Clone, Default)]
pub struct TransportStats {
    inner: Arc<StatsInner>,
}

#[derive(Debug, Default)]
struct StatsInner {
    rx_datagrams: AtomicU64,
    rx_packets: AtomicU64,
    tx_datagrams: AtomicU64,
    tx_packets: AtomicU64,
    decode_errors: AtomicU64,
    dropped: AtomicU64,
}

/// A point-in-time copy of a [`TransportStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct TransportSnapshot {
    /// Datagrams received off the socket (including undecodable ones).
    pub rx_datagrams: u64,
    /// Packets decoded and delivered toward the consumer.
    pub rx_packets: u64,
    /// Datagrams handed to the OS for transmission.
    pub tx_datagrams: u64,
    /// Packets framed and sent.
    pub tx_packets: u64,
    /// Datagrams that failed [`Packet::decode`](rapidware_packet::Packet::decode).
    pub decode_errors: u64,
    /// Packets discarded by the endpoint (oversized frames, sends the OS
    /// rejected, or packets that arrived after the downstream pipe closed).
    pub dropped: u64,
}

impl TransportStats {
    /// Creates a fresh, zeroed counter block.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_rx_datagram(&self) {
        self.inner.rx_datagrams.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_rx_packet(&self) {
        self.inner.rx_packets.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_tx(&self) {
        self.inner.tx_datagrams.fetch_add(1, Ordering::Relaxed);
        self.inner.tx_packets.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_decode_error(&self) {
        self.inner.decode_errors.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_drop(&self) {
        self.inner.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Datagrams received off the socket so far.
    pub fn rx_datagrams(&self) -> u64 {
        self.inner.rx_datagrams.load(Ordering::Relaxed)
    }

    /// Packets decoded and delivered toward the consumer so far.
    pub fn rx_packets(&self) -> u64 {
        self.inner.rx_packets.load(Ordering::Relaxed)
    }

    /// Datagrams handed to the OS so far.
    pub fn tx_datagrams(&self) -> u64 {
        self.inner.tx_datagrams.load(Ordering::Relaxed)
    }

    /// Packets framed and sent so far.
    pub fn tx_packets(&self) -> u64 {
        self.inner.tx_packets.load(Ordering::Relaxed)
    }

    /// Datagrams that failed to decode so far.
    pub fn decode_errors(&self) -> u64 {
        self.inner.decode_errors.load(Ordering::Relaxed)
    }

    /// Packets discarded by the endpoint so far.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// A consistent-enough point-in-time copy of every counter.
    pub fn snapshot(&self) -> TransportSnapshot {
        TransportSnapshot {
            rx_datagrams: self.rx_datagrams(),
            rx_packets: self.rx_packets(),
            tx_datagrams: self.tx_datagrams(),
            tx_packets: self.tx_packets(),
            decode_errors: self.decode_errors(),
            dropped: self.dropped(),
        }
    }
}

impl rapidware_telemetry::StatSource for TransportStats {
    fn snapshot(&self) -> Vec<rapidware_telemetry::Metric> {
        rapidware_telemetry::StatSource::snapshot(&self.snapshot())
    }
}

impl rapidware_telemetry::StatSource for TransportSnapshot {
    fn snapshot(&self) -> Vec<rapidware_telemetry::Metric> {
        use rapidware_telemetry::Metric;
        vec![
            Metric::new("rx_datagrams", self.rx_datagrams),
            Metric::new("rx_packets", self.rx_packets),
            Metric::new("tx_datagrams", self.tx_datagrams),
            Metric::new("tx_packets", self.tx_packets),
            Metric::new("decode_errors", self.decode_errors),
            Metric::new("dropped", self.dropped),
        ]
    }
}

impl TransportSnapshot {
    /// Merges two snapshots counter-by-counter (used to aggregate the
    /// per-lane egress endpoints of a UDP fanout session).
    #[must_use]
    pub fn merged(&self, other: &TransportSnapshot) -> TransportSnapshot {
        TransportSnapshot {
            rx_datagrams: self.rx_datagrams + other.rx_datagrams,
            rx_packets: self.rx_packets + other.rx_packets,
            tx_datagrams: self.tx_datagrams + other.tx_datagrams,
            tx_packets: self.tx_packets + other.tx_packets,
            decode_errors: self.decode_errors + other.decode_errors,
            dropped: self.dropped + other.dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let stats = TransportStats::new();
        stats.record_rx_datagram();
        stats.record_rx_packet();
        stats.record_tx();
        stats.record_decode_error();
        stats.record_drop();
        let snap = stats.snapshot();
        assert_eq!(snap.rx_datagrams, 1);
        assert_eq!(snap.rx_packets, 1);
        assert_eq!(snap.tx_datagrams, 1);
        assert_eq!(snap.tx_packets, 1);
        assert_eq!(snap.decode_errors, 1);
        assert_eq!(snap.dropped, 1);
    }

    #[test]
    fn clones_share_counters_and_snapshots_merge() {
        let stats = TransportStats::new();
        let clone = stats.clone();
        clone.record_tx();
        assert_eq!(stats.tx_packets(), 1);
        let merged = stats.snapshot().merged(&stats.snapshot());
        assert_eq!(merged.tx_packets, 2);
        assert_eq!(merged.rx_packets, 0);
    }
}
