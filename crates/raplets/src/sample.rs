//! The measurement sample observers consume.

use rapidware_netsim::SimTime;

/// One observation window of a (usually wireless) link: how many packets
/// were offered to it and how many arrived, plus optional context.
///
/// Samples are produced by whatever monitors the link — in the simulator,
/// the scenario runner compares taps on either side of the wireless hop; on
/// the paper's testbed this role is played by receiver reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSample {
    /// When the window ended.
    pub time: SimTime,
    /// Packets offered to the link during the window.
    pub sent: u64,
    /// Packets that arrived during the window.
    pub delivered: u64,
    /// Estimated available bandwidth in bits per second, if known.
    pub bandwidth_bps: Option<u64>,
    /// Distance from the access point in meters, if known.
    pub distance_m: Option<f64>,
}

impl LinkSample {
    /// Creates a sample carrying only loss information.
    pub fn new(time: SimTime, sent: u64, delivered: u64) -> Self {
        Self {
            time,
            sent,
            delivered,
            bandwidth_bps: None,
            distance_m: None,
        }
    }

    /// Attaches a bandwidth estimate.
    #[must_use]
    pub fn with_bandwidth(mut self, bandwidth_bps: u64) -> Self {
        self.bandwidth_bps = Some(bandwidth_bps);
        self
    }

    /// Attaches the mobile host's distance from the access point.
    #[must_use]
    pub fn with_distance(mut self, distance_m: f64) -> Self {
        self.distance_m = Some(distance_m);
        self
    }

    /// The observed loss rate in this window (0 when nothing was sent).
    pub fn loss_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            1.0 - (self.delivered.min(self.sent) as f64 / self.sent as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_rate_is_computed() {
        let sample = LinkSample::new(SimTime::ZERO, 200, 190);
        assert!((sample.loss_rate() - 0.05).abs() < 1e-12);
        assert_eq!(LinkSample::new(SimTime::ZERO, 0, 0).loss_rate(), 0.0);
        // Delivered can never exceed sent in the rate computation.
        assert_eq!(LinkSample::new(SimTime::ZERO, 5, 9).loss_rate(), 0.0);
    }

    #[test]
    fn builders_attach_context() {
        let sample = LinkSample::new(SimTime::from_secs(3), 10, 10)
            .with_bandwidth(2_000_000)
            .with_distance(25.0);
        assert_eq!(sample.bandwidth_bps, Some(2_000_000));
        assert_eq!(sample.distance_m, Some(25.0));
        assert_eq!(sample.time, SimTime::from_secs(3));
    }
}
