//! The measurement sample observers consume.

use rapidware_netsim::SimTime;

/// One observation window of a (usually wireless) link: how many packets
/// were offered to it and how many arrived, plus optional context.
///
/// Samples are produced by whatever monitors the link — in the simulator,
/// the scenario runner compares taps on either side of the wireless hop; on
/// the paper's testbed this role is played by receiver reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSample {
    /// When the window ended.
    pub time: SimTime,
    /// Packets offered to the link during the window.
    pub sent: u64,
    /// Packets that arrived during the window.
    pub delivered: u64,
    /// Estimated available bandwidth in bits per second, if known.
    pub bandwidth_bps: Option<u64>,
    /// Distance from the access point in meters, if known.
    pub distance_m: Option<f64>,
    /// When the observation window started, if the producer tracked it.
    pub window_start: Option<SimTime>,
    /// Payload bytes delivered during the window (0 when not tracked).
    pub bytes_delivered: u64,
}

impl LinkSample {
    /// Creates a sample carrying only loss information.
    pub fn new(time: SimTime, sent: u64, delivered: u64) -> Self {
        Self {
            time,
            sent,
            delivered,
            bandwidth_bps: None,
            distance_m: None,
            window_start: None,
            bytes_delivered: 0,
        }
    }

    /// Attaches a bandwidth estimate.
    #[must_use]
    pub fn with_bandwidth(mut self, bandwidth_bps: u64) -> Self {
        self.bandwidth_bps = Some(bandwidth_bps);
        self
    }

    /// Attaches the mobile host's distance from the access point.
    #[must_use]
    pub fn with_distance(mut self, distance_m: f64) -> Self {
        self.distance_m = Some(distance_m);
        self
    }

    /// Attaches the observation window: when it started and how many payload
    /// bytes were delivered during it.  Enables
    /// [`delivered_throughput_bps`](Self::delivered_throughput_bps).
    #[must_use]
    pub fn with_window(mut self, start: SimTime, bytes_delivered: u64) -> Self {
        self.window_start = Some(start);
        self.bytes_delivered = bytes_delivered;
        self
    }

    /// Duration of the observation window in microseconds (`None` when the
    /// producer did not record the window start).
    pub fn window_duration_us(&self) -> Option<u64> {
        self.window_start.map(|start| self.time.micros_since(start))
    }

    /// Delivered throughput over the window, in bits per second.
    ///
    /// Returns `None` when no window was recorded **or the window contains
    /// no elapsed simulated time** — a zero-duration window carries no rate
    /// information, and dividing by it would poison every consumer downstream
    /// (the throughput observers compare this estimate against a floor).
    /// Callers therefore never see an infinity, a `NaN`, or a panic from
    /// degenerate windows; they simply get no estimate.
    pub fn delivered_throughput_bps(&self) -> Option<u64> {
        let elapsed_us = self.window_duration_us()?;
        if elapsed_us == 0 {
            return None;
        }
        Some(self.bytes_delivered.saturating_mul(8).saturating_mul(1_000_000) / elapsed_us)
    }

    /// The observed loss rate in this window (0 when nothing was sent).
    pub fn loss_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            1.0 - (self.delivered.min(self.sent) as f64 / self.sent as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_rate_is_computed() {
        let sample = LinkSample::new(SimTime::ZERO, 200, 190);
        assert!((sample.loss_rate() - 0.05).abs() < 1e-12);
        assert_eq!(LinkSample::new(SimTime::ZERO, 0, 0).loss_rate(), 0.0);
        // Delivered can never exceed sent in the rate computation.
        assert_eq!(LinkSample::new(SimTime::ZERO, 5, 9).loss_rate(), 0.0);
    }

    #[test]
    fn builders_attach_context() {
        let sample = LinkSample::new(SimTime::from_secs(3), 10, 10)
            .with_bandwidth(2_000_000)
            .with_distance(25.0);
        assert_eq!(sample.bandwidth_bps, Some(2_000_000));
        assert_eq!(sample.distance_m, Some(25.0));
        assert_eq!(sample.time, SimTime::from_secs(3));
    }

    #[test]
    fn throughput_is_estimated_over_the_window() {
        // 25_000 bytes over a 1-second window = 200_000 bps.
        let sample = LinkSample::new(SimTime::from_secs(3), 100, 100)
            .with_window(SimTime::from_secs(2), 25_000);
        assert_eq!(sample.window_duration_us(), Some(1_000_000));
        assert_eq!(sample.delivered_throughput_bps(), Some(200_000));
    }

    #[test]
    fn zero_duration_window_yields_no_throughput_estimate() {
        // A window with no elapsed simulated time must not divide by zero:
        // the estimate is simply absent.
        let now = SimTime::from_secs(5);
        let degenerate = LinkSample::new(now, 10, 10).with_window(now, 4_096);
        assert_eq!(degenerate.window_duration_us(), Some(0));
        assert_eq!(degenerate.delivered_throughput_bps(), None);
        // A window that "ends" before it starts saturates to zero duration.
        let inverted =
            LinkSample::new(SimTime::from_secs(1), 10, 10).with_window(now, 4_096);
        assert_eq!(inverted.window_duration_us(), Some(0));
        assert_eq!(inverted.delivered_throughput_bps(), None);
        // No window recorded at all: no estimate either.
        assert_eq!(LinkSample::new(now, 10, 10).delivered_throughput_bps(), None);
    }

    #[test]
    fn huge_byte_counts_do_not_overflow() {
        let sample = LinkSample::new(SimTime::from_secs(1), 1, 1)
            .with_window(SimTime::ZERO, u64::MAX / 4);
        // Saturating arithmetic: an absurd byte count caps out instead of
        // wrapping into a nonsense small number.
        assert!(sample.delivered_throughput_bps().unwrap() > 0);
    }
}
