//! Responder raplets: turn adaptation events into chain reconfigurations.

use std::fmt;

use rapidware_proxy::FilterSpec;

use crate::observer::AdaptationEvent;

/// A reconfiguration requested by a responder.
///
/// Actions are descriptions, not side effects: the adaptation engine's
/// caller applies them to whichever chain implementation it runs (the
/// threaded proxy, the synchronous simulation chain, or a remote proxy via
/// the control protocol).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdaptationAction {
    /// Instantiate a filter from `spec` and splice it in at `position`.
    Insert {
        /// Chain position (0 = closest to the source).
        position: usize,
        /// What to instantiate.
        spec: FilterSpec,
    },
    /// Remove the first installed filter whose kind matches.
    RemoveKind {
        /// Registered filter kind (e.g. `fec-encoder`).
        kind: String,
    },
    /// Replace the first filter of `kind` with a new instantiation of
    /// `spec` (used to change FEC parameters in place).
    ReplaceKind {
        /// Kind of the filter to replace.
        kind: String,
        /// Replacement specification.
        spec: FilterSpec,
    },
}

/// A responder raplet: reacts to events with reconfiguration actions.
pub trait Responder: Send + fmt::Debug {
    /// Short display name.
    fn name(&self) -> &str;

    /// Handles one event, returning the actions it wants applied.
    fn handle(&mut self, event: &AdaptationEvent) -> Vec<AdaptationAction>;
}

/// Inserts, tunes, and removes an FEC encoder in response to loss events —
/// the paper's motivating adaptation ("when losses rise above a given
/// level, the RAPIDware system should insert an FEC filter into the video
/// stream", Section 3).
///
/// The responder is demand-driven and tiered: moderate loss gets the
/// paper's FEC(6,4); heavy loss upgrades to a stronger code; when the link
/// recovers the filter is removed so no bandwidth is wasted on parity.
#[derive(Debug, Clone)]
pub struct FecResponder {
    name: String,
    position: usize,
    moderate: (usize, usize),
    strong: (usize, usize),
    strong_threshold: f64,
    installed: Option<(usize, usize)>,
    frame_aligned: bool,
}

impl FecResponder {
    /// Creates a responder that installs `moderate` = (n, k) FEC at
    /// `position` when loss rises, upgrades to `strong` when the loss rate
    /// exceeds `strong_threshold`, and removes the encoder when loss clears.
    pub fn new(
        position: usize,
        moderate: (usize, usize),
        strong: (usize, usize),
        strong_threshold: f64,
    ) -> Self {
        Self {
            name: format!(
                "fec-responder({},{})/({},{})",
                moderate.0, moderate.1, strong.0, strong.1
            ),
            position,
            moderate,
            strong,
            strong_threshold,
            installed: None,
            frame_aligned: false,
        }
    }

    /// The paper's configuration: FEC(6,4) for moderate loss, FEC(8,4) when
    /// loss exceeds 10 %.
    pub fn paper_default() -> Self {
        Self::new(0, (6, 4), (8, 4), 0.10)
    }

    /// Requests frame-boundary-aligned insertion (for video streams).
    #[must_use]
    pub fn frame_aligned(mut self) -> Self {
        self.frame_aligned = true;
        self
    }

    /// The FEC parameters currently installed by this responder, if any.
    pub fn installed(&self) -> Option<(usize, usize)> {
        self.installed
    }

    fn spec_for(&self, params: (usize, usize)) -> FilterSpec {
        let mut spec = FilterSpec::new("fec-encoder")
            .with_param("n", params.0.to_string())
            .with_param("k", params.1.to_string());
        if self.frame_aligned {
            spec = spec.with_param("frame_aligned", "true");
        }
        spec
    }
}

impl Responder for FecResponder {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, event: &AdaptationEvent) -> Vec<AdaptationAction> {
        match *event {
            AdaptationEvent::LossRoseAbove { rate, .. } => {
                let desired = if rate >= self.strong_threshold {
                    self.strong
                } else {
                    self.moderate
                };
                match self.installed {
                    None => {
                        self.installed = Some(desired);
                        vec![AdaptationAction::Insert {
                            position: self.position,
                            spec: self.spec_for(desired),
                        }]
                    }
                    Some(current) if current != desired => {
                        self.installed = Some(desired);
                        vec![AdaptationAction::ReplaceKind {
                            kind: "fec-encoder".to_string(),
                            spec: self.spec_for(desired),
                        }]
                    }
                    Some(_) => Vec::new(),
                }
            }
            AdaptationEvent::LossFellBelow { .. } => {
                if self.installed.take().is_some() {
                    vec![AdaptationAction::RemoveKind {
                        kind: "fec-encoder".to_string(),
                    }]
                } else {
                    Vec::new()
                }
            }
            _ => Vec::new(),
        }
    }
}

/// Inserts and removes an audio transcoder in response to throughput events
/// (the classic proxy duty of "transcoding and filtering of data streams to
/// reduce bandwidth and load on mobile clients").
#[derive(Debug, Clone)]
pub struct TranscoderResponder {
    name: String,
    position: usize,
    mode: String,
    installed: bool,
}

impl TranscoderResponder {
    /// Creates a responder that installs a transcoder (of the given
    /// registry mode string) at `position` when throughput drops.
    pub fn new(position: usize, mode: impl Into<String>) -> Self {
        let mode = mode.into();
        Self {
            name: format!("transcoder-responder({mode})"),
            position,
            mode,
            installed: false,
        }
    }

    /// Default: convert stereo to mono ahead of the wireless hop.
    pub fn stereo_to_mono() -> Self {
        Self::new(0, "stereo-to-mono")
    }

    /// Whether the transcoder is currently installed by this responder.
    pub fn is_installed(&self) -> bool {
        self.installed
    }
}

impl Responder for TranscoderResponder {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, event: &AdaptationEvent) -> Vec<AdaptationAction> {
        match event {
            AdaptationEvent::ThroughputDropped { .. } if !self.installed => {
                self.installed = true;
                vec![AdaptationAction::Insert {
                    position: self.position,
                    spec: FilterSpec::new("transcoder").with_param("mode", self.mode.clone()),
                }]
            }
            AdaptationEvent::ThroughputRecovered { .. } if self.installed => {
                self.installed = false;
                vec![AdaptationAction::RemoveKind {
                    kind: "transcoder".to_string(),
                }]
            }
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loss_up(rate: f64) -> AdaptationEvent {
        AdaptationEvent::LossRoseAbove {
            rate,
            threshold: 0.02,
        }
    }

    fn loss_down() -> AdaptationEvent {
        AdaptationEvent::LossFellBelow {
            rate: 0.001,
            threshold: 0.005,
        }
    }

    #[test]
    fn fec_responder_inserts_then_removes() {
        let mut responder = FecResponder::paper_default();
        let actions = responder.handle(&loss_up(0.03));
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            AdaptationAction::Insert { position, spec } => {
                assert_eq!(*position, 0);
                assert_eq!(spec.kind, "fec-encoder");
                assert_eq!(spec.param("n"), Some("6"));
                assert_eq!(spec.param("k"), Some("4"));
            }
            other => panic!("unexpected action {other:?}"),
        }
        assert_eq!(responder.installed(), Some((6, 4)));
        // A second rise event while installed with the same tier: no action.
        assert!(responder.handle(&loss_up(0.03)).is_empty());
        // Loss clears: encoder removed.
        let actions = responder.handle(&loss_down());
        assert_eq!(
            actions,
            vec![AdaptationAction::RemoveKind {
                kind: "fec-encoder".to_string()
            }]
        );
        assert_eq!(responder.installed(), None);
        // Removing again is a no-op.
        assert!(responder.handle(&loss_down()).is_empty());
    }

    #[test]
    fn fec_responder_upgrades_under_heavy_loss() {
        let mut responder = FecResponder::paper_default();
        responder.handle(&loss_up(0.03));
        let actions = responder.handle(&loss_up(0.2));
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            AdaptationAction::ReplaceKind { kind, spec } => {
                assert_eq!(kind, "fec-encoder");
                assert_eq!(spec.param("n"), Some("8"));
            }
            other => panic!("unexpected action {other:?}"),
        }
        assert_eq!(responder.installed(), Some((8, 4)));
    }

    #[test]
    fn fec_responder_installs_strong_tier_directly_under_heavy_loss() {
        let mut responder = FecResponder::paper_default();
        let actions = responder.handle(&loss_up(0.5));
        match &actions[0] {
            AdaptationAction::Insert { spec, .. } => assert_eq!(spec.param("n"), Some("8")),
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn frame_aligned_spec_carries_the_flag() {
        let mut responder = FecResponder::paper_default().frame_aligned();
        let actions = responder.handle(&loss_up(0.03));
        match &actions[0] {
            AdaptationAction::Insert { spec, .. } => {
                assert_eq!(spec.param("frame_aligned"), Some("true"));
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn fec_responder_ignores_throughput_events() {
        let mut responder = FecResponder::paper_default();
        assert!(responder
            .handle(&AdaptationEvent::ThroughputDropped {
                bits_per_second: 1,
                floor_bps: 2
            })
            .is_empty());
    }

    #[test]
    fn transcoder_responder_round_trip() {
        let mut responder = TranscoderResponder::stereo_to_mono();
        assert!(!responder.is_installed());
        let drop_event = AdaptationEvent::ThroughputDropped {
            bits_per_second: 100_000,
            floor_bps: 128_000,
        };
        let actions = responder.handle(&drop_event);
        assert!(matches!(actions[0], AdaptationAction::Insert { .. }));
        assert!(responder.is_installed());
        assert!(responder.handle(&drop_event).is_empty());
        let recover = AdaptationEvent::ThroughputRecovered {
            bits_per_second: 2_000_000,
            floor_bps: 128_000,
        };
        let actions = responder.handle(&recover);
        assert!(matches!(actions[0], AdaptationAction::RemoveKind { .. }));
        assert!(!responder.is_installed());
    }
}
