//! The adaptation engine: observers in, actions out.

use std::fmt;

use rapidware_netsim::SimTime;
use rapidware_proxy::{PooledSession, Proxy, ProxyError, Session};

use crate::observer::{AdaptationEvent, Observer};
use crate::responder::{AdaptationAction, Responder};
use crate::sample::LinkSample;

/// One entry of the engine's adaptation log: when, which event, which
/// actions.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptationRecord {
    /// When the triggering sample was observed.
    pub time: SimTime,
    /// The event that fired.
    pub event: AdaptationEvent,
    /// The actions the responders requested.
    pub actions: Vec<AdaptationAction>,
}

/// Wires a set of observer raplets to a set of responder raplets.
///
/// The engine itself performs no I/O and mutates no chain: callers feed it
/// [`LinkSample`]s and apply the returned [`AdaptationAction`]s to the chain
/// implementation of their choice.  This mirrors RAPIDware's separation of
/// adaptive logic (raplets) from core data-path services.
#[derive(Debug, Default)]
pub struct AdaptationEngine {
    observers: Vec<Box<dyn Observer>>,
    responders: Vec<Box<dyn Responder>>,
    log: Vec<AdaptationRecord>,
}

impl AdaptationEngine {
    /// Creates an engine with no raplets installed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs an observer raplet.
    pub fn add_observer(&mut self, observer: Box<dyn Observer>) {
        self.observers.push(observer);
    }

    /// Installs a responder raplet.
    pub fn add_responder(&mut self, responder: Box<dyn Responder>) {
        self.responders.push(responder);
    }

    /// Names of the installed observers.
    pub fn observer_names(&self) -> Vec<String> {
        self.observers.iter().map(|o| o.name().to_string()).collect()
    }

    /// Names of the installed responders.
    pub fn responder_names(&self) -> Vec<String> {
        self.responders.iter().map(|r| r.name().to_string()).collect()
    }

    /// Feeds one link sample through every observer and routes the raised
    /// events through every responder, returning the actions to apply.
    pub fn ingest(&mut self, sample: &LinkSample) -> Vec<AdaptationAction> {
        let mut all_actions = Vec::new();
        for observer in &mut self.observers {
            for event in observer.sample(sample) {
                let mut actions = Vec::new();
                for responder in &mut self.responders {
                    actions.extend(responder.handle(&event));
                }
                self.log.push(AdaptationRecord {
                    time: sample.time,
                    event,
                    actions: actions.clone(),
                });
                all_actions.extend(actions);
            }
        }
        all_actions
    }

    /// The full adaptation log so far.
    pub fn log(&self) -> &[AdaptationRecord] {
        &self.log
    }

    /// Drains and returns the adaptation log.
    pub fn take_log(&mut self) -> Vec<AdaptationRecord> {
        std::mem::take(&mut self.log)
    }
}

impl fmt::Display for AdaptationRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {:?} -> {} action(s)", self.time, self.event, self.actions.len())
    }
}

/// Applies adaptation actions to a stream of a live (threaded) [`Proxy`].
///
/// `RemoveKind`/`ReplaceKind` resolve the position by matching the kind
/// prefix of the installed filter names (filter names are
/// `kind(parameters)` by convention).
///
/// # Errors
///
/// Propagates the first proxy error encountered; earlier actions stay
/// applied.
pub fn apply_to_proxy(
    proxy: &Proxy,
    stream: &str,
    actions: &[AdaptationAction],
) -> Result<(), ProxyError> {
    apply_to_chain_surface(
        actions,
        |position, spec| proxy.insert_filter(stream, position, spec),
        |position| proxy.remove_filter(stream, position).map(|_| ()),
        || proxy.filter_names(stream),
    )
}

/// Applies adaptation actions to one receiver lane of a live fanout
/// [`Session`] — the per-receiver flavour of [`apply_to_proxy`].
///
/// Each lane runs its own observer/responder loop ([`AdaptationEngine`]
/// instances are cheap, so a fanout session simply owns one per adaptive
/// lane), and the actions that loop emits land only on that lane's tail
/// chain: inserting FEC for a lossy WLAN receiver leaves its wired siblings
/// untouched.
///
/// # Errors
///
/// Propagates the first proxy error encountered; earlier actions stay
/// applied.
pub fn apply_to_session(
    session: &Session,
    lane: &str,
    actions: &[AdaptationAction],
) -> Result<(), ProxyError> {
    apply_to_chain_surface(
        actions,
        |position, spec| session.insert_lane_filter(lane, position, spec),
        |position| session.remove_lane_filter(lane, position).map(|_| ()),
        || session.lane_filter_names(lane),
    )
}

/// Applies adaptation actions to one receiver lane of a [`PooledSession`]
/// hosted on the sharded worker pool — identical semantics to
/// [`apply_to_session`], so a lane's adaptation loop behaves the same
/// whether the session runs thread-per-filter or pooled.
///
/// # Errors
///
/// Propagates the first proxy error encountered; earlier actions stay
/// applied.
pub fn apply_to_pooled_session(
    session: &PooledSession,
    lane: &str,
    actions: &[AdaptationAction],
) -> Result<(), ProxyError> {
    apply_to_chain_surface(
        actions,
        |position, spec| session.insert_lane_filter(lane, position, spec),
        |position| session.remove_lane_filter(lane, position).map(|_| ()),
        || session.lane_filter_names(lane),
    )
}

/// The shared action-dispatch logic behind [`apply_to_proxy`] and
/// [`apply_to_session`]: insert at a position, remove/replace by kind
/// prefix, with a replace of a missing kind falling back to an insert at
/// the head.  Keeping one implementation guarantees proxy streams and
/// session lanes can never drift in how they interpret actions.
fn apply_to_chain_surface(
    actions: &[AdaptationAction],
    insert: impl Fn(usize, &rapidware_proxy::FilterSpec) -> Result<(), ProxyError>,
    remove: impl Fn(usize) -> Result<(), ProxyError>,
    names: impl Fn() -> Result<Vec<String>, ProxyError>,
) -> Result<(), ProxyError> {
    let position_of_kind = |kind: &str| -> Result<Option<usize>, ProxyError> {
        Ok(names()?.iter().position(|name| name.starts_with(kind)))
    };
    for action in actions {
        match action {
            AdaptationAction::Insert { position, spec } => {
                insert(*position, spec)?;
            }
            AdaptationAction::RemoveKind { kind } => {
                if let Some(position) = position_of_kind(kind)? {
                    remove(position)?;
                }
            }
            AdaptationAction::ReplaceKind { kind, spec } => {
                if let Some(position) = position_of_kind(kind)? {
                    remove(position)?;
                    insert(position, spec)?;
                } else {
                    insert(0, spec)?;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::LossRateObserver;
    use crate::responder::FecResponder;
    use rapidware_packet::{Packet, PacketKind, SeqNo, StreamId};

    fn engine() -> AdaptationEngine {
        let mut engine = AdaptationEngine::new();
        engine.add_observer(Box::new(
            LossRateObserver::paper_default().with_smoothing(1.0),
        ));
        engine.add_responder(Box::new(FecResponder::paper_default()));
        engine
    }

    #[test]
    fn quiet_link_produces_no_actions() {
        let mut engine = engine();
        for i in 0..10 {
            let sample = LinkSample::new(SimTime::from_secs(i), 1000, 998);
            assert!(engine.ingest(&sample).is_empty());
        }
        assert!(engine.log().is_empty());
    }

    #[test]
    fn loss_spike_inserts_fec_and_recovery_removes_it() {
        let mut engine = engine();
        let actions = engine.ingest(&LinkSample::new(SimTime::from_secs(1), 1000, 930));
        assert_eq!(actions.len(), 1);
        assert!(matches!(actions[0], AdaptationAction::Insert { .. }));
        // Sustained loss: no further actions (responder is stateful).
        assert!(engine
            .ingest(&LinkSample::new(SimTime::from_secs(2), 1000, 930))
            .is_empty());
        // Recovery.
        let actions = engine.ingest(&LinkSample::new(SimTime::from_secs(3), 1000, 1000));
        assert!(matches!(actions[0], AdaptationAction::RemoveKind { .. }));
        assert_eq!(engine.log().len(), 2);
        assert!(engine.log()[0].to_string().contains("action"));
        let log = engine.take_log();
        assert_eq!(log.len(), 2);
        assert!(engine.log().is_empty());
    }

    #[test]
    fn names_report_installed_raplets() {
        let engine = engine();
        assert_eq!(engine.observer_names().len(), 1);
        assert!(engine.responder_names()[0].contains("fec-responder"));
    }

    #[test]
    fn actions_apply_to_a_live_proxy() {
        let mut proxy = Proxy::new("adaptive");
        let (input, output) = proxy.add_stream("audio").unwrap();
        let mut engine = engine();

        // Loss spike: FEC encoder appears on the live chain.
        let actions = engine.ingest(&LinkSample::new(SimTime::from_secs(1), 1000, 900));
        apply_to_proxy(&proxy, "audio", &actions).unwrap();
        assert_eq!(proxy.filter_names("audio").unwrap(), vec!["fec-encoder(6,4)"]);

        // Traffic still flows through the adapted chain.
        input
            .send(Packet::new(
                StreamId::new(1),
                SeqNo::new(0),
                PacketKind::AudioData,
                vec![0u8; 32],
            ))
            .unwrap();
        assert_eq!(output.recv().unwrap().seq().value(), 0);

        // Heavier loss: encoder replaced by the stronger tier.
        let actions = engine.ingest(&LinkSample::new(SimTime::from_secs(2), 1000, 1000));
        apply_to_proxy(&proxy, "audio", &actions).unwrap();
        let actions = engine.ingest(&LinkSample::new(SimTime::from_secs(3), 1000, 700));
        apply_to_proxy(&proxy, "audio", &actions).unwrap();
        assert_eq!(proxy.filter_names("audio").unwrap(), vec!["fec-encoder(8,4)"]);

        // Recovery: encoder removed again.
        let actions = engine.ingest(&LinkSample::new(SimTime::from_secs(4), 1000, 1000));
        apply_to_proxy(&proxy, "audio", &actions).unwrap();
        assert!(proxy.filter_names("audio").unwrap().is_empty());
        proxy.shutdown().unwrap();
    }

    #[test]
    fn remove_kind_for_missing_filter_is_a_no_op() {
        let mut proxy = Proxy::new("p");
        proxy.add_stream("s").unwrap();
        apply_to_proxy(
            &proxy,
            "s",
            &[AdaptationAction::RemoveKind {
                kind: "fec-encoder".to_string(),
            }],
        )
        .unwrap();
        assert!(proxy.filter_names("s").unwrap().is_empty());
        // Replace of a missing kind falls back to an insert at 0.
        apply_to_proxy(
            &proxy,
            "s",
            &[AdaptationAction::ReplaceKind {
                kind: "fec-encoder".to_string(),
                spec: rapidware_proxy::FilterSpec::new("fec-encoder"),
            }],
        )
        .unwrap();
        assert_eq!(proxy.filter_names("s").unwrap().len(), 1);
        proxy.shutdown().unwrap();
    }
}
