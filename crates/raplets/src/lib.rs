//! # rapidware-raplets — adaptive middleware components
//!
//! RAPIDware separates *adaptive* middleware components from the core,
//! non-adaptive services so that adaptation logic can be reconfigured at run
//! time.  The adaptive components are called **raplets** and come in two
//! flavours (paper, Section 2):
//!
//! * **observer** raplets collectively monitor the state of the system —
//!   link quality, device capabilities, user preferences;
//! * **responder** raplets react to events raised by observers by
//!   instantiating new components or reconfiguring existing ones — for
//!   example inserting an FEC filter into a proxy when the wireless loss
//!   rate rises.
//!
//! This crate provides the [`Observer`] and [`Responder`] traits, concrete
//! raplets for the paper's scenarios ([`LossRateObserver`],
//! [`ThroughputObserver`], [`FecResponder`], [`TranscoderResponder`]), and
//! the [`AdaptationEngine`] that wires a set of raplets together and turns
//! link samples into chain-reconfiguration actions.
//!
//! Responders do not mutate proxies directly; they emit
//! [`AdaptationAction`]s which the caller applies to whichever chain
//! implementation it runs (the threaded proxy runtime or the deterministic
//! synchronous chain used by simulations).  [`apply_to_proxy`] is the glue
//! for the threaded runtime.
//!
//! ## Example
//!
//! ```
//! use rapidware_raplets::{AdaptationEngine, FecResponder, LinkSample, LossRateObserver};
//! use rapidware_netsim::SimTime;
//!
//! let mut engine = AdaptationEngine::new();
//! engine.add_observer(Box::new(LossRateObserver::with_thresholds(0.02, 0.005)));
//! engine.add_responder(Box::new(FecResponder::paper_default()));
//!
//! // Clean link: no actions.
//! let calm = engine.ingest(&LinkSample::new(SimTime::from_secs(1), 1000, 999));
//! assert!(calm.is_empty());
//!
//! // Loss rises above 2%: the responder asks for an FEC encoder.
//! let stormy = engine.ingest(&LinkSample::new(SimTime::from_secs(2), 1000, 900));
//! assert!(!stormy.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
mod observer;
mod responder;
mod sample;

pub use engine::{
    apply_to_pooled_session, apply_to_proxy, apply_to_session, AdaptationEngine, AdaptationRecord,
};
pub use observer::{AdaptationEvent, LossRateObserver, Observer, ThroughputObserver};
pub use responder::{AdaptationAction, FecResponder, Responder, TranscoderResponder};
pub use sample::LinkSample;
