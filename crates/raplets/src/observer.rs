//! Observer raplets: turn raw link samples into adaptation events.

use std::collections::VecDeque;
use std::fmt;

use crate::sample::LinkSample;

/// An event raised by an observer when a monitored condition changes in a
/// way responders may need to act on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdaptationEvent {
    /// The smoothed loss rate crossed above the observer's high threshold.
    LossRoseAbove {
        /// The smoothed loss rate at the crossing.
        rate: f64,
        /// The threshold that was crossed.
        threshold: f64,
    },
    /// The smoothed loss rate fell back below the observer's low threshold.
    LossFellBelow {
        /// The smoothed loss rate at the crossing.
        rate: f64,
        /// The threshold that was crossed.
        threshold: f64,
    },
    /// Estimated link throughput fell below the observer's floor.
    ThroughputDropped {
        /// Estimated bits per second.
        bits_per_second: u64,
        /// The configured floor.
        floor_bps: u64,
    },
    /// Estimated link throughput recovered above the observer's floor.
    ThroughputRecovered {
        /// Estimated bits per second.
        bits_per_second: u64,
        /// The configured floor.
        floor_bps: u64,
    },
}

/// An observer raplet: consumes link samples, raises [`AdaptationEvent`]s.
pub trait Observer: Send + fmt::Debug {
    /// Short display name.
    fn name(&self) -> &str;

    /// Feeds one sample; returns any events this sample triggered.
    fn sample(&mut self, sample: &LinkSample) -> Vec<AdaptationEvent>;
}

/// Watches the packet loss rate with exponential smoothing and hysteresis.
///
/// Hysteresis (separate high and low thresholds) prevents the responder
/// from thrashing — repeatedly inserting and removing the FEC filter — when
/// the loss rate hovers near a single threshold, which matters because each
/// reconfiguration costs a pause/splice on the live stream.
#[derive(Debug, Clone)]
pub struct LossRateObserver {
    name: String,
    high_threshold: f64,
    low_threshold: f64,
    smoothing: f64,
    smoothed: Option<f64>,
    above: bool,
    window: VecDeque<f64>,
    window_len: usize,
}

impl LossRateObserver {
    /// Creates an observer with explicit thresholds (loss fractions in
    /// `[0, 1]`).  `high_threshold` must be at least `low_threshold`.
    ///
    /// Equal thresholds are allowed (no hysteresis band); even then a single
    /// sample raises at most one event, an estimate exactly on the shared
    /// threshold raises none, and rise/fall events strictly alternate.
    ///
    /// # Panics
    ///
    /// Panics if the thresholds are out of range or inverted.
    pub fn with_thresholds(high_threshold: f64, low_threshold: f64) -> Self {
        assert!((0.0..=1.0).contains(&high_threshold));
        assert!((0.0..=1.0).contains(&low_threshold));
        assert!(
            high_threshold >= low_threshold,
            "high threshold must be at least the low threshold"
        );
        Self {
            name: format!("loss-observer({high_threshold:.3}/{low_threshold:.3})"),
            high_threshold,
            low_threshold,
            smoothing: 0.5,
            smoothed: None,
            above: false,
            window: VecDeque::new(),
            window_len: 16,
        }
    }

    /// The paper's FEC scenario: insert FEC when loss exceeds 2 %, remove it
    /// again only when loss drops below 0.5 %.
    pub fn paper_default() -> Self {
        Self::with_thresholds(0.02, 0.005)
    }

    /// Adjusts the exponential smoothing factor (0 = frozen, 1 = no
    /// smoothing).
    ///
    /// # Panics
    ///
    /// Panics if `smoothing` is outside `(0, 1]`.
    #[must_use]
    pub fn with_smoothing(mut self, smoothing: f64) -> Self {
        assert!(smoothing > 0.0 && smoothing <= 1.0, "smoothing must be in (0, 1]");
        self.smoothing = smoothing;
        self
    }

    /// The current smoothed loss estimate (`None` before the first sample).
    pub fn smoothed_loss(&self) -> Option<f64> {
        self.smoothed
    }

    /// Whether the observer currently considers the link lossy.
    pub fn is_above(&self) -> bool {
        self.above
    }

    /// Evaluates the (at most one) threshold crossing for the new smoothed
    /// estimate and updates the lossy/clear state.
    ///
    /// The two crossings are mutually exclusive *by construction*: a rise is
    /// only possible while the observer is in the clear state and a fall only
    /// while it is in the lossy state, and whichever fires flips the state —
    /// so one sample can never emit both `LossRoseAbove` and `LossFellBelow`.
    /// This matters in the degenerate configuration `high == low`, where a
    /// naive pair of independent comparisons would raise both events for any
    /// estimate on the wrong side of the shared threshold and flood the
    /// responders with a reconfiguration storm.  Comparisons are strict in
    /// both directions, so an estimate sitting *exactly on* the shared
    /// threshold raises nothing at all.
    fn crossing(&mut self, smoothed: f64) -> Option<AdaptationEvent> {
        if !self.above && smoothed > self.high_threshold {
            self.above = true;
            Some(AdaptationEvent::LossRoseAbove {
                rate: smoothed,
                threshold: self.high_threshold,
            })
        } else if self.above && smoothed < self.low_threshold {
            self.above = false;
            Some(AdaptationEvent::LossFellBelow {
                rate: smoothed,
                threshold: self.low_threshold,
            })
        } else {
            None
        }
    }
}

impl Observer for LossRateObserver {
    fn name(&self) -> &str {
        &self.name
    }

    fn sample(&mut self, sample: &LinkSample) -> Vec<AdaptationEvent> {
        let raw = sample.loss_rate();
        let smoothed = match self.smoothed {
            Some(previous) => previous * (1.0 - self.smoothing) + raw * self.smoothing,
            None => raw,
        };
        self.smoothed = Some(smoothed);
        self.window.push_back(raw);
        while self.window.len() > self.window_len {
            self.window.pop_front();
        }
        self.crossing(smoothed).into_iter().collect()
    }
}

/// Watches delivered throughput against a floor, with hysteresis supplied by
/// a recovery margin.
#[derive(Debug, Clone)]
pub struct ThroughputObserver {
    name: String,
    floor_bps: u64,
    recovery_margin: f64,
    below: bool,
}

impl ThroughputObserver {
    /// Creates an observer that raises [`AdaptationEvent::ThroughputDropped`]
    /// when the sampled bandwidth falls below `floor_bps`, and
    /// [`AdaptationEvent::ThroughputRecovered`] once it exceeds the floor by
    /// 25 %.
    pub fn new(floor_bps: u64) -> Self {
        Self {
            name: format!("throughput-observer({floor_bps}bps)"),
            floor_bps,
            recovery_margin: 1.25,
            below: false,
        }
    }

    /// Whether the observer currently considers the link constrained.
    pub fn is_below(&self) -> bool {
        self.below
    }
}

impl Observer for ThroughputObserver {
    fn name(&self) -> &str {
        &self.name
    }

    fn sample(&mut self, sample: &LinkSample) -> Vec<AdaptationEvent> {
        // Prefer an explicit link-capacity estimate; fall back to the
        // throughput measured over the sample window.  Either source may be
        // absent (a zero-duration window yields no rate at all), in which
        // case the sample carries no throughput information and is skipped.
        let Some(bits_per_second) =
            sample.bandwidth_bps.or_else(|| sample.delivered_throughput_bps())
        else {
            return Vec::new();
        };
        let mut events = Vec::new();
        if !self.below && bits_per_second < self.floor_bps {
            self.below = true;
            events.push(AdaptationEvent::ThroughputDropped {
                bits_per_second,
                floor_bps: self.floor_bps,
            });
        } else if self.below
            && (bits_per_second as f64) > self.floor_bps as f64 * self.recovery_margin
        {
            self.below = false;
            events.push(AdaptationEvent::ThroughputRecovered {
                bits_per_second,
                floor_bps: self.floor_bps,
            });
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapidware_netsim::SimTime;

    fn sample(sent: u64, delivered: u64) -> LinkSample {
        LinkSample::new(SimTime::ZERO, sent, delivered)
    }

    #[test]
    fn loss_observer_raises_once_per_crossing() {
        let mut observer = LossRateObserver::with_thresholds(0.02, 0.005).with_smoothing(1.0);
        assert!(observer.sample(&sample(1000, 999)).is_empty());
        // Loss jumps to 10%: one event.
        let events = observer.sample(&sample(1000, 900));
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], AdaptationEvent::LossRoseAbove { .. }));
        assert!(observer.is_above());
        // Still lossy: no repeated events.
        assert!(observer.sample(&sample(1000, 920)).is_empty());
        // Loss between thresholds: hysteresis holds, no event.
        assert!(observer.sample(&sample(1000, 990)).is_empty());
        // Loss clears below the low threshold: one event.
        let events = observer.sample(&sample(1000, 1000));
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], AdaptationEvent::LossFellBelow { .. }));
        assert!(!observer.is_above());
    }

    #[test]
    fn loss_observer_smoothing_delays_reaction() {
        let mut observer = LossRateObserver::paper_default().with_smoothing(0.2);
        assert!(observer.sample(&sample(1000, 1000)).is_empty());
        // One noisy window of 4% loss is not enough with heavy smoothing.
        assert!(observer.sample(&sample(1000, 960)).is_empty());
        assert!(observer.smoothed_loss().unwrap() < 0.02);
        // Sustained loss eventually crosses.
        let mut fired = false;
        for _ in 0..10 {
            if !observer.sample(&sample(1000, 960)).is_empty() {
                fired = true;
                break;
            }
        }
        assert!(fired, "sustained loss must eventually raise the event");
    }

    #[test]
    #[should_panic(expected = "high threshold")]
    fn inverted_thresholds_panic() {
        let _ = LossRateObserver::with_thresholds(0.01, 0.05);
    }

    #[test]
    fn equal_thresholds_emit_at_most_one_event_per_sample() {
        // Degenerate hysteresis: high == low == 25% (0.25 is exactly
        // representable, so "exactly on the threshold" is meaningful).  A
        // sample must never yield both a rise and a fall, and a sample
        // exactly on the shared threshold must yield nothing.
        let mut observer = LossRateObserver::with_thresholds(0.25, 0.25).with_smoothing(1.0);
        // Exactly on the threshold from the clear state: no event.
        assert!(observer.sample(&sample(100, 75)).is_empty());
        assert!(!observer.is_above());
        // Above: exactly one rise.
        let events = observer.sample(&sample(100, 50));
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], AdaptationEvent::LossRoseAbove { .. }));
        // Exactly on the threshold from the lossy state: still no event.
        assert!(observer.sample(&sample(100, 75)).is_empty());
        assert!(observer.is_above());
        // Below: exactly one fall.
        let events = observer.sample(&sample(100, 100));
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], AdaptationEvent::LossFellBelow { .. }));
    }

    #[test]
    fn equal_thresholds_alternate_under_oscillation() {
        // An oscillating link with no hysteresis band thrashes as fast as
        // the samples come in, but the events still strictly alternate —
        // never two rises or two falls in a row, never two events at once.
        let mut observer = LossRateObserver::with_thresholds(0.05, 0.05).with_smoothing(1.0);
        let mut kinds = Vec::new();
        for round in 0..20 {
            let delivered = if round % 2 == 0 { 80 } else { 100 };
            let events = observer.sample(&sample(100, delivered));
            assert!(events.len() <= 1, "one sample, at most one event");
            kinds.extend(events);
        }
        assert_eq!(kinds.len(), 20);
        for pair in kinds.windows(2) {
            let alternates = matches!(
                (pair[0], pair[1]),
                (AdaptationEvent::LossRoseAbove { .. }, AdaptationEvent::LossFellBelow { .. })
                    | (AdaptationEvent::LossFellBelow { .. }, AdaptationEvent::LossRoseAbove { .. })
            );
            assert!(alternates, "events must strictly alternate: {pair:?}");
        }
    }

    #[test]
    fn throughput_observer_hysteresis() {
        let mut observer = ThroughputObserver::new(1_000_000);
        // Samples without bandwidth are ignored.
        assert!(observer.sample(&sample(10, 10)).is_empty());
        let low = sample(10, 10).with_bandwidth(500_000);
        let events = observer.sample(&low);
        assert!(matches!(events[0], AdaptationEvent::ThroughputDropped { .. }));
        assert!(observer.is_below());
        // Just above the floor is not enough to recover (hysteresis).
        let barely = sample(10, 10).with_bandwidth(1_100_000);
        assert!(observer.sample(&barely).is_empty());
        let healthy = sample(10, 10).with_bandwidth(2_000_000);
        let events = observer.sample(&healthy);
        assert!(matches!(
            events[0],
            AdaptationEvent::ThroughputRecovered { .. }
        ));
        assert!(!observer.is_below());
    }

    #[test]
    fn throughput_observer_falls_back_to_the_window_estimate() {
        let mut observer = ThroughputObserver::new(1_000_000);
        // 25_000 bytes over one second = 200_000 bps, well below the floor.
        let starved = LinkSample::new(SimTime::from_secs(3), 100, 100)
            .with_window(SimTime::from_secs(2), 25_000);
        let events = observer.sample(&starved);
        assert!(matches!(events[0], AdaptationEvent::ThroughputDropped { .. }));
        // A zero-duration window carries no rate: the sample is skipped and
        // the observer state is untouched (the zero-division guard at work).
        let now = SimTime::from_secs(4);
        let degenerate = LinkSample::new(now, 10, 10).with_window(now, 4_096);
        assert!(observer.sample(&degenerate).is_empty());
        assert!(observer.is_below());
        // An explicit capacity estimate wins over the window measurement.
        let recovered = LinkSample::new(SimTime::from_secs(5), 100, 100)
            .with_window(SimTime::from_secs(4), 25_000)
            .with_bandwidth(2_000_000);
        let events = observer.sample(&recovered);
        assert!(matches!(events[0], AdaptationEvent::ThroughputRecovered { .. }));
    }

    #[test]
    fn observer_names_are_descriptive() {
        assert!(LossRateObserver::paper_default().name().contains("loss"));
        assert!(ThroughputObserver::new(128_000).name().contains("128000"));
    }
}
