//! Property tests for observer hysteresis.
//!
//! The closed control loop relies on one invariant above all others: for any
//! sample sequence whatsoever, an observer's rise/fall events **strictly
//! alternate** — a rise is only ever followed by a fall and vice versa, and
//! no single sample produces more than one event.  If this breaks, a
//! responder can receive two `Insert`s without an intervening `Remove` (or
//! the reverse) and the proxy chain drifts out of sync with the raplet's
//! idea of what is installed.

use proptest::prelude::*;
use rapidware_netsim::SimTime;
use rapidware_raplets::{
    AdaptationEvent, LinkSample, LossRateObserver, Observer, ThroughputObserver,
};

/// Classifies loss events as +1 (rise) / -1 (fall) for alternation checks.
fn loss_polarity(event: &AdaptationEvent) -> Option<i8> {
    match event {
        AdaptationEvent::LossRoseAbove { .. } => Some(1),
        AdaptationEvent::LossFellBelow { .. } => Some(-1),
        _ => None,
    }
}

/// Classifies throughput events as -1 (drop) / +1 (recovery).
fn throughput_polarity(event: &AdaptationEvent) -> Option<i8> {
    match event {
        AdaptationEvent::ThroughputDropped { .. } => Some(-1),
        AdaptationEvent::ThroughputRecovered { .. } => Some(1),
        _ => None,
    }
}

/// Asserts the alternation invariant over a polarity sequence: the first
/// element (if any) is `first`, and consecutive elements always differ.
fn assert_alternates(polarities: &[i8], first: i8, context: &str) {
    if let Some(&head) = polarities.first() {
        assert_eq!(head, first, "{context}: first event has the wrong polarity");
    }
    for pair in polarities.windows(2) {
        assert_ne!(
            pair[0], pair[1],
            "{context}: two consecutive events with the same polarity"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any sample sequence yields strictly alternating rise/fall events,
    /// at most one event per sample, starting with a rise — across normal,
    /// tight, and fully degenerate (equal) threshold pairs and the whole
    /// smoothing range.
    #[test]
    fn loss_events_strictly_alternate(
        thresholds in prop_oneof![
            Just((0.02, 0.005)),      // the paper's hysteresis band
            Just((0.05, 0.05)),       // degenerate: no band at all
            Just((0.10, 0.09)),       // nearly degenerate
            Just((0.5, 0.1)),         // wide band
        ],
        smoothing_pct in 1u64..=100,
        deliveries in proptest::collection::vec((1u64..400, 0u64..=400), 1..120),
    ) {
        let (high, low) = thresholds;
        let mut observer =
            LossRateObserver::with_thresholds(high, low).with_smoothing(smoothing_pct as f64 / 100.0);
        let mut polarities = Vec::new();
        for (step, (sent, delivered)) in deliveries.iter().enumerate() {
            let sample = LinkSample::new(
                SimTime::from_millis(step as u64 * 200),
                *sent,
                (*delivered).min(*sent),
            );
            let events = observer.sample(&sample);
            prop_assert!(events.len() <= 1, "one sample raised {} events", events.len());
            for event in &events {
                let polarity = loss_polarity(event);
                prop_assert!(polarity.is_some(), "loss observer raised a non-loss event");
                polarities.extend(polarity);
            }
            // The observer's public state always matches the last event.
            if let Some(&last) = polarities.last() {
                prop_assert_eq!(observer.is_above(), last == 1);
            }
        }
        assert_alternates(&polarities, 1, "loss observer");
    }

    /// The throughput observer obeys the same alternation law: drops and
    /// recoveries strictly alternate, starting with a drop, regardless of
    /// the bandwidth sequence (including samples with no bandwidth at all).
    #[test]
    fn throughput_events_strictly_alternate(
        floor_kbps in 1u64..5_000,
        bandwidths in proptest::collection::vec(0u64..10_000_000, 1..120),
        gaps in proptest::collection::vec(any::<bool>(), 1..120),
    ) {
        let mut observer = ThroughputObserver::new(floor_kbps * 1_000);
        let mut polarities = Vec::new();
        for (step, bandwidth) in bandwidths.iter().enumerate() {
            let mut sample = LinkSample::new(SimTime::from_millis(step as u64 * 200), 10, 10);
            // Some windows carry no bandwidth estimate (e.g. a zero-duration
            // window was guarded out); those must be ignored, not treated as
            // zero throughput.
            let has_estimate = gaps.get(step).copied().unwrap_or(true);
            if has_estimate {
                sample = sample.with_bandwidth(*bandwidth);
            }
            let events = observer.sample(&sample);
            prop_assert!(events.len() <= 1);
            if !has_estimate {
                prop_assert!(events.is_empty(), "a sample without bandwidth raised an event");
            }
            for event in &events {
                let polarity = throughput_polarity(event);
                prop_assert!(polarity.is_some(), "throughput observer raised a non-throughput event");
                polarities.extend(polarity);
            }
        }
        assert_alternates(&polarities, -1, "throughput observer");
    }
}
