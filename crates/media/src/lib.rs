//! # rapidware-media — synthetic media workloads
//!
//! The paper's experiments transmit a live PCM audio stream ("8000 samples
//! per second for two 8-bit/sample stereo channels", recorded as a `.WAV`
//! file) through the proxy, and motivate frame-aware filters with MPEG-style
//! video streams whose I/B/P frames have different importance.  This crate
//! generates equivalent *synthetic* workloads: the proxy and FEC machinery
//! only care about packet sizes, rates, timestamps, and frame structure, not
//! about the actual audio content, so a deterministic generator exercises
//! exactly the same code paths as a live capture.
//!
//! * [`AudioSource`] — packetised PCM audio with the paper's parameters as
//!   the default ([`AudioConfig::pcm_8khz_stereo_8bit`]).
//! * [`VideoSource`] — an MPEG-like group-of-pictures generator producing
//!   I/P/B frames split across packets, with frame boundaries marked so
//!   filters can be inserted at the right points.
//! * [`MediaSink`] — a measurement sink that tracks receipt, gaps, and
//!   playout continuity at a receiver.
//!
//! ## Example
//!
//! ```
//! use rapidware_media::{AudioConfig, AudioSource};
//! use rapidware_packet::StreamId;
//!
//! // The paper's workload: 8 kHz stereo 8-bit PCM, packetised.
//! let config = AudioConfig::pcm_8khz_stereo_8bit();
//! let mut source = AudioSource::new(StreamId::new(1), config);
//! let first = source.next_packet();
//! let second = source.next_packet();
//! assert_eq!(first.seq().value(), 0);
//! assert_eq!(first.payload_len(), config.bytes_per_packet());
//! // Timestamps advance by the packet interval: a live stream, not a file.
//! assert_eq!(
//!     second.timestamp_us() - first.timestamp_us(),
//!     config.packet_interval_us(),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod audio;
mod sink;
mod video;

pub use audio::{AudioConfig, AudioSource};
pub use sink::{MediaSink, PlayoutReport};
pub use video::{GopPattern, VideoConfig, VideoSource};
