//! Measurement sink for media streams at a receiver.

use std::collections::BTreeSet;

use rapidware_packet::{Packet, SeqNo};

/// Collects delivered packets and summarises playout quality.
///
/// The sink is deliberately simple: it answers the questions the paper's
/// evaluation asks of a receiver — how many packets arrived, how many were
/// recovered, how many gaps the playout had — without trying to model a
/// full audio decoder.
#[derive(Debug, Default)]
pub struct MediaSink {
    received: BTreeSet<u64>,
    recovered: BTreeSet<u64>,
    bytes: u64,
    duplicates: u64,
    corrupted: u64,
}

/// Summary of what a [`MediaSink`] observed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlayoutReport {
    /// Number of distinct packets that arrived over the network.
    pub received: u64,
    /// Number of additional packets recovered by FEC.
    pub recovered: u64,
    /// Total payload bytes accepted.
    pub bytes: u64,
    /// Duplicate deliveries discarded.
    pub duplicates: u64,
    /// Packets rejected as corrupted.
    pub corrupted: u64,
    /// Number of distinct playout gaps (maximal runs of missing sequence
    /// numbers) over the observed range.
    pub gaps: u64,
    /// Total missing packets over the observed range.
    pub missing: u64,
    /// Fraction of the observed sequence range that is playable (0–1).
    pub continuity: f64,
}

impl MediaSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a packet that arrived over the network.
    pub fn deliver(&mut self, packet: &Packet) {
        self.accept(packet, false);
    }

    /// Records a packet that was reconstructed by the FEC decoder.
    pub fn deliver_recovered(&mut self, packet: &Packet) {
        self.accept(packet, true);
    }

    /// Records that a packet failed validation (e.g. checksum mismatch).
    pub fn reject_corrupted(&mut self) {
        self.corrupted += 1;
    }

    fn accept(&mut self, packet: &Packet, recovered: bool) {
        let seq = packet.seq().value();
        if self.received.contains(&seq) || self.recovered.contains(&seq) {
            self.duplicates += 1;
            return;
        }
        if recovered {
            self.recovered.insert(seq);
        } else {
            self.received.insert(seq);
        }
        self.bytes += packet.payload_len() as u64;
    }

    /// Returns `true` if the packet with this sequence number is available
    /// for playout (received or recovered).
    pub fn has(&self, seq: SeqNo) -> bool {
        self.received.contains(&seq.value()) || self.recovered.contains(&seq.value())
    }

    /// Number of distinct packets accepted so far.
    pub fn accepted(&self) -> u64 {
        (self.received.len() + self.recovered.len()) as u64
    }

    /// Builds a playout report over the sequence range `[0, expected)`.
    pub fn report(&self, expected: u64) -> PlayoutReport {
        let mut missing = 0u64;
        let mut gaps = 0u64;
        let mut in_gap = false;
        for seq in 0..expected {
            let present = self.received.contains(&seq) || self.recovered.contains(&seq);
            if present {
                in_gap = false;
            } else {
                missing += 1;
                if !in_gap {
                    gaps += 1;
                }
                in_gap = true;
            }
        }
        let continuity = if expected == 0 {
            1.0
        } else {
            (expected - missing) as f64 / expected as f64
        };
        PlayoutReport {
            received: self.received.len() as u64,
            recovered: self.recovered.len() as u64,
            bytes: self.bytes,
            duplicates: self.duplicates,
            corrupted: self.corrupted,
            gaps,
            missing,
            continuity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapidware_packet::{PacketKind, StreamId};

    fn packet(seq: u64) -> Packet {
        Packet::new(
            StreamId::new(1),
            SeqNo::new(seq),
            PacketKind::AudioData,
            vec![0u8; 100],
        )
    }

    #[test]
    fn counts_received_and_recovered_separately() {
        let mut sink = MediaSink::new();
        sink.deliver(&packet(0));
        sink.deliver(&packet(1));
        sink.deliver_recovered(&packet(2));
        let report = sink.report(3);
        assert_eq!(report.received, 2);
        assert_eq!(report.recovered, 1);
        assert_eq!(report.missing, 0);
        assert_eq!(report.gaps, 0);
        assert_eq!(report.bytes, 300);
        assert!((report.continuity - 1.0).abs() < 1e-12);
        assert!(sink.has(SeqNo::new(2)));
        assert_eq!(sink.accepted(), 3);
    }

    #[test]
    fn duplicates_are_discarded() {
        let mut sink = MediaSink::new();
        sink.deliver(&packet(0));
        sink.deliver(&packet(0));
        sink.deliver_recovered(&packet(0));
        let report = sink.report(1);
        assert_eq!(report.received, 1);
        assert_eq!(report.recovered, 0);
        assert_eq!(report.duplicates, 2);
        assert_eq!(report.bytes, 100);
    }

    #[test]
    fn gaps_and_missing_are_counted() {
        let mut sink = MediaSink::new();
        for seq in [0u64, 1, 4, 5, 9] {
            sink.deliver(&packet(seq));
        }
        let report = sink.report(10);
        // Missing: 2,3 (one gap), 6,7,8 (one gap) = 5 missing, 2 gaps.
        assert_eq!(report.missing, 5);
        assert_eq!(report.gaps, 2);
        assert!((report.continuity - 0.5).abs() < 1e-12);
    }

    #[test]
    fn corrupted_packets_are_tracked() {
        let mut sink = MediaSink::new();
        sink.reject_corrupted();
        sink.reject_corrupted();
        assert_eq!(sink.report(0).corrupted, 2);
        assert!((sink.report(0).continuity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_clean() {
        let sink = MediaSink::new();
        let report = sink.report(0);
        assert_eq!(report.received, 0);
        assert_eq!(report.missing, 0);
        assert!((report.continuity - 1.0).abs() < 1e-12);
    }
}
