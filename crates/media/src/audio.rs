//! Synthetic PCM audio source.

use rapidware_packet::{Packet, PacketKind, SeqNo, StreamId};

/// Parameters of a PCM audio stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AudioConfig {
    /// Samples per second per channel.
    pub sample_rate_hz: u32,
    /// Number of channels.
    pub channels: u8,
    /// Bits per sample (8 or 16).
    pub bits_per_sample: u8,
    /// Duration of audio carried by one packet, in milliseconds.
    pub packet_duration_ms: u32,
}

impl AudioConfig {
    /// The paper's recording format: 8000 samples per second, two channels,
    /// 8 bits per sample, packetised into 20 ms packets (320 bytes each,
    /// 50 packets per second).
    pub fn pcm_8khz_stereo_8bit() -> Self {
        Self {
            sample_rate_hz: 8_000,
            channels: 2,
            bits_per_sample: 8,
            packet_duration_ms: 20,
        }
    }

    /// Telephone-quality mono audio (8 kHz, 1 channel, 8 bit).
    pub fn pcm_8khz_mono_8bit() -> Self {
        Self {
            sample_rate_hz: 8_000,
            channels: 1,
            bits_per_sample: 8,
            packet_duration_ms: 20,
        }
    }

    /// CD-quality audio (44.1 kHz, 2 channels, 16 bit), used by ablation
    /// experiments that stress the proxy with a higher bit-rate.
    pub fn pcm_44khz_stereo_16bit() -> Self {
        Self {
            sample_rate_hz: 44_100,
            channels: 2,
            bits_per_sample: 16,
            packet_duration_ms: 20,
        }
    }

    /// Bytes of PCM data in one packet.
    pub fn bytes_per_packet(&self) -> usize {
        let samples = (self.sample_rate_hz as usize * self.packet_duration_ms as usize) / 1_000;
        samples * self.channels as usize * (self.bits_per_sample as usize / 8)
    }

    /// Packets generated per second.
    pub fn packets_per_second(&self) -> f64 {
        1_000.0 / self.packet_duration_ms as f64
    }

    /// Stream bit-rate in bits per second (payload only).
    pub fn bitrate_bps(&self) -> u64 {
        self.sample_rate_hz as u64 * self.channels as u64 * self.bits_per_sample as u64
    }

    /// Microseconds of audio per packet.
    pub fn packet_interval_us(&self) -> u64 {
        self.packet_duration_ms as u64 * 1_000
    }
}

/// A deterministic generator of PCM audio packets.
///
/// The payload is a synthetic waveform (a pair of interfering sine-like
/// integer oscillators), so runs are reproducible and payload corruption is
/// detectable in tests, but the sizes, rates, and timestamps match a real
/// capture with the same [`AudioConfig`].
#[derive(Debug, Clone)]
pub struct AudioSource {
    config: AudioConfig,
    stream: StreamId,
    next_seq: SeqNo,
    phase: u64,
}

impl AudioSource {
    /// Creates a source for the given stream with the given configuration.
    pub fn new(stream: StreamId, config: AudioConfig) -> Self {
        Self {
            config,
            stream,
            next_seq: SeqNo::ZERO,
            phase: 0,
        }
    }

    /// Creates the paper's default source (8 kHz stereo 8-bit, 20 ms packets).
    pub fn pcm_default(stream: StreamId) -> Self {
        Self::new(stream, AudioConfig::pcm_8khz_stereo_8bit())
    }

    /// The audio configuration.
    pub fn config(&self) -> &AudioConfig {
        &self.config
    }

    /// Sequence number of the next packet that will be produced.
    pub fn next_seq(&self) -> SeqNo {
        self.next_seq
    }

    /// Produces the next audio packet.
    pub fn next_packet(&mut self) -> Packet {
        let seq = self.next_seq;
        self.next_seq = seq.next();
        let len = self.config.bytes_per_packet();
        let mut payload = Vec::with_capacity(len);
        for i in 0..len {
            let t = self.phase + i as u64;
            // Two incommensurate "oscillators" summed and wrapped: cheap,
            // deterministic, non-repeating content.
            let sample = ((t * 37) % 251) as u8 ^ ((t * 11) % 241) as u8;
            payload.push(sample);
        }
        self.phase += len as u64;
        let timestamp_us = seq.value() * self.config.packet_interval_us();
        Packet::with_timestamp(self.stream, seq, PacketKind::AudioData, timestamp_us, payload)
    }

    /// Produces the next `count` packets.
    pub fn take_packets(&mut self, count: usize) -> Vec<Packet> {
        (0..count).map(|_| self.next_packet()).collect()
    }

    /// Number of packets that cover `seconds` of audio.
    pub fn packets_for_duration(&self, seconds: f64) -> usize {
        (seconds * self.config.packets_per_second()).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_produces_320_byte_packets_at_50_hz() {
        let config = AudioConfig::pcm_8khz_stereo_8bit();
        assert_eq!(config.bytes_per_packet(), 320);
        assert_eq!(config.packets_per_second(), 50.0);
        assert_eq!(config.bitrate_bps(), 128_000);
        assert_eq!(config.packet_interval_us(), 20_000);
    }

    #[test]
    fn cd_quality_config_is_bigger() {
        let config = AudioConfig::pcm_44khz_stereo_16bit();
        assert_eq!(config.bytes_per_packet(), 3_528);
        assert_eq!(config.bitrate_bps(), 1_411_200);
    }

    #[test]
    fn packets_have_monotone_seq_and_timestamps() {
        let mut source = AudioSource::pcm_default(StreamId::new(1));
        let packets = source.take_packets(10);
        for (i, packet) in packets.iter().enumerate() {
            assert_eq!(packet.seq().value(), i as u64);
            assert_eq!(packet.timestamp_us(), i as u64 * 20_000);
            assert_eq!(packet.kind(), PacketKind::AudioData);
            assert_eq!(packet.payload_len(), 320);
            assert_eq!(packet.stream(), StreamId::new(1));
        }
        assert_eq!(source.next_seq().value(), 10);
    }

    #[test]
    fn payload_content_is_deterministic_and_nonconstant() {
        let mut a = AudioSource::pcm_default(StreamId::new(1));
        let mut b = AudioSource::pcm_default(StreamId::new(1));
        let pa = a.next_packet();
        let pb = b.next_packet();
        assert_eq!(pa.payload(), pb.payload());
        // Not all bytes equal (so corruption is detectable).
        assert!(pa.payload().iter().any(|&v| v != pa.payload()[0]));
        // Successive packets differ.
        assert_ne!(a.next_packet().payload(), pa.payload());
    }

    #[test]
    fn packets_for_duration_matches_rate() {
        let source = AudioSource::pcm_default(StreamId::new(1));
        assert_eq!(source.packets_for_duration(1.0), 50);
        assert_eq!(source.packets_for_duration(103.68), 5184);
        assert_eq!(source.packets_for_duration(0.0), 0);
    }
}
