//! Synthetic MPEG-like video source.
//!
//! The paper's motivating example for frame-aware filter insertion is a live
//! video stream whose FEC filter "places more redundancy in I frames than in
//! B frames" and must be started "at a frame boundary in the stream".  This
//! source produces a group-of-pictures (GoP) structure with I, P, and B
//! frames of different sizes, split into MTU-sized packets whose headers
//! carry the frame type and a boundary flag on the first packet of each
//! frame.

use rapidware_packet::{FrameType, Packet, PacketKind, SeqNo, StreamId};

/// The frame-type pattern of one group of pictures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GopPattern {
    frames: Vec<FrameType>,
}

impl GopPattern {
    /// Creates a pattern from an explicit frame sequence.
    ///
    /// # Panics
    ///
    /// Panics if the pattern is empty or does not start with an I frame.
    pub fn new(frames: Vec<FrameType>) -> Self {
        assert!(!frames.is_empty(), "GoP pattern must not be empty");
        assert_eq!(frames[0], FrameType::I, "GoP pattern must start with an I frame");
        Self { frames }
    }

    /// The classic IBBPBBPBB pattern (9-frame GoP).
    pub fn ibbpbbpbb() -> Self {
        use FrameType::{B, I, P};
        Self::new(vec![I, B, B, P, B, B, P, B, B])
    }

    /// An all-I pattern (e.g. motion-JPEG style), used when every frame must
    /// be independently decodable.
    pub fn all_i(len: usize) -> Self {
        assert!(len > 0, "GoP pattern must not be empty");
        Self::new(vec![FrameType::I; len])
    }

    /// Frames per GoP.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Returns `true` if the pattern is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Frame type at position `index % len`.
    pub fn frame_at(&self, index: usize) -> FrameType {
        self.frames[index % self.frames.len()]
    }
}

/// Parameters of a synthetic video stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VideoConfig {
    /// Frames per second.
    pub fps: u32,
    /// GoP pattern.
    pub gop: GopPattern,
    /// Size of an I frame in bytes.
    pub i_frame_bytes: usize,
    /// Size of a P frame in bytes.
    pub p_frame_bytes: usize,
    /// Size of a B frame in bytes.
    pub b_frame_bytes: usize,
    /// Maximum packet payload size.
    pub mtu: usize,
}

impl VideoConfig {
    /// A low-bitrate conference-style stream suitable for a 2 Mbps WLAN:
    /// 15 fps, IBBPBBPBB, ~64 kB/s.
    pub fn conference_quality() -> Self {
        Self {
            fps: 15,
            gop: GopPattern::ibbpbbpbb(),
            i_frame_bytes: 12_000,
            p_frame_bytes: 4_000,
            b_frame_bytes: 1_500,
            mtu: 1_400,
        }
    }

    /// Average bytes per GoP.
    pub fn bytes_per_gop(&self) -> usize {
        (0..self.gop.len())
            .map(|i| self.frame_bytes(self.gop.frame_at(i)))
            .sum()
    }

    /// Size of a frame of the given type.
    pub fn frame_bytes(&self, frame: FrameType) -> usize {
        match frame {
            FrameType::I => self.i_frame_bytes,
            FrameType::P => self.p_frame_bytes,
            FrameType::B => self.b_frame_bytes,
        }
    }

    /// Average stream bit-rate in bits per second.
    pub fn bitrate_bps(&self) -> u64 {
        let gops_per_second = self.fps as f64 / self.gop.len() as f64;
        (self.bytes_per_gop() as f64 * 8.0 * gops_per_second) as u64
    }
}

/// A deterministic generator of video packets.
#[derive(Debug, Clone)]
pub struct VideoSource {
    config: VideoConfig,
    stream: StreamId,
    next_seq: SeqNo,
    frame_index: u64,
}

impl VideoSource {
    /// Creates a source for the given stream.
    pub fn new(stream: StreamId, config: VideoConfig) -> Self {
        Self {
            config,
            stream,
            next_seq: SeqNo::ZERO,
            frame_index: 0,
        }
    }

    /// The video configuration.
    pub fn config(&self) -> &VideoConfig {
        &self.config
    }

    /// Index of the next frame that will be produced.
    pub fn frame_index(&self) -> u64 {
        self.frame_index
    }

    /// Produces the packets of the next frame.  The first packet of the
    /// frame carries `boundary = true`.
    pub fn next_frame(&mut self) -> Vec<Packet> {
        let frame_type = self.config.gop.frame_at(self.frame_index as usize);
        let frame_bytes = self.config.frame_bytes(frame_type);
        let timestamp_us = self.frame_index * 1_000_000 / self.config.fps as u64;
        let mut packets = Vec::new();
        let mut offset = 0usize;
        let mut first = true;
        while offset < frame_bytes {
            let chunk = (frame_bytes - offset).min(self.config.mtu);
            let payload: Vec<u8> = (0..chunk)
                .map(|i| {
                    let t = self.frame_index * 131 + (offset + i) as u64;
                    ((t * 29 + 17) % 253) as u8
                })
                .collect();
            let seq = self.next_seq;
            self.next_seq = seq.next();
            packets.push(Packet::with_timestamp(
                self.stream,
                seq,
                PacketKind::VideoFrame {
                    frame: frame_type,
                    boundary: first,
                },
                timestamp_us,
                payload,
            ));
            first = false;
            offset += chunk;
        }
        self.frame_index += 1;
        packets
    }

    /// Produces all packets for the next `count` frames, flattened.
    pub fn take_frames(&mut self, count: usize) -> Vec<Packet> {
        (0..count).flat_map(|_| self.next_frame()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gop_pattern_cycles() {
        let gop = GopPattern::ibbpbbpbb();
        assert_eq!(gop.len(), 9);
        assert!(!gop.is_empty());
        assert_eq!(gop.frame_at(0), FrameType::I);
        assert_eq!(gop.frame_at(3), FrameType::P);
        assert_eq!(gop.frame_at(9), FrameType::I); // wraps
        assert_eq!(gop.frame_at(10), FrameType::B);
    }

    #[test]
    #[should_panic(expected = "start with an I frame")]
    fn gop_must_start_with_i() {
        let _ = GopPattern::new(vec![FrameType::B]);
    }

    #[test]
    fn all_i_pattern() {
        let gop = GopPattern::all_i(4);
        for i in 0..8 {
            assert_eq!(gop.frame_at(i), FrameType::I);
        }
    }

    #[test]
    fn config_rates() {
        let config = VideoConfig::conference_quality();
        assert_eq!(config.bytes_per_gop(), 12_000 + 2 * 4_000 + 6 * 1_500);
        assert!(config.bitrate_bps() > 300_000);
        assert_eq!(config.frame_bytes(FrameType::I), 12_000);
    }

    #[test]
    fn frames_are_split_at_the_mtu_with_one_boundary() {
        let mut source = VideoSource::new(StreamId::new(5), VideoConfig::conference_quality());
        let frame = source.next_frame();
        // 12000-byte I frame with a 1400-byte MTU = 9 packets.
        assert_eq!(frame.len(), 9);
        let boundaries = frame.iter().filter(|p| p.is_insertion_boundary()).count();
        assert_eq!(boundaries, 1);
        assert!(frame[0].is_insertion_boundary());
        let total: usize = frame.iter().map(Packet::payload_len).sum();
        assert_eq!(total, 12_000);
        match frame[0].kind() {
            PacketKind::VideoFrame { frame, boundary } => {
                assert_eq!(frame, FrameType::I);
                assert!(boundary);
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn sequence_numbers_are_continuous_across_frames() {
        let mut source = VideoSource::new(StreamId::new(5), VideoConfig::conference_quality());
        let packets = source.take_frames(9); // one full GoP
        for (i, packet) in packets.iter().enumerate() {
            assert_eq!(packet.seq().value(), i as u64);
        }
        assert_eq!(source.frame_index(), 9);
        // Frame type mix matches the GoP pattern: exactly one I frame worth
        // of boundary-I packets.
        let i_boundaries = packets
            .iter()
            .filter(|p| {
                matches!(
                    p.kind(),
                    PacketKind::VideoFrame {
                        frame: FrameType::I,
                        boundary: true
                    }
                )
            })
            .count();
        assert_eq!(i_boundaries, 1);
    }

    #[test]
    fn timestamps_follow_frame_rate() {
        let mut source = VideoSource::new(StreamId::new(5), VideoConfig::conference_quality());
        let first = source.next_frame();
        let second = source.next_frame();
        assert_eq!(first[0].timestamp_us(), 0);
        assert_eq!(second[0].timestamp_us(), 1_000_000 / 15);
    }
}
