//! The multicast-tree soak: a **thousand receivers** behind one source,
//! crossing the three subsystems the repo grew separately — fanout
//! sessions, the sharded pooled runtime, and real UDP — in one bounded
//! test.
//!
//! ```text
//!   source ─▶ root session (10 branch lanes)      ── pooled runtime
//!                │ … per branch …
//!                ▼
//!        UDP bridge (loopback socket hop)          ── transport
//!                ▼
//!        tier-2 session (100 leaf lanes)           ── pooled runtime
//!                ▼
//!        10 × 100 = 1000 leaf receivers
//! ```
//!
//! The claims, all inside one watchdog:
//!
//! * every one of the 1000 leaves receives **every** source packet, in
//!   order (the tree is lossless end to end, across two fanout hops and a
//!   real socket hop);
//! * per-leaf conservation holds from independent counters
//!   (`sent == delivered + lost + undelivered` with `lost == 0`);
//! * the whole tree — 1 root + 10 tier-2 sessions, 1010 lanes, ~1030 pool
//!   tasks — runs on **one** fixed 4-worker runtime, and shuts down with
//!   **zero** leaked tasks.

mod common;

use std::net::UdpSocket;
use std::sync::Arc;
use std::time::Duration;

use rapidware::runtime::{Runtime, RuntimeConfig};
use rapidware::streams::TryRecvError;
use rapidware::transport::{fin_packet, UdpConfig, UdpIngress};

use common::{assert_conservation, audio_packet, send_encoded, watchdog};

const BRANCHES: usize = 10;
const LEAVES_PER_BRANCH: usize = 100; // 10 × 100 = 1000 receivers
const PACKETS: u64 = 200;
const BATCH_SIZE: usize = 16;
const TREE_WALL_CLOCK: Duration = Duration::from_secs(240);

#[test]
fn a_thousand_leaf_multicast_tree_delivers_everything_over_udp_bridges() {
    watchdog("multicast-tree-soak", TREE_WALL_CLOCK, || {
        let runtime = Runtime::start(RuntimeConfig::new(4, BATCH_SIZE));

        // Tier 2 first: each branch gets its own UDP ingress, a pooled
        // session fed from it, and 100 leaf lanes.
        let config = UdpConfig::default();
        let mut tier2 = Vec::with_capacity(BRANCHES);
        let mut pumps = Vec::with_capacity(BRANCHES);
        let mut bridge_addrs = Vec::with_capacity(BRANCHES);
        for branch in 0..BRANCHES {
            let ingress = UdpIngress::bind("127.0.0.1:0", &config).unwrap();
            bridge_addrs.push(ingress.local_addr());
            let session = Arc::new(runtime.add_session(format!("tier2-{branch}")));
            let leaves: Vec<_> = (0..LEAVES_PER_BRANCH)
                .map(|leaf| {
                    let name = format!("leaf-{leaf}");
                    let rx = session.add_lane(&name).expect("fresh tier-2 session");
                    (name, rx)
                })
                .collect();
            // The ingress pump: datagrams from the branch bridge become the
            // tier-2 session's source stream; the bridge's FIN closes it.
            let pump = {
                let session = Arc::clone(&session);
                let rx = ingress.receiver();
                std::thread::spawn(move || {
                    let input = session.input();
                    while let Ok(packet) = rx.recv() {
                        input.send(packet).expect("tier-2 input stays open");
                    }
                    session.close_input();
                })
            };
            pumps.push(pump);
            tier2.push((session, leaves, ingress));
        }

        // The root: one pooled session whose 10 branch lanes each feed a
        // UDP bridge to a tier-2 ingress.
        let root = runtime.add_session("root");
        let mut bridges = Vec::with_capacity(BRANCHES);
        for (branch, peer) in bridge_addrs.iter().copied().enumerate() {
            let rx = root.add_lane(format!("branch-{branch}")).expect("fresh root session");
            bridges.push(std::thread::spawn(move || {
                let socket = UdpSocket::bind("127.0.0.1:0").unwrap();
                let mut relayed = 0u64;
                while let Ok(packet) = rx.recv() {
                    send_encoded(&socket, peer, &packet);
                    relayed += 1;
                }
                // Lane EOF: tell the far ingress the stream is over.
                send_encoded(&socket, peer, &fin_packet());
                relayed
            }));
        }

        // Leaf collectors: one thread per branch sweeps its 100 leaf
        // endpoints non-blockingly until every one reports EOF, checking
        // order as it goes.
        let collectors: Vec<_> = tier2
            .iter()
            .map(|(_, leaves, _)| {
                let endpoints: Vec<_> =
                    leaves.iter().map(|(name, rx)| (name.clone(), rx.clone())).collect();
                std::thread::spawn(move || {
                    let mut delivered = vec![0u64; endpoints.len()];
                    let mut next_expected = vec![0u64; endpoints.len()];
                    let mut open = vec![true; endpoints.len()];
                    let mut remaining = endpoints.len();
                    while remaining > 0 {
                        let mut progressed = false;
                        for (index, (name, rx)) in endpoints.iter().enumerate() {
                            if !open[index] {
                                continue;
                            }
                            loop {
                                match rx.try_recv_up_to(BATCH_SIZE) {
                                    Ok(batch) => {
                                        for packet in &batch {
                                            assert_eq!(
                                                packet.seq().value(),
                                                next_expected[index],
                                                "{name}: leaf delivered out of order"
                                            );
                                            next_expected[index] += 1;
                                        }
                                        delivered[index] += batch.len() as u64;
                                        progressed = true;
                                    }
                                    Err(TryRecvError::Empty) => break,
                                    Err(_) => {
                                        open[index] = false;
                                        remaining -= 1;
                                        break;
                                    }
                                }
                            }
                        }
                        if !progressed {
                            std::thread::yield_now();
                        }
                    }
                    delivered
                })
            })
            .collect();

        // Drive the source and end the stream.
        let input = root.input();
        for seq in 0..PACKETS {
            input.send(audio_packet(seq, 64)).expect("root input stays open");
        }
        root.close_input();

        // Every branch bridge must have relayed the full stream.
        for (branch, bridge) in bridges.into_iter().enumerate() {
            let relayed = bridge.join().expect("bridge thread must not panic");
            assert_eq!(relayed, PACKETS, "branch {branch}: the UDP bridge lost traffic");
        }
        for pump in pumps {
            pump.join().expect("ingress pump must not panic");
        }

        // Every leaf, in every branch: full delivery and conservation.
        let mut total_delivered = 0u64;
        for ((session, leaves, ingress), collector) in tier2.iter().zip(collectors) {
            let delivered = collector.join().expect("collector must not panic");
            for ((name, rx), count) in leaves.iter().zip(delivered) {
                assert_eq!(
                    count,
                    PACKETS,
                    "{}/{name}: a leaf missed part of the stream",
                    session.name()
                );
                let stats = session.lane_stats(name).expect("leaf stats");
                assert_conservation(
                    &format!("{}/{name}", session.name()),
                    stats.packets_in,
                    count,
                    stats.packets_in - stats.packets_out,
                    rx.available() as u64,
                );
                assert_eq!(stats.packets_in - stats.packets_out, 0, "lossless tree");
                total_delivered += count;
            }
            assert_eq!(ingress.stats().rx_packets(), PACKETS, "bridge hop dropped datagrams");
        }
        assert_eq!(
            total_delivered,
            PACKETS * (BRANCHES * LEAVES_PER_BRANCH) as u64,
            "1000 leaves × {PACKETS} packets"
        );

        // Teardown: the whole tree folds back into an empty pool.
        root.shutdown().expect("root session shuts down cleanly");
        for (session, _, _) in &tier2 {
            session.shutdown().expect("tier-2 session shuts down cleanly");
        }
        assert_eq!(runtime.live_tasks(), 0, "the multicast tree leaked pool tasks");
        runtime.shutdown().expect("worker pool joins cleanly");
    });
}
