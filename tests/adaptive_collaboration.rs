//! Cross-crate integration test: raplets + proxy + Pavilion session +
//! network simulator working together (the RAPIDware picture of Figure 2).

use rapidware::netsim::{DistanceLossModel, LinearWalk, SimTime, WirelessLan};
use rapidware::pavilion::{BrowsingWorkload, CollaborativeSession, DeviceProfile, ResourceCache};
use rapidware::prelude::*;
use rapidware::raplets::apply_to_proxy;

#[test]
fn session_members_get_proxies_matching_their_devices() {
    let mut session = CollaborativeSession::new("integration");
    session.join("workstation", DeviceProfile::workstation());
    let laptop = session.join("laptop", DeviceProfile::wireless_laptop());
    let palmtop = session.join("palmtop", DeviceProfile::wireless_palmtop());

    // Build one proxy stream per member that needs one, with filters chosen
    // from the device profile.
    let mut proxy = Proxy::new("session-proxy");
    for id in session.members_needing_proxies() {
        let member = session.member(id).unwrap().clone();
        let stream = member.name.clone();
        proxy.add_stream(stream.clone()).unwrap();
        let mut position = 0;
        if member.device.needs_transcoding() {
            proxy
                .insert_filter(&stream, position, &FilterSpec::new("transcoder"))
                .unwrap();
            position += 1;
        }
        if member.device.wireless {
            proxy
                .insert_filter(&stream, position, &FilterSpec::new("fec-encoder"))
                .unwrap();
        }
    }
    let laptop_name = session.member(laptop).unwrap().name.clone();
    let palmtop_name = session.member(palmtop).unwrap().name.clone();
    assert_eq!(
        proxy.filter_names(&laptop_name).unwrap(),
        vec!["fec-encoder(6,4)"]
    );
    assert_eq!(
        proxy.filter_names(&palmtop_name).unwrap(),
        vec!["transcoder(stereo-to-mono)", "fec-encoder(6,4)"]
    );
    proxy.shutdown().unwrap();
}

#[test]
fn observer_driven_adaptation_follows_a_simulated_walk() {
    // A mobile laptop walks away from the access point while an observer
    // samples the simulated link and a responder reconfigures the live
    // proxy.  By the end of the walk the FEC encoder must be installed; if
    // the user walks back, it must be removed again.
    let mut proxy = Proxy::new("adaptive");
    let (_input, _output) = proxy.add_stream("audio").unwrap();
    let mut engine = AdaptationEngine::new();
    engine.add_observer(Box::new(LossRateObserver::paper_default()));
    engine.add_responder(Box::new(FecResponder::paper_default()));

    let mut lan = WirelessLan::wavelan_2mbps(77);
    let walk = LinearWalk::new(5.0, 45.0, SimTime::from_secs(0), 2.0);
    let receiver = lan.add_mobile_receiver(
        "walker",
        DistanceLossModel::wavelan_2mbps(),
        Box::new(walk),
    );

    let mut installed_during_walk = false;
    for second in 0..40u64 {
        let now = SimTime::from_secs(second);
        let mut sent = 0u64;
        let mut delivered = 0u64;
        for packet_index in 0..50u64 {
            let at = now + packet_index * 20_000;
            sent += 1;
            if lan.broadcast(at, 360)[receiver.index()].is_delivered() {
                delivered += 1;
            }
        }
        let sample = LinkSample::new(now, sent, delivered)
            .with_distance(lan.receiver_distance(receiver, now).unwrap());
        let actions = engine.ingest(&sample);
        apply_to_proxy(&proxy, "audio", &actions).unwrap();
        if proxy
            .filter_names("audio")
            .unwrap()
            .iter()
            .any(|name| name.starts_with("fec-encoder"))
        {
            installed_during_walk = true;
        }
    }
    assert!(
        installed_during_walk,
        "walking to 45 m must trigger FEC insertion"
    );
    assert!(
        !engine.log().is_empty(),
        "the adaptation log must record the events"
    );
    proxy.shutdown().unwrap();
}

#[test]
fn browsing_workload_flows_through_a_proxied_lossy_link() {
    // Leader browsing -> proxy (FEC) -> lossy multicast -> palmtop decoder +
    // cache.  The palmtop should end up with (nearly) every packet despite
    // the loss, and its cache should serve revisits.
    let registry = FilterRegistry::with_builtins();
    let mut sender_chain = FilterChain::new();
    sender_chain
        .push_back(registry.instantiate(&FilterSpec::new("fec-encoder")).unwrap())
        .unwrap();
    let mut decoder_chain = FilterChain::new();
    decoder_chain
        .push_back(registry.instantiate(&FilterSpec::new("fec-decoder")).unwrap())
        .unwrap();

    let mut lan = WirelessLan::wavelan_2mbps(11);
    let palmtop = lan.add_receiver_at_distance("palmtop", 30.0);
    let mut cache = ResourceCache::for_device_memory_kb(2_048);
    let mut workload = BrowsingWorkload::new(StreamId::new(5), 1_200);

    let mut sent_payload = 0u64;
    let mut got_payload = 0u64;
    let urls = [
        "http://example.edu/syllabus.html",
        "http://example.edu/images/diagram.png",
        "http://example.edu/syllabus.html",
    ];
    for (index, url) in urls.iter().enumerate() {
        if cache.lookup(url).is_some() {
            continue; // served locally by the proxy cache
        }
        let (resource, packets) = workload.load_url(url, index as u64 * 1_000_000);
        cache.insert(url, resource.size);
        for packet in packets {
            for out in sender_chain.process(packet).unwrap() {
                if out.kind().is_payload() {
                    sent_payload += 1;
                }
                let delivered =
                    lan.broadcast(SimTime::from_millis(index as u64), out.wire_len())
                        [palmtop.index()]
                    .is_delivered();
                if delivered {
                    for emitted in decoder_chain.process(out.clone()).unwrap() {
                        if emitted.kind().is_payload() {
                            got_payload += 1;
                        }
                    }
                }
            }
        }
    }
    for out in sender_chain.flush().unwrap() {
        if lan.broadcast(SimTime::from_secs(10), out.wire_len())[palmtop.index()].is_delivered() {
            for emitted in decoder_chain.process(out).unwrap() {
                if emitted.kind().is_payload() {
                    got_payload += 1;
                }
            }
        }
    }

    assert!(sent_payload > 50, "the pages are several packets long");
    assert!(
        got_payload as f64 >= sent_payload as f64 * 0.97,
        "FEC keeps the browsing stream nearly complete ({got_payload}/{sent_payload})"
    );
    assert_eq!(cache.stats().hits, 1, "the revisited page hits the cache");
}
