//! Cross-crate integration test: the full FEC audio pipeline.
//!
//! media source -> filter chain (FEC encoder) -> simulated wireless LAN ->
//! per-receiver FEC decoder -> media sink, plus the same pipeline on the
//! threaded proxy runtime with in-chain fault injection.

use rapidware::prelude::*;
use rapidware::scenario::{FecScenario, ScenarioConfig};

#[test]
fn figure7_operating_point_recovers_nearly_everything() {
    // A 2000-packet slice of the Figure 7 run (kept short for CI).
    let report = FecScenario::new(
        ScenarioConfig::figure7()
            .with_packets(2_000)
            .with_receivers(3),
    )
    .run();
    assert_eq!(report.receivers.len(), 3);
    for receiver in &report.receivers {
        assert!(
            receiver.received_pct() > 96.0 && receiver.received_pct() < 100.0,
            "raw receipt at 25 m should be close to but below 100% (got {:.2})",
            receiver.received_pct()
        );
        assert!(
            receiver.reconstructed_pct() > 99.5,
            "FEC(6,4) should recover nearly everything (got {:.2})",
            receiver.reconstructed_pct()
        );
        assert!(receiver.parity_received > 0);
    }
    // FEC(6,4) costs 2 parity packets per 4 source packets.
    assert!((report.overhead() - 0.5).abs() < 0.1);
}

#[test]
fn fec_beats_no_fec_at_every_distance() {
    for distance in [15.0, 25.0, 35.0] {
        let with_fec = FecScenario::new(
            ScenarioConfig::figure7()
                .with_packets(1_200)
                .with_receivers(1)
                .with_distance(distance),
        )
        .run();
        let without = FecScenario::new(
            ScenarioConfig::figure7()
                .without_fec()
                .with_packets(1_200)
                .with_receivers(1)
                .with_distance(distance),
        )
        .run();
        assert!(
            with_fec.receivers[0].reconstructed_pct() > without.receivers[0].reconstructed_pct()
                || without.receivers[0].reconstructed_pct() == 100.0,
            "FEC must help (or tie) at {distance} m"
        );
    }
}

#[test]
fn threaded_proxy_pipeline_with_fault_injection_recovers_losses() {
    // The same pipeline, but on real threads connected by detachable pipes,
    // with the loss injected by a filter inside the chain.
    let chain = ThreadedChain::new().expect("chain");
    chain
        .push_back(Box::new(FecEncoderFilter::fec_6_4().unwrap()))
        .unwrap();
    chain
        .push_back(Box::new(rapidware::filters::DropEveryNth::new(7)))
        .unwrap();
    chain
        .push_back(Box::new(FecDecoderFilter::fec_6_4().unwrap()))
        .unwrap();

    let input = chain.input();
    let output = chain.output();
    let consumer = std::thread::spawn(move || {
        let mut sink = MediaSink::new();
        while let Ok(packet) = output.recv() {
            sink.deliver(&packet);
        }
        sink
    });

    let mut source = AudioSource::pcm_default(StreamId::new(1));
    let total = 2_000u64;
    for _ in 0..total {
        input.send(source.next_packet()).unwrap();
    }
    chain.close_input();
    let sink = consumer.join().unwrap();
    let report = sink.report(total);
    let available = report.received + report.recovered;
    assert!(
        available as f64 / total as f64 > 0.99,
        "FEC over the threaded chain should repair the injected losses \
         (got {available}/{total})"
    );
    chain.shutdown().unwrap();
}

#[test]
fn transcoder_plus_fec_compose_in_either_order() {
    // Composability: the same filters, composed in different orders, both
    // produce a working stream (this is the property the detachable-stream
    // design exists to support).
    for order in [&["transcoder", "fec-encoder"], &["fec-encoder", "transcoder"]] {
        let mut chain = FilterChain::new();
        let registry = FilterRegistry::with_builtins();
        for kind in order.iter() {
            let spec = FilterSpec::new(*kind);
            chain
                .push_back(registry.instantiate(&spec).unwrap())
                .unwrap();
        }
        let mut source = AudioSource::pcm_default(StreamId::new(1));
        let mut out = Vec::new();
        for _ in 0..40 {
            out.extend(chain.process(source.next_packet()).unwrap());
        }
        out.extend(chain.flush().unwrap());
        let payload = out.iter().filter(|p| p.kind().is_payload()).count();
        let parity = out.iter().filter(|p| p.kind().is_parity()).count();
        assert_eq!(payload, 40, "order {order:?}");
        assert_eq!(parity, 20, "order {order:?}");
        // The transcoder halves every payload packet.
        for packet in out.iter().filter(|p| p.kind().is_payload()) {
            assert_eq!(packet.payload_len(), 160, "order {order:?}");
        }
    }
}
