//! Helpers shared by the integration suites (`runtime_soak`,
//! `udp_transport`, `scenario_matrix`, `generated_scenarios`, `chaos`,
//! `multicast_soak`).
//!
//! Every suite is its own binary, so each compiles just the subset it uses
//! — hence the `dead_code` allowance.  The helpers encode the house test
//! discipline:
//!
//! * **watchdogs, not sleeps** — anything that could wedge runs on a
//!   supervised thread ([`watchdog`]) or against a deadline
//!   ([`drain_count`]/[`drain_to_eof`]), so a deadlock fails the test
//!   instead of hanging CI;
//! * **conservation, not vibes** — delivery claims go through
//!   [`assert_conservation`]: `sent == delivered + lost + undelivered`,
//!   with the terms tallied from *independent* counters;
//! * **seeded runs compare byte-for-byte** — applier agreement is asserted
//!   on canonical trace text via [`assert_same_outcome`].

#![allow(dead_code)]

use std::net::{SocketAddr, UdpSocket};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use rapidware::packet::{Packet, PacketKind, SeqNo, StreamId};
use rapidware::streams::{DetachableReceiver, TryRecvError};

/// Default wall-clock bound for a whole suite body.
pub const WATCHDOG: Duration = Duration::from_secs(120);

/// A small deterministic audio-data packet: seq-derived payload of
/// `payload_len` bytes on stream 1.
pub fn audio_packet(seq: u64, payload_len: usize) -> Packet {
    Packet::new(
        StreamId::new(1),
        SeqNo::new(seq),
        PacketKind::AudioData,
        vec![(seq % 251) as u8; payload_len],
    )
}

/// Encodes `packet` and sends it as one datagram to `peer`.
pub fn send_encoded(socket: &UdpSocket, peer: SocketAddr, packet: &Packet) {
    let mut scratch = Vec::new();
    packet.encode_into(&mut scratch);
    socket.send_to(&scratch, peer).expect("loopback send never fails");
}

/// Runs `body` on a supervised thread and fails the test if it has not
/// finished within `wall_clock` — the no-deadlock bound every soak and
/// chaos suite runs under.  Panics from `body` propagate.
pub fn watchdog(name: &str, wall_clock: Duration, body: impl FnOnce() + Send + 'static) {
    let (done_tx, done_rx) = mpsc::channel();
    let thread = std::thread::Builder::new()
        .name(name.to_string())
        .spawn(move || {
            body();
            let _ = done_tx.send(());
        })
        .expect("spawning the supervised test thread never fails");
    match done_rx.recv_timeout(wall_clock) {
        Ok(()) => thread.join().expect("supervised test thread must not panic"),
        Err(_) => panic!("{name} did not finish within {wall_clock:?}: deadlock or livelock"),
    }
}

/// Drains exactly `count` packets from `rx` under the deadline.
pub fn drain_count(rx: &DetachableReceiver<Packet>, count: usize, deadline: Instant) -> Vec<Packet> {
    let mut packets = Vec::with_capacity(count);
    while packets.len() < count {
        assert!(
            Instant::now() < deadline,
            "stream stalled at {}/{count}",
            packets.len()
        );
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(packet) => packets.push(packet),
            Err(TryRecvError::Empty) => continue,
            Err(other) => panic!("stream ended early at {}/{count}: {other}", packets.len()),
        }
    }
    packets
}

/// Drains `rx` to EOF under the deadline, returning what was left.
pub fn drain_to_eof(rx: &DetachableReceiver<Packet>, deadline: Instant) -> Vec<Packet> {
    let mut packets = Vec::new();
    loop {
        assert!(Instant::now() < deadline, "stream never ended ({} left over)", packets.len());
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(packet) => packets.push(packet),
            Err(TryRecvError::Empty) => continue,
            Err(_) => return packets,
        }
    }
}

/// Non-blockingly drains `rx` to EOF (spinning through `Empty`), returning
/// the delivered-packet count.  For endpoints whose upstream is already
/// closing — pair with a [`watchdog`] so a wedge cannot spin forever.
pub fn drain_count_to_eof(rx: &DetachableReceiver<Packet>, batch: usize) -> u64 {
    let mut delivered = 0u64;
    loop {
        match rx.try_recv_up_to(batch) {
            Ok(packets) => delivered += packets.len() as u64,
            Err(TryRecvError::Empty) => std::thread::yield_now(),
            Err(_) => return delivered,
        }
    }
}

/// The conservation invariant every delivery path must satisfy:
/// `sent == delivered + lost + undelivered`, with each term tallied from an
/// independent counter (pipe stats vs. consumer tally vs. endpoint depth).
pub fn assert_conservation(context: &str, sent: u64, delivered: u64, lost: u64, undelivered: u64) {
    assert_eq!(
        sent,
        delivered + lost + undelivered,
        "{context}: conservation violated \
         (sent {sent} != delivered {delivered} + lost {lost} + undelivered {undelivered})"
    );
}

/// Asserts two appliers produced the same closed-loop outcome: canonical
/// trace text byte-for-byte, and equal reports.
pub fn assert_same_outcome<R: PartialEq + std::fmt::Debug>(
    context: &str,
    applier: &str,
    expected_trace: &str,
    expected_report: &R,
    actual_trace: &str,
    actual_report: &R,
) {
    assert_eq!(
        expected_trace, actual_trace,
        "{context}: sync and {applier} appliers diverge"
    );
    assert_eq!(
        expected_report, actual_report,
        "{context}: {applier} report differs"
    );
}

/// Reads a reduced-iteration profile from the environment: `name` must be a
/// positive integer if set; anything unset or unparsable falls back to
/// `default`.  CI jobs use this to run trimmed-down generated suites.
pub fn env_profile(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|value| value.trim().parse::<usize>().ok())
        .filter(|&count| count > 0)
        .unwrap_or(default)
}
