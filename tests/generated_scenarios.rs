//! The generated-conformance harness: property-based scenario sampling,
//! replayed from a checked-in seed corpus.
//!
//! Each line of `tests/corpus/generated_scenarios.txt` is a
//! [`GeneratedSpec`] — a whole closed-loop scenario (loss regimes, chain
//! shape, fanout topology, runtime placement) derived from one `u64` seed.
//! For every corpus entry the harness asserts the generated-spec contract:
//!
//! * the spec **validates** (the sampler never emits a degenerate spec),
//! * the sync applier is **deterministic** per seed (two runs, identical
//!   canonical traces),
//! * every other applier — threaded, pooled, and the sampled placement's
//!   own shard count — produces a **byte-identical** report and canonical
//!   trace,
//! * conservation holds per receiver/lane: everything sent is delivered,
//!   recovered, lost, or undelivered — and undelivered is zero, and
//! * the recorded trace **replays** into the identical report.
//!
//! A failing spec is shrunk ([`GeneratedSpec::shrink_to_minimal`]) and the
//! panic message carries the minimal spec's corpus line, so the regression
//! can be replayed byte-identically with
//! `RAPIDWARE_GENERATED_ONLY='<line>' cargo test …` or pinned by pasting
//! the line into the corpus.
//!
//! `RAPIDWARE_GENERATED_SPECS=<n>` trims the run to the first `n` corpus
//! entries (the CI reduced profile) or extends it past the corpus with
//! freshly sampled seeds when `n` exceeds the corpus size.

mod common;

use std::time::Duration;

use rapidware::engine::GeneratedSpec;

use common::{env_profile, watchdog};

/// The checked-in seed corpus (compiled in, so the harness cannot silently
/// run against a stale or missing file).
const CORPUS: &str = include_str!("corpus/generated_scenarios.txt");

/// Wall-clock bound for the full conformance sweep.
const CONFORMANCE_WALL_CLOCK: Duration = Duration::from_secs(480);

/// Seed base for specs sampled beyond the corpus when the profile asks for
/// more than the file holds.
const EXTENSION_SEED_BASE: u64 = 10_000;

/// The corpus, resized to the active profile: `RAPIDWARE_GENERATED_SPECS`
/// trims to a prefix (CI) or extends with fresh seeds (deep local runs).
fn profiled_corpus() -> Vec<GeneratedSpec> {
    let mut specs = GeneratedSpec::parse_corpus(CORPUS).expect("the checked-in corpus parses");
    assert!(
        specs.len() >= 64,
        "the corpus must hold at least 64 specs, found {}",
        specs.len()
    );
    let budget = env_profile("RAPIDWARE_GENERATED_SPECS", specs.len());
    if budget <= specs.len() {
        specs.truncate(budget);
    } else {
        let extra = (budget - specs.len()) as u64;
        specs.extend((0..extra).map(|index| GeneratedSpec::sample(EXTENSION_SEED_BASE + index)));
    }
    specs
}

#[test]
fn the_corpus_parses_and_round_trips_byte_identically() {
    let specs = GeneratedSpec::parse_corpus(CORPUS).expect("the checked-in corpus parses");
    assert!(specs.len() >= 64);
    for spec in &specs {
        let line = spec.to_line();
        let replayed = GeneratedSpec::from_line(&line)
            .unwrap_or_else(|err| panic!("corpus line {line:?} does not round-trip: {err}"));
        assert_eq!(spec, &replayed, "round-tripped spec differs for {line:?}");
        assert_eq!(replayed.to_line(), line, "serialisation is not a fixed point");
        assert!(!spec.describe().is_empty());
    }
}

#[test]
fn every_corpus_spec_conforms_across_all_appliers() {
    watchdog("generated-conformance", CONFORMANCE_WALL_CLOCK, || {
        let specs = match std::env::var("RAPIDWARE_GENERATED_ONLY") {
            // Replay exactly one spec line — the seed-walkthrough path the
            // README documents for reproducing a shrunken failure.
            Ok(line) => vec![GeneratedSpec::from_line(&line)
                .unwrap_or_else(|err| panic!("RAPIDWARE_GENERATED_ONLY {line:?}: {err}"))],
            Err(_) => profiled_corpus(),
        };
        let mut failures = Vec::new();
        for spec in &specs {
            let problems = spec.conformance_problems();
            if problems.is_empty() {
                continue;
            }
            // Shrink before reporting: the minimal spec still failing the
            // same predicate is the line worth pasting into the corpus.
            let minimal = GeneratedSpec::shrink_to_minimal(spec.clone(), &|candidate| {
                !candidate.conformance_problems().is_empty()
            });
            failures.push(format!(
                "{} [{}]: {problems:?}\n  minimal repro: {}",
                spec.to_line(),
                spec.describe(),
                minimal.to_line(),
            ));
        }
        assert!(
            failures.is_empty(),
            "{} of {} generated specs failed conformance:\n{}",
            failures.len(),
            specs.len(),
            failures.join("\n")
        );
    });
}

#[test]
fn sampled_digests_are_reproducible_within_the_harness() {
    // The digest a spec reports is the determinism anchor the docs point
    // users at; two derivations in one process must agree, and distinct
    // seeds must not collide on the first few corpus entries.
    let specs: Vec<GeneratedSpec> =
        GeneratedSpec::parse_corpus(CORPUS).expect("corpus parses").into_iter().take(4).collect();
    let mut digests = Vec::new();
    for spec in &specs {
        let first = spec.reference_digest();
        let second = spec.reference_digest();
        assert_eq!(first, second, "{}: digest is not stable", spec.to_line());
        digests.push(first);
    }
    digests.sort_unstable();
    digests.dedup();
    assert_eq!(digests.len(), specs.len(), "distinct seeds collided on digest");
}
