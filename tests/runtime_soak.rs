//! The sharded-runtime soak suite: 200 pooled fanout sessions with
//! continuous lane add/remove churn under phased loss, ≥50 000 source
//! packets, all multiplexed over a **4-shard** worker pool.
//!
//! What it proves about the runtime:
//!
//! * **no deadlock** — the whole soak (drivers use only non-blocking sends
//!   and drains against the pool) finishes inside a hard wall-clock bound;
//! * **conservation** — for every lane, including lanes removed
//!   mid-stream, `sent == delivered + lost + undelivered`, where `sent`
//!   and `lost` come from the pipe/chain counters and `delivered` is
//!   tallied independently by the consumer;
//! * **exactness on clean lanes** — a lossless lane that lives for the
//!   whole run delivers *every* source packet, in order, no matter how its
//!   sibling lanes churn;
//! * **clean shutdown** — after every session shuts down the runtime
//!   reports **zero** live tasks (churned-away lanes included) and the
//!   worker pool joins without failure.

mod common;

use std::sync::Arc;
use std::time::Duration;

use rapidware::packet::Packet;
use rapidware::proxy::FilterSpec;
use rapidware::runtime::{PooledSession, Runtime, RuntimeConfig};
use rapidware::streams::{DetachableReceiver, TryRecvError};

use common::{assert_conservation, audio_packet, drain_count_to_eof, watchdog};

const SHARDS: usize = 4;
const BATCH_SIZE: usize = 16;
const PIPE_CAPACITY: usize = 64;
const DRIVERS: usize = 8;
const SESSIONS_PER_DRIVER: usize = 25; // 8 × 25 = 200 sessions
const PHASES: u64 = 5;
const PACKETS_PER_PHASE: u64 = 50; // 200 × 5 × 50 = 50 000 source packets
const SOAK_WALL_CLOCK: Duration = Duration::from_secs(240);

fn packet(seq: u64) -> Packet {
    audio_packet(seq, 8)
}

/// One soak session as a driver sees it.
struct SoakSession {
    session: PooledSession,
    name: String,
    next_seq: u64,
    /// Source packets accepted by the session input but possibly not yet
    /// handed over (non-blocking sends return leftovers).
    backlog: Vec<Packet>,
    base_rx: DetachableReceiver<Packet>,
    base_delivered: u64,
    base_next_expected: u64,
    churn: Option<ChurnLane>,
}

/// The churning lane of a session: joins at a phase boundary, carries a
/// deterministic drop filter (the "phased loss"), leaves at the next
/// boundary.
struct ChurnLane {
    name: String,
    rx: DetachableReceiver<Packet>,
    delivered: u64,
    lossy: bool,
}

impl SoakSession {
    /// Drains whatever is buffered at the lane endpoints, keeping the
    /// independent delivery tallies (and the base lane's order check).
    fn drain(&mut self) -> bool {
        let mut progressed = false;
        while let Ok(batch) = self.base_rx.try_recv_up_to(BATCH_SIZE) {
            for p in &batch {
                assert_eq!(
                    p.seq().value(),
                    self.base_next_expected,
                    "{}: base lane delivered out of order",
                    self.name
                );
                self.base_next_expected += 1;
            }
            self.base_delivered += batch.len() as u64;
            progressed = true;
        }
        if let Some(churn) = self.churn.as_mut() {
            while let Ok(batch) = churn.rx.try_recv_up_to(BATCH_SIZE) {
                churn.delivered += batch.len() as u64;
                progressed = true;
            }
        }
        progressed
    }

    /// Pushes as much backlog as the session input accepts right now.
    fn pump(&mut self) -> bool {
        if self.backlog.is_empty() {
            return false;
        }
        let before = self.backlog.len();
        let pending = std::mem::take(&mut self.backlog);
        self.backlog = self
            .session
            .input()
            .try_send_batch(pending)
            .expect("soak session inputs stay open");
        self.backlog.len() != before
    }

    /// Retires the current churn lane: detach it from the fanout, drain its
    /// endpoint to end of stream, and check conservation from independent
    /// counters.
    fn retire_churn_lane(&mut self) {
        let Some(mut churn) = self.churn.take() else {
            return;
        };
        let lossy = churn.lossy;
        self.session.remove_lane(&churn.name).expect("churn lane exists");
        // The lane's chain flushes to EOF once its backlog drains; everything
        // still queued at the endpoint belongs to `delivered`.
        churn.delivered += drain_count_to_eof(&churn.rx, BATCH_SIZE);
        let stats = self.session.lane_stats(&churn.name).expect("retired lanes keep stats");
        let lost = stats.packets_in - stats.packets_out;
        let undelivered = churn.rx.available() as u64;
        assert_eq!(undelivered, 0, "{}/{}: endpoint drained to EOF", self.name, churn.name);
        assert_conservation(
            &format!("{}/{}", self.name, churn.name),
            stats.packets_in,
            churn.delivered,
            lost,
            undelivered,
        );
        if lossy && stats.packets_in >= 4 {
            assert!(lost > 0, "{}/{}: the drop filter never dropped", self.name, churn.name);
        }
        if !lossy {
            assert_eq!(lost, 0, "{}/{}: clean churn lane lost packets", self.name, churn.name);
        }
    }
}

/// The whole soak body; run on a watchdog-supervised thread.
fn run_soak() {
    let runtime = Runtime::start(
        RuntimeConfig::new(SHARDS, BATCH_SIZE).with_pipe_capacity(PIPE_CAPACITY),
    );
    assert_eq!(runtime.status().workers, SHARDS);

    let drivers: Vec<_> = (0..DRIVERS)
        .map(|driver| {
            let runtime = Arc::clone(&runtime);
            std::thread::spawn(move || {
                let mut sessions: Vec<SoakSession> = (0..SESSIONS_PER_DRIVER)
                    .map(|index| {
                        let name = format!("soak-{driver}-{index}");
                        let session = runtime.add_session(&name);
                        let base_rx = session.add_lane("base").expect("fresh session");
                        SoakSession {
                            session,
                            name,
                            next_seq: 0,
                            backlog: Vec::new(),
                            base_rx,
                            base_delivered: 0,
                            base_next_expected: 0,
                            churn: None,
                        }
                    })
                    .collect();

                for phase in 0..PHASES {
                    // Churn at the boundary: retire last phase's lane,
                    // grow this phase's.  Odd phases are the loss
                    // episodes: the joining lane carries a deterministic
                    // drop filter; even-phase lanes stay clean.
                    let lossy = phase % 2 == 1;
                    for s in sessions.iter_mut() {
                        s.retire_churn_lane();
                        let lane_name = format!("churn-{phase}");
                        let rx = s.session.add_lane(&lane_name).expect("unique per phase");
                        if lossy {
                            s.session
                                .insert_lane_filter(
                                    &lane_name,
                                    0,
                                    &FilterSpec::new("drop-every").with_param("n", "4"),
                                )
                                .expect("drop-every is a registered kind");
                        }
                        s.churn = Some(ChurnLane {
                            name: lane_name,
                            rx,
                            delivered: 0,
                            lossy,
                        });
                        s.backlog
                            .extend((s.next_seq..s.next_seq + PACKETS_PER_PHASE).map(packet));
                        s.next_seq += PACKETS_PER_PHASE;
                    }
                    // Pump the phase's traffic through all 25 sessions with
                    // non-blocking sends and drains only: a wedged pool
                    // shows up as no-progress, not as a blocked driver.
                    loop {
                        let mut progressed = false;
                        let mut all_sent = true;
                        for s in sessions.iter_mut() {
                            progressed |= s.pump();
                            progressed |= s.drain();
                            all_sent &= s.backlog.is_empty();
                        }
                        if all_sent {
                            break;
                        }
                        if !progressed {
                            std::thread::yield_now();
                        }
                    }
                }

                // Teardown: EOF every session, drain every lane dry, check
                // the clean-lane and conservation invariants, shut down.
                let mut sources_sent = 0u64;
                for mut s in sessions {
                    s.session.close_input();
                    loop {
                        match s.base_rx.try_recv_up_to(BATCH_SIZE) {
                            Ok(batch) => {
                                for p in &batch {
                                    assert_eq!(p.seq().value(), s.base_next_expected);
                                    s.base_next_expected += 1;
                                }
                                s.base_delivered += batch.len() as u64;
                            }
                            Err(TryRecvError::Empty) => std::thread::yield_now(),
                            Err(_) => break,
                        }
                    }
                    s.retire_churn_lane();
                    let total = PHASES * PACKETS_PER_PHASE;
                    assert_eq!(
                        s.base_delivered, total,
                        "{}: lossless whole-life lane must deliver every packet",
                        s.name
                    );
                    let base = s.session.lane_stats("base").expect("base lane");
                    assert_eq!(base.packets_in, total, "{}: fanout fed the base lane fully", s.name);
                    assert_eq!(base.packets_out, total);
                    let head = s.session.status().head_stats;
                    assert_eq!(head.packets_in, total, "{}: head accepted the whole stream", s.name);
                    sources_sent += head.packets_in;
                    s.session.shutdown().expect("clean session shutdown");
                }
                sources_sent
            })
        })
        .collect();

    let mut total_sources = 0u64;
    for driver in drivers {
        total_sources += driver.join().expect("soak driver must not panic");
    }
    assert_eq!(
        total_sources,
        (DRIVERS * SESSIONS_PER_DRIVER) as u64 * PHASES * PACKETS_PER_PHASE,
        "the soak must push at least 50k source packets"
    );
    assert!(total_sources >= 50_000);

    // Clean shutdown: nothing left on the pool.
    assert_eq!(runtime.live_tasks(), 0, "leaked shard tasks after session shutdown");
    let status = runtime.status();
    assert!(status.shards.iter().all(|shard| shard.queued == 0), "run queues not empty");
    runtime.shutdown().expect("worker pool joins cleanly");
}

#[test]
fn soak_200_sessions_with_lane_churn_on_a_4_shard_pool() {
    // The no-deadlock bound: the soak runs on a supervised thread and must
    // finish inside SOAK_WALL_CLOCK, or the watchdog fails the test
    // instead of letting CI hang.
    watchdog("runtime-soak", SOAK_WALL_CLOCK, run_soak);
}
