//! The scenario-matrix harness: every built-in closed-loop scenario, run
//! end-to-end at fixed seeds, on both appliers.
//!
//! This is the executable form of the paper's headline claim — observer and
//! responder raplets reconfigure a running proxy chain in response to
//! wireless loss — checked as a matrix of properties rather than a few
//! hand-wired examples:
//!
//! * every scenario runs to completion without a panic,
//! * every non-lost data packet is delivered to the application,
//! * the loss-driven scenarios insert FEC after the spike and remove it
//!   after recovery, converging back to an empty chain,
//! * the same spec and seed produce a byte-identical trace on every run,
//! * the sync, threaded, and pooled (sharded worker-pool) appliers agree
//!   byte for byte, and
//! * replaying a recorded trace reproduces the identical report.
//!
//! The per-run health criteria live in `ScenarioOutcome::health_problems`,
//! shared with the `scenario_matrix` bench binary so this harness and the
//! CI report job can never drift apart.

mod common;

use rapidware::engine::{FanoutEngine, FanoutSpec, ScenarioEngine, ScenarioSpec, MATRIX_SEEDS};

use common::assert_same_outcome;

#[test]
fn every_builtin_scenario_closes_the_loop_on_both_appliers_at_both_seeds() {
    for seed in MATRIX_SEEDS {
        for spec in ScenarioSpec::builtin_matrix() {
            let spec = spec.with_seed(seed);
            let engine = ScenarioEngine::new(spec.clone());
            let outcome = engine.run_sync();
            let context = format!("{} @ seed {seed}", spec.name);

            let problems = outcome.health_problems(&spec);
            assert!(
                problems.is_empty(),
                "{context}: {problems:?}\ntimeline: {:?}",
                outcome.report.timeline
            );

            // The threaded applier — every filter on its own thread,
            // reconfigured through the proxy's live splice protocol — must
            // agree with the sync run byte for byte, which transitively
            // gives it every property checked above.
            let threaded = engine.run_threaded();
            assert_same_outcome(
                &context,
                "threaded",
                &outcome.trace.canonical_text(),
                &outcome.report,
                &threaded.trace.canonical_text(),
                &threaded.report,
            );

            // The pooled applier — the whole chain as one cooperative task
            // on a sharded worker pool, reconfigured through the same proxy
            // control surface — must agree byte for byte as well.
            let pooled = engine.run_pooled();
            assert_same_outcome(
                &context,
                "pooled",
                &outcome.trace.canonical_text(),
                &outcome.report,
                &pooled.trace.canonical_text(),
                &pooled.report,
            );
        }
    }
}

#[test]
fn same_spec_and_seed_yield_byte_identical_traces() {
    for spec in ScenarioSpec::builtin_matrix() {
        let engine = ScenarioEngine::new(spec.clone());
        let first = engine.run_sync();
        let second = engine.run_sync();
        assert_eq!(
            first.trace.canonical_text(),
            second.trace.canonical_text(),
            "{}: two runs of the same spec+seed differ",
            spec.name
        );
        assert_eq!(first.report, second.report);
    }
}

#[test]
fn different_seeds_change_the_trace_but_not_the_guarantees() {
    let spec = ScenarioSpec::handoff_cliff();
    let a = ScenarioEngine::new(spec.clone().with_seed(1)).run_sync();
    let b = ScenarioEngine::new(spec.with_seed(2)).run_sync();
    assert_ne!(
        a.trace.canonical_text(),
        b.trace.canonical_text(),
        "different seeds must explore different loss patterns"
    );
    for outcome in [a, b] {
        assert_eq!(outcome.report.undelivered_total(), 0);
        assert!(outcome.report.fec_inserted_then_removed());
    }
}

#[test]
fn every_fanout_scenario_closes_its_per_lane_loops_on_both_appliers_at_both_seeds() {
    for seed in MATRIX_SEEDS {
        for spec in FanoutSpec::fanout_matrix() {
            let spec = spec.with_seed(seed);
            let engine = FanoutEngine::new(spec.clone());
            let outcome = engine.run_sync();
            let context = format!("{} @ seed {seed}", spec.name);

            // Per-lane health: full accounting, zero undelivered, FEC
            // cycles only on the lanes whose loss schedule demands them,
            // no parity on quiet lanes, convergence, trace replay.
            let problems = outcome.health_problems(&spec);
            assert!(problems.is_empty(), "{context}: {problems:?}");

            // The live session applier — shared head chain, fanout worker,
            // one tail chain per lane, reconfigured lane by lane through
            // the splice protocol — must agree with the sync run byte for
            // byte.
            let session = engine.run_session();
            assert_same_outcome(
                &context,
                "session",
                &outcome.trace.canonical_text(),
                &outcome.report,
                &session.trace.canonical_text(),
                &session.report,
            );

            // And so must the pooled session applier, where the head, the
            // fanout stage, and every lane run as tasks on a fixed worker
            // pool with zero dedicated threads per session.
            let pooled = engine.run_pooled();
            assert_same_outcome(
                &context,
                "pooled fanout",
                &outcome.trace.canonical_text(),
                &outcome.report,
                &pooled.trace.canonical_text(),
                &pooled.report,
            );
        }
    }
}

#[test]
fn fanout_traces_are_byte_identical_per_spec_and_seed() {
    for spec in FanoutSpec::fanout_matrix() {
        let engine = FanoutEngine::new(spec.clone());
        let first = engine.run_sync();
        let second = engine.run_sync();
        assert_eq!(
            first.trace.canonical_text(),
            second.trace.canonical_text(),
            "{}: two runs of the same spec+seed differ",
            spec.name
        );
        assert_eq!(first.report, second.report);
    }
}

#[test]
fn a_fixed_seed_scenario_over_loopback_udp_matches_the_sync_applier() {
    // The wire must be invisible to the closed loop: the same scenario at
    // the same seed, run with every packet crossing two real loopback UDP
    // sockets (socket → chain → socket, via `Proxy::add_stream_udp`), must
    // produce the sync applier's report — delivered + recovered totals
    // exactly — and the identical canonical trace.
    let spec = ScenarioSpec::handoff_cliff().with_seed(MATRIX_SEEDS[0]);
    let engine = ScenarioEngine::new(spec);
    let sync = engine.run_sync();
    let udp = engine.run_udp();
    for (receiver, (s, u)) in sync.report.receivers.iter().zip(&udp.report.receivers).enumerate() {
        assert_eq!(
            s.delivered + s.recovered,
            u.delivered + u.recovered,
            "receiver {receiver}: delivered+recovered diverged over the wire"
        );
    }
    assert_eq!(sync.report, udp.report, "the wire changed the outcome");
    assert_eq!(
        sync.trace.canonical_text(),
        udp.trace.canonical_text(),
        "sync and udp appliers diverge"
    );

    // Same bar for a fanout spec: one UDP egress per lane.
    let fanout = FanoutSpec::fanout_matrix()
        .into_iter()
        .next()
        .expect("the fanout matrix is non-empty")
        .with_seed(MATRIX_SEEDS[0]);
    let engine = FanoutEngine::new(fanout);
    let sync = engine.run_sync();
    let udp = engine.run_udp();
    assert_eq!(sync.report, udp.report, "the wire changed the fanout outcome");
}

#[test]
fn a_fixed_seed_scenario_over_a_shared_socket_carrier_matches_the_sync_applier() {
    // Same bar as the dedicated-socket wire test, for the reactor path:
    // every packet crosses a *shared* carrier socket (one UDP socket
    // demuxed by stream id onto the worker pool, zero pump threads, via
    // `Proxy::add_stream_udp_shared`), and the multiplexing must be
    // invisible — the sync applier's report and canonical trace, byte for
    // byte, at both matrix seeds.
    for seed in MATRIX_SEEDS {
        let spec = ScenarioSpec::handoff_cliff().with_seed(seed);
        let engine = ScenarioEngine::new(spec);
        let sync = engine.run_sync();
        let shared = engine.run_udp_shared();
        assert_same_outcome(
            &format!("handoff-cliff @ seed {seed}"),
            "shared-udp",
            &sync.trace.canonical_text(),
            &sync.report,
            &shared.trace.canonical_text(),
            &shared.report,
        );
    }

    // Same bar for a fanout spec: every lane multiplexed back out of the
    // one carrier socket towards its own app-side peer.
    let fanout = FanoutSpec::fanout_matrix()
        .into_iter()
        .next()
        .expect("the fanout matrix is non-empty")
        .with_seed(MATRIX_SEEDS[0]);
    let engine = FanoutEngine::new(fanout);
    let sync = engine.run_sync();
    let shared = engine.run_udp_shared();
    assert_same_outcome(
        "fanout @ shared carrier",
        "shared-udp fanout",
        &sync.trace.canonical_text(),
        &sync.report,
        &shared.trace.canonical_text(),
        &shared.report,
    );
}

#[test]
fn batch_size_does_not_change_the_closed_loop() {
    // PR 1's batched data plane must be invisible to the control plane:
    // per-packet and batch-32 threaded chains produce the same trace.
    let spec = ScenarioSpec::handoff_cliff().with_packets(1_200);
    let per_packet = ScenarioEngine::new(spec.clone().with_batch_size(1)).run_threaded();
    let batched = ScenarioEngine::new(spec.with_batch_size(32)).run_threaded();
    assert_eq!(per_packet.trace.canonical_text(), batched.trace.canonical_text());
    assert_eq!(per_packet.report, batched.report);
}

#[test]
fn scheduler_shape_does_not_change_the_closed_loop() {
    // The sharded runtime must be invisible to the control plane too:
    // worker count and step batch size are pure execution details, so a
    // 1-shard batch-1 pool and an 8-shard batch-32 pool produce the same
    // trace as each other (and, via the matrix test, as the sync run).
    use rapidware::engine::RuntimeApplier;
    let spec = ScenarioSpec::handoff_cliff().with_packets(1_200);
    let engine = ScenarioEngine::new(spec);
    let window = 50usize;
    let single = engine.run_with(&mut RuntimeApplier::new(1, 1, window));
    let wide = engine.run_with(&mut RuntimeApplier::new(8, 32, window));
    assert_eq!(single.trace.canonical_text(), wide.trace.canonical_text());
    assert_eq!(single.report, wide.report);
}
