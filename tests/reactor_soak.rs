//! The readiness-reactor soak suite: **1000 concurrent UDP sessions
//! multiplexed over 4 shared carrier sockets**, all of them serviced by a
//! fixed 4-worker pool plus one reactor thread — zero per-session threads,
//! zero pump threads.
//!
//! What it proves about the shared-socket data plane:
//!
//! * **scale without threads** — the process thread count is *flat* as the
//!   session count grows from 100 to 1000, and no `udp-ingress-*` /
//!   `udp-egress-*` pump thread ever exists;
//! * **no deadlock** — the whole soak (window-paced sends, non-blocking
//!   drains) finishes inside a hard wall-clock bound enforced by a
//!   watchdog;
//! * **demux correctness** — every session's packets come back on that
//!   session's app-side route only, in order, and per-session
//!   `sent == delivered + lost + undelivered` holds from independent
//!   counters;
//! * **per-stream FIN routing** — closing one session's input ends exactly
//!   that session's app-side stream; its ~250 socket-mates on the same
//!   carrier keep flowing until their own FIN;
//! * **clean teardown** — after the proxy shuts down, the runtime reports
//!   **zero** live tasks and the reactor thread is gone.

mod common;

use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

use rapidware::packet::{Packet, PacketKind, SeqNo, StreamId};
use rapidware::proxy::{
    Proxy, SharedUdpSessionConfig, SharedUdpSessionHandle, SharedUdpStreamConfig,
    SharedUdpStreamHandle, UdpCarrierConfig,
};
use rapidware::runtime::RuntimeConfig;
use rapidware::streams::{DetachableReceiver, TryRecvError};
use rapidware::transport::{SharedDrain, SharedUdpIngress, UdpConfig};

use common::{assert_conservation, env_profile, watchdog};

const SHARDS: usize = 4;
const CARRIERS: usize = 4;
const BATCH_SIZE: usize = 8;
const PIPE_CAPACITY: usize = 64;
/// Sessions per send burst: bounds datagrams in flight per carrier socket
/// well under the kernel receive buffer, so loopback stays lossless.
const CHUNK: usize = 64;
/// Packets per session per round; ROUNDS * WINDOW packets per session total.
const WINDOW: u64 = 5;
const ROUNDS: u64 = 6;
const SOAK_WALL_CLOCK: Duration = Duration::from_secs(240);
const STALL_BOUND: Duration = Duration::from_secs(30);

/// Current thread count of the test process (Linux: one entry per task).
fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task").expect("procfs is available on CI").count()
}

/// Names of every live thread in the test process.
fn thread_names() -> Vec<String> {
    std::fs::read_dir("/proc/self/task")
        .expect("procfs is available on CI")
        .filter_map(|entry| {
            let path = entry.ok()?.path().join("comm");
            Some(std::fs::read_to_string(path).ok()?.trim().to_string())
        })
        .collect()
}

/// The proxy-side input of one soak flow: the soak alternates between the
/// flat shared-stream placement and the pooled shared-session placement.
enum FlowHandle {
    Stream(SharedUdpStreamHandle),
    Session(SharedUdpSessionHandle),
}

impl FlowHandle {
    fn close_input(&self) {
        match self {
            FlowHandle::Stream(handle) => handle.close_input(),
            FlowHandle::Session(handle) => handle.close_input(),
        }
    }
}

/// One multiplexed session as the soak driver sees it: its stream id, the
/// carrier it rides, its app-side route, and independent delivery tallies.
struct Flow {
    name: String,
    stream: StreamId,
    carrier: usize,
    handle: FlowHandle,
    route: DetachableReceiver<Packet>,
    sent: u64,
    delivered: u64,
    next_expected: u64,
    eof: bool,
}

fn flow_packet(stream: StreamId, seq: u64) -> Packet {
    Packet::new(stream, SeqNo::new(seq), PacketKind::AudioData, vec![(seq % 251) as u8; 8])
}

/// Drains every app-side carrier socket until momentarily empty.
fn drain_app(apps: &[SharedUdpIngress]) {
    for app in apps {
        while app.drain_batch() == SharedDrain::MoreReady {}
    }
}

/// Drains one flow's route, checking per-session order.
fn drain_flow(flow: &mut Flow) {
    while let Ok(batch) = flow.route.try_recv_up_to(BATCH_SIZE) {
        for packet in &batch {
            assert_eq!(packet.stream(), flow.stream, "{}: foreign packet on route", flow.name);
            assert_eq!(
                packet.seq().value(),
                flow.next_expected,
                "{}: delivered out of order",
                flow.name
            );
            flow.next_expected += 1;
        }
        flow.delivered += batch.len() as u64;
    }
}

/// The whole soak body; runs on a watchdog-supervised thread.
#[allow(clippy::too_many_lines)]
fn run_soak() {
    let session_count = env_profile("RAPIDWARE_REACTOR_SESSIONS", 1000);
    let checkpoint = session_count.min(100);

    let mut proxy = Proxy::with_runtime(
        "reactor-soak",
        RuntimeConfig::new(SHARDS, BATCH_SIZE).with_pipe_capacity(PIPE_CAPACITY),
    );
    let udp_config = UdpConfig::default().with_capacity(PIPE_CAPACITY);
    let apps: Vec<SharedUdpIngress> = (0..CARRIERS)
        .map(|_| {
            SharedUdpIngress::bind("127.0.0.1:0", &udp_config)
                .expect("binding an app-side shared socket")
        })
        .collect();
    let mut carrier_addrs: Vec<SocketAddr> = Vec::with_capacity(CARRIERS);
    for index in 0..CARRIERS {
        let handle = proxy
            .add_udp_carrier(
                format!("carrier-{index}"),
                UdpCarrierConfig::new().with_capacity(PIPE_CAPACITY).with_batch_size(BATCH_SIZE),
            )
            .expect("fresh carrier names are free");
        carrier_addrs.push(handle.ingress_addr());
    }

    // Build the sessions: even indices as shared-socket streams, odd ones
    // as shared-socket pooled sessions with one lane — both demux paths at
    // scale.  Capture the thread count at the checkpoint so growth past it
    // is provably thread-free.
    let mut flows: Vec<Flow> = Vec::with_capacity(session_count);
    let mut threads_at_checkpoint = 0usize;
    for index in 0..session_count {
        let carrier = index % CARRIERS;
        let stream = StreamId::new(u32::try_from(index + 1).expect("session count fits in u32"));
        let name = format!("flow-{index}");
        let route = apps[carrier].open_stream(stream).expect("stream ids are unique");
        let handle = if index % 2 == 0 {
            FlowHandle::Stream(
                proxy
                    .add_stream_udp_shared(
                        &name,
                        SharedUdpStreamConfig::on_carrier(
                            format!("carrier-{carrier}"),
                            apps[carrier].local_addr(),
                        )
                        .with_stream(stream)
                        .with_capacity(PIPE_CAPACITY)
                        .with_batch_size(BATCH_SIZE),
                    )
                    .expect("fresh shared stream"),
            )
        } else {
            FlowHandle::Session(
                proxy
                    .add_session_udp_shared(
                        &name,
                        SharedUdpSessionConfig::on_carrier(format!("carrier-{carrier}"))
                            .with_stream(stream)
                            .with_lane("out", apps[carrier].local_addr())
                            .with_capacity(PIPE_CAPACITY)
                            .with_batch_size(BATCH_SIZE),
                    )
                    .expect("fresh shared session"),
            )
        };
        flows.push(Flow {
            name,
            stream,
            carrier,
            handle,
            route,
            sent: 0,
            delivered: 0,
            next_expected: 0,
            eof: false,
        });
        if index + 1 == checkpoint {
            threads_at_checkpoint = thread_count();
        }
    }

    // Zero per-session threads: the 10x session growth after the
    // checkpoint must not have spawned a single thread.
    assert_eq!(
        thread_count(),
        threads_at_checkpoint,
        "thread count must stay flat from {checkpoint} to {session_count} sessions"
    );
    let runtime = proxy.runtime().expect("the soak proxy runs a pool").clone();
    assert_eq!(runtime.reactor_sockets(), 2 * CARRIERS, "one readable + one writable registration per carrier");

    // Window-paced traffic: per chunk of sessions, burst WINDOW datagrams
    // each, then drain until the chunk has caught up.  The barrier bounds
    // in-flight data (lossless loopback) and proves continuous progress.
    let tx = UdpSocket::bind("127.0.0.1:0").expect("binding the app-side send socket");
    let mut scratch = Vec::new();
    for _ in 0..ROUNDS {
        for chunk in flows.chunks_mut(CHUNK) {
            for flow in chunk.iter_mut() {
                for _ in 0..WINDOW {
                    let packet = flow_packet(flow.stream, flow.sent);
                    packet.encode_into(&mut scratch);
                    tx.send_to(&scratch, carrier_addrs[flow.carrier])
                        .expect("loopback sends do not fail");
                    flow.sent += 1;
                }
            }
            let deadline = Instant::now() + STALL_BOUND;
            loop {
                drain_app(&apps);
                let mut caught_up = true;
                for flow in chunk.iter_mut() {
                    drain_flow(flow);
                    caught_up &= flow.delivered == flow.sent;
                }
                if caught_up {
                    break;
                }
                assert!(Instant::now() < deadline, "a session chunk stalled mid-round");
                std::thread::yield_now();
            }
        }
    }

    // By now every thread has been scheduled (traffic crossed all of
    // them), so thread *names* are reliable: the process runs exactly one
    // reactor thread and the fixed shard workers, and no `udp-*` pump
    // thread exists at any scale.  (A freshly spawned thread shows its
    // parent's name until its first time slice, which is why this check
    // sits after the traffic rounds rather than right after setup.)
    let names = thread_names();
    assert!(
        !names.iter().any(|name| name.starts_with("udp-")),
        "shared carriers must not spawn pump threads: {names:?}"
    );
    assert_eq!(
        names.iter().filter(|name| name.starts_with("rapidware-react")).count(),
        1,
        "exactly one reactor thread services all carriers: {names:?}"
    );
    assert_eq!(
        names.iter().filter(|name| name.starts_with("rapidware-shard")).count(),
        SHARDS,
        "a fixed worker pool, no matter the session count: {names:?}"
    );

    // Staggered FIN: close one session's input first and drain it to EOF
    // while every socket-mate is still open — per-stream FIN must not
    // leak to the neighbours.
    flows[0].handle.close_input();
    let deadline = Instant::now() + STALL_BOUND;
    while !flows[0].eof {
        drain_app(&apps);
        flows[0].poll_eof();
        assert!(Instant::now() < deadline, "first FIN never reached its route");
        std::thread::yield_now();
    }
    for flow in &flows[1..] {
        assert!(
            !matches!(flow.route.try_recv(), Err(TryRecvError::Eof | TryRecvError::Closed)),
            "{}: a neighbour's FIN ended this stream",
            flow.name
        );
    }

    // Teardown: EOF every remaining session, drain all routes dry, and
    // check per-session conservation from independent counters.
    for flow in &flows[1..] {
        flow.handle.close_input();
    }
    let deadline = Instant::now() + STALL_BOUND;
    loop {
        drain_app(&apps);
        let mut all_ended = true;
        for flow in flows.iter_mut().filter(|flow| !flow.eof) {
            flow.poll_eof();
            all_ended &= flow.eof;
        }
        if all_ended {
            break;
        }
        assert!(Instant::now() < deadline, "a session never delivered its FIN");
        std::thread::yield_now();
    }
    let total = ROUNDS * WINDOW;
    for flow in &flows {
        let undelivered = flow.route.available() as u64;
        assert_conservation(&flow.name, flow.sent, flow.delivered, 0, undelivered);
        assert_eq!(flow.sent, total);
        assert_eq!(flow.next_expected, total, "{}: delivered set has gaps", flow.name);
    }

    // The carriers saw exactly the soak's traffic: all datagrams routed,
    // none to unknown streams, none dropped.
    let status = proxy.status();
    let shared: Vec<_> = status.transports.iter().filter(|t| t.shared).collect();
    assert_eq!(shared.len(), CARRIERS);
    let rx_packets: u64 = shared.iter().map(|t| t.ingress.rx_packets).sum();
    assert_eq!(rx_packets, total * session_count as u64, "every datagram demuxed to a session");
    for transport in &shared {
        assert_eq!(transport.unknown_streams, 0, "{}: unknown-stream drops", transport.name);
        assert_eq!(transport.ingress.dropped, 0, "{}: ingress dropped frames", transport.name);
        assert_eq!(transport.egress.dropped, 0, "{}: egress dropped frames", transport.name);
    }

    // Clean shutdown: no leaked tasks, reactor thread gone.
    proxy.shutdown().expect("clean proxy shutdown");
    assert_eq!(runtime.live_tasks(), 0, "leaked shard tasks after proxy shutdown");
    assert!(
        !thread_names().iter().any(|name| name.starts_with("rapidware-react")),
        "the reactor thread must stop with the proxy"
    );
}

impl Flow {
    /// Drains the route and records EOF once the FIN lands.
    fn poll_eof(&mut self) {
        drain_flow(self);
        if matches!(self.route.try_recv(), Err(TryRecvError::Eof | TryRecvError::Closed)) {
            self.eof = true;
        }
    }
}

#[test]
fn soak_1000_sessions_over_4_shared_sockets_on_a_4_worker_pool() {
    watchdog("reactor-soak", SOAK_WALL_CLOCK, run_soak);
}
