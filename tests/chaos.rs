//! The chaos suite: deliberate mid-run faults against the runtime and the
//! transport, with conservation as the survival bar.
//!
//! Three fault families, matching the hooks the production crates expose
//! behind `#[cfg(any(test, feature = "chaos"))]`:
//!
//! * **shard stalls** — [`Runtime::chaos_stall_shard`] wedges one worker
//!   with a fixed pre-step sleep while sessions churn lanes under load;
//!   work stealing must keep every stream flowing, per-lane conservation
//!   (`sent == delivered + lost + undelivered`) must hold, and shutdown
//!   must leak **zero** tasks;
//! * **socket drop-outs** — [`ImpairedUdp::set_plan`] swaps a total
//!   blackout in (and back out) mid-stream; every datagram is either
//!   forwarded and received, or counted dropped — never silently lost
//!   (`received ⇒ counted`);
//! * **reordered and duplicated control markers** — non-FIN control frames
//!   are duplicated and rode through a reordering relay; every data frame
//!   still arrives exactly once, every marker copy is delivered (not
//!   deduplicated into silence), and a duplicated FIN still ends the
//!   stream cleanly exactly once.
//!
//! Everything runs under a watchdog: a wedged pool or socket fails fast
//! instead of hanging CI.

mod common;

use std::net::UdpSocket;
use std::time::Duration;

use rapidware::packet::{Packet, PacketKind, SeqNo, StreamId};
use rapidware::proxy::FilterSpec;
use rapidware::runtime::{Runtime, RuntimeConfig};
use rapidware::transport::{
    fin_packet, ImpairedStats, ImpairedUdp, ImpairmentPhase, ImpairmentPlan, UdpConfig, UdpIngress,
};

use common::{
    assert_conservation, audio_packet, drain_count_to_eof, send_encoded, watchdog, WATCHDOG,
};

const BATCH_SIZE: usize = 16;

// ---------------------------------------------------------------------------
// Shard stalls.
// ---------------------------------------------------------------------------

#[test]
fn a_stalled_shard_never_breaks_conservation_or_leaks_tasks() {
    watchdog("chaos-shard-stall", WATCHDOG, || {
        const SESSIONS: usize = 8;
        const PHASES: u64 = 4;
        const PACKETS_PER_PHASE: u64 = 100;
        let runtime = Runtime::start(RuntimeConfig::new(4, BATCH_SIZE).with_pipe_capacity(32));

        struct Stream {
            session: rapidware::runtime::PooledSession,
            name: String,
            backlog: Vec<Packet>,
            base_rx: rapidware::streams::DetachableReceiver<Packet>,
            base_delivered: u64,
            churn_rx: Option<rapidware::streams::DetachableReceiver<Packet>>,
            churn_name: String,
            churn_delivered: u64,
        }

        let mut streams: Vec<Stream> = (0..SESSIONS)
            .map(|index| {
                let name = format!("chaos-{index}");
                let session = runtime.add_session(&name);
                let base_rx = session.add_lane("base").expect("fresh session");
                Stream {
                    session,
                    name,
                    backlog: Vec::new(),
                    base_rx,
                    base_delivered: 0,
                    churn_rx: None,
                    churn_name: String::new(),
                    churn_delivered: 0,
                }
            })
            .collect();

        let mut next_seq = 0u64;
        for phase in 0..PHASES {
            // The fault schedule: the stall moves to a different shard each
            // phase (including the one hosting the fanout tasks), with one
            // clean phase to show recovery.
            runtime.chaos_clear();
            if phase != PHASES - 1 {
                runtime.chaos_stall_shard(phase as usize % 4, Duration::from_micros(300));
            }
            // Lane churn while stalled: retire last phase's lossy lane,
            // grow this phase's.
            for s in streams.iter_mut() {
                if let Some(rx) = s.churn_rx.take() {
                    s.session.remove_lane(&s.churn_name).expect("churn lane exists");
                    s.churn_delivered += drain_count_to_eof(&rx, BATCH_SIZE);
                    let stats = s.session.lane_stats(&s.churn_name).expect("retired stats");
                    assert_conservation(
                        &format!("{}/{}", s.name, s.churn_name),
                        stats.packets_in,
                        s.churn_delivered,
                        stats.packets_in - stats.packets_out,
                        rx.available() as u64,
                    );
                    s.churn_delivered = 0;
                }
                s.churn_name = format!("churn-{phase}");
                let rx = s.session.add_lane(&s.churn_name).expect("unique per phase");
                s.session
                    .insert_lane_filter(
                        &s.churn_name,
                        0,
                        &FilterSpec::new("drop-every").with_param("n", "4"),
                    )
                    .expect("drop-every is registered");
                s.churn_rx = Some(rx);
                s.backlog.extend((next_seq..next_seq + PACKETS_PER_PHASE).map(|seq| {
                    audio_packet(seq, 8)
                }));
            }
            next_seq += PACKETS_PER_PHASE;
            // Pump non-blockingly until the phase's traffic is in: a stall
            // that wedged the pool shows up as no-progress under the
            // watchdog, not as a blocked test.
            loop {
                let mut all_sent = true;
                for s in streams.iter_mut() {
                    if !s.backlog.is_empty() {
                        let pending = std::mem::take(&mut s.backlog);
                        s.backlog =
                            s.session.input().try_send_batch(pending).expect("inputs stay open");
                    }
                    while let Ok(batch) = s.base_rx.try_recv_up_to(BATCH_SIZE) {
                        s.base_delivered += batch.len() as u64;
                    }
                    if let Some(rx) = s.churn_rx.as_ref() {
                        while let Ok(batch) = rx.try_recv_up_to(BATCH_SIZE) {
                            s.churn_delivered += batch.len() as u64;
                        }
                    }
                    all_sent &= s.backlog.is_empty();
                }
                if all_sent {
                    break;
                }
                std::thread::yield_now();
            }
        }
        assert!(
            runtime.chaos_stalls_served() > 0,
            "the configured stalls never actually fired"
        );
        runtime.chaos_clear();

        // Teardown: every lane must conserve, the pool must come up empty.
        let total = PHASES * PACKETS_PER_PHASE;
        for mut s in streams {
            s.session.close_input();
            s.base_delivered += drain_count_to_eof(&s.base_rx, BATCH_SIZE);
            if let Some(rx) = s.churn_rx.take() {
                s.churn_delivered += drain_count_to_eof(&rx, BATCH_SIZE);
                let stats = s.session.lane_stats(&s.churn_name).expect("lane stats");
                assert_conservation(
                    &format!("{}/{}", s.name, s.churn_name),
                    stats.packets_in,
                    s.churn_delivered,
                    stats.packets_in - stats.packets_out,
                    rx.available() as u64,
                );
            }
            assert_eq!(
                s.base_delivered, total,
                "{}: the lossless whole-life lane must deliver every packet",
                s.name
            );
            s.session.shutdown().expect("clean session shutdown");
        }
        assert_eq!(runtime.live_tasks(), 0, "stall chaos leaked shard tasks");
        runtime.shutdown().expect("worker pool joins cleanly");
    });
}

// ---------------------------------------------------------------------------
// Socket drop-outs.
// ---------------------------------------------------------------------------

/// Blocks until the relay has accounted for `expected` data frames
/// (forwarded + dropped + delayed), so plan swaps land on a quiescent
/// relay and the test stays deterministic.
fn await_relay_accounted(stats: &ImpairedStats, expected: u64) {
    while stats.forwarded() + stats.dropped() + stats.delayed() < expected {
        std::thread::yield_now();
    }
}

#[test]
fn a_mid_run_socket_blackout_is_counted_never_silent() {
    watchdog("chaos-socket-blackout", WATCHDOG, || {
        const BEFORE: u64 = 100;
        const DURING: u64 = 50;
        const AFTER: u64 = 100;
        let ingress = UdpIngress::bind("127.0.0.1:0", &UdpConfig::default()).unwrap();
        let relay = ImpairedUdp::spawn(ingress.local_addr(), ImpairmentPlan::clean(7)).unwrap();
        let stats = relay.stats();
        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();

        for seq in 0..BEFORE {
            send_encoded(&tx, relay.local_addr(), &audio_packet(seq, 64));
        }
        await_relay_accounted(&stats, BEFORE);

        // Drop-out: a total blackout phase edited in while the stream runs.
        relay.set_plan(ImpairmentPlan::new(7, vec![(0, ImpairmentPhase::drop_rate(1.0))]));
        assert_eq!(relay.plan().phase_at(0).drop_rate, 1.0);
        for seq in BEFORE..BEFORE + DURING {
            send_encoded(&tx, relay.local_addr(), &audio_packet(seq, 64));
        }
        await_relay_accounted(&stats, BEFORE + DURING);
        assert_eq!(stats.dropped(), DURING, "the blackout must count every loss");

        // Recovery: the original plan comes back; traffic flows again.
        relay.set_plan(ImpairmentPlan::clean(7));
        for seq in BEFORE + DURING..BEFORE + DURING + AFTER {
            send_encoded(&tx, relay.local_addr(), &audio_packet(seq, 64));
        }
        await_relay_accounted(&stats, BEFORE + DURING + AFTER);
        send_encoded(&tx, relay.local_addr(), &fin_packet());

        // received ⇒ counted: everything the relay forwarded reaches the
        // application, everything else is in `dropped`, and the two sides
        // add back up to the send count.
        let mut received = Vec::new();
        loop {
            match ingress.recv_timeout(Duration::from_millis(50)) {
                Ok(packet) => received.push(packet),
                Err(rapidware::streams::TryRecvError::Empty) => continue,
                Err(_) => break,
            }
        }
        assert_eq!(received.len() as u64, stats.forwarded(), "forwarded ⇒ received");
        assert_conservation(
            "blackout relay",
            BEFORE + DURING + AFTER,
            stats.forwarded(),
            stats.dropped(),
            0,
        );
        let seqs: Vec<u64> = received.iter().map(|p| p.seq().value()).collect();
        let expected: Vec<u64> =
            (0..BEFORE).chain(BEFORE + DURING..BEFORE + DURING + AFTER).collect();
        assert_eq!(seqs, expected, "survivors arrive in order with the blackout window cut out");
        assert_eq!(stats.control(), 1, "the FIN passed the relay untouched");
    });
}

// ---------------------------------------------------------------------------
// Reordered and duplicated control markers.
// ---------------------------------------------------------------------------

/// A non-FIN control marker (the quiescence-marker shape the engine uses).
fn marker(id: u64) -> Packet {
    Packet::new(StreamId::new(u32::MAX), SeqNo::new(id), PacketKind::Control, Vec::new())
}

#[test]
fn reordered_and_duplicated_markers_conserve_every_data_frame() {
    watchdog("chaos-marker-storm", WATCHDOG, || {
        const TOTAL: u64 = 120;
        const MARKER_EVERY: u64 = 30;
        let ingress = UdpIngress::bind("127.0.0.1:0", &UdpConfig::default()).unwrap();
        // The relay holds every 5th data frame back 3 frames — a
        // deterministic reordering — while control frames pass immediately
        // (flushing any held frames first, so no data crosses a marker).
        let relay = ImpairedUdp::spawn(
            ingress.local_addr(),
            ImpairmentPlan::new(11, vec![(0, ImpairmentPhase::delay(5, 3))]),
        )
        .unwrap();
        let stats = relay.stats();
        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();

        let mut markers_sent = 0u64;
        for seq in 0..TOTAL {
            // Duplicated markers, and reordered relative to the stream: the
            // marker for a window is sent *before* that window's last data
            // frame, then again after it.
            if seq % MARKER_EVERY == MARKER_EVERY - 1 {
                send_encoded(&tx, relay.local_addr(), &marker(seq / MARKER_EVERY));
                markers_sent += 1;
            }
            send_encoded(&tx, relay.local_addr(), &audio_packet(seq, 64));
            if seq % MARKER_EVERY == MARKER_EVERY - 1 {
                send_encoded(&tx, relay.local_addr(), &marker(seq / MARKER_EVERY));
                markers_sent += 1;
            }
        }
        await_relay_accounted(&stats, TOTAL);
        // A duplicated FIN: the first ends the stream, the second must be
        // absorbed without wedging or reopening anything.
        send_encoded(&tx, relay.local_addr(), &fin_packet());
        send_encoded(&tx, relay.local_addr(), &fin_packet());

        let mut data = Vec::new();
        let mut markers_received = 0u64;
        loop {
            match ingress.recv_timeout(Duration::from_millis(50)) {
                Ok(packet) if packet.kind() == PacketKind::Control => markers_received += 1,
                Ok(packet) => data.push(packet),
                Err(rapidware::streams::TryRecvError::Empty) => continue,
                Err(_) => break,
            }
        }
        // received ⇒ counted: every data frame exactly once (the delays
        // reorder, never drop), every marker copy delivered, none invented.
        let mut seqs: Vec<u64> = data.iter().map(|p| p.seq().value()).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..TOTAL).collect::<Vec<_>>(), "each data frame exactly once");
        assert_eq!(markers_received, markers_sent, "every duplicated marker copy is delivered");
        assert!(stats.delayed() > 0, "the reordering schedule never actually held a frame");
        assert_conservation("marker relay", TOTAL, stats.forwarded(), stats.dropped(), 0);
        assert_eq!(stats.dropped(), 0);
        // The duplicate FIN arrived after the pipe closed; nothing to do,
        // nothing wedged — the drain loop above already returned on EOF.
    });
}
