//! The chaos suite: deliberate mid-run faults against the runtime and the
//! transport, with conservation as the survival bar.
//!
//! Three fault families, matching the hooks the production crates expose
//! behind `#[cfg(any(test, feature = "chaos"))]`:
//!
//! * **shard stalls** — [`Runtime::chaos_stall_shard`] wedges one worker
//!   with a fixed pre-step sleep while sessions churn lanes under load;
//!   work stealing must keep every stream flowing, per-lane conservation
//!   (`sent == delivered + lost + undelivered`) must hold, and shutdown
//!   must leak **zero** tasks;
//! * **socket drop-outs** — [`ImpairedUdp::set_plan`] swaps a total
//!   blackout in (and back out) mid-stream; every datagram is either
//!   forwarded and received, or counted dropped — never silently lost
//!   (`received ⇒ counted`).  The same blackout also runs against a
//!   *shared* reactor-driven carrier socket multiplexing four streams:
//!   per-stream conservation must close, and the outage must not poison a
//!   single socket-mate's routing, ordering, or FIN;
//! * **reordered and duplicated control markers** — non-FIN control frames
//!   are duplicated and rode through a reordering relay; every data frame
//!   still arrives exactly once, every marker copy is delivered (not
//!   deduplicated into silence), and a duplicated FIN still ends the
//!   stream cleanly exactly once.
//!
//! Everything runs under a watchdog: a wedged pool or socket fails fast
//! instead of hanging CI.

mod common;

use std::net::UdpSocket;
use std::time::{Duration, Instant};

use rapidware::filters::{rekey_packet, EncryptFilter, Filter};
use rapidware::packet::{Packet, PacketKind, SeqNo, StreamId};
use rapidware::proxy::{FilterSpec, Proxy, SharedUdpStreamConfig, UdpCarrierConfig};
use rapidware::runtime::{Runtime, RuntimeConfig};
use rapidware::streams::TryRecvError;
use rapidware::transport::{
    fin_packet, ImpairedStats, ImpairedUdp, ImpairmentPhase, ImpairmentPlan, SharedDrain,
    SharedUdpIngress, UdpConfig, UdpIngress,
};

use common::{
    assert_conservation, audio_packet, drain_count_to_eof, drain_to_eof, send_encoded, watchdog,
    WATCHDOG,
};

const BATCH_SIZE: usize = 16;

// ---------------------------------------------------------------------------
// Shard stalls.
// ---------------------------------------------------------------------------

#[test]
fn a_stalled_shard_never_breaks_conservation_or_leaks_tasks() {
    watchdog("chaos-shard-stall", WATCHDOG, || {
        const SESSIONS: usize = 8;
        const PHASES: u64 = 4;
        const PACKETS_PER_PHASE: u64 = 100;
        let runtime = Runtime::start(RuntimeConfig::new(4, BATCH_SIZE).with_pipe_capacity(32));

        struct Stream {
            session: rapidware::runtime::PooledSession,
            name: String,
            backlog: Vec<Packet>,
            base_rx: rapidware::streams::DetachableReceiver<Packet>,
            base_delivered: u64,
            churn_rx: Option<rapidware::streams::DetachableReceiver<Packet>>,
            churn_name: String,
            churn_delivered: u64,
        }

        let mut streams: Vec<Stream> = (0..SESSIONS)
            .map(|index| {
                let name = format!("chaos-{index}");
                let session = runtime.add_session(&name);
                let base_rx = session.add_lane("base").expect("fresh session");
                Stream {
                    session,
                    name,
                    backlog: Vec::new(),
                    base_rx,
                    base_delivered: 0,
                    churn_rx: None,
                    churn_name: String::new(),
                    churn_delivered: 0,
                }
            })
            .collect();

        let mut next_seq = 0u64;
        for phase in 0..PHASES {
            // The fault schedule: the stall moves to a different shard each
            // phase (including the one hosting the fanout tasks), with one
            // clean phase to show recovery.
            runtime.chaos_clear();
            if phase != PHASES - 1 {
                runtime.chaos_stall_shard(phase as usize % 4, Duration::from_micros(300));
            }
            // Lane churn while stalled: retire last phase's lossy lane,
            // grow this phase's.
            for s in streams.iter_mut() {
                if let Some(rx) = s.churn_rx.take() {
                    s.session.remove_lane(&s.churn_name).expect("churn lane exists");
                    s.churn_delivered += drain_count_to_eof(&rx, BATCH_SIZE);
                    let stats = s.session.lane_stats(&s.churn_name).expect("retired stats");
                    assert_conservation(
                        &format!("{}/{}", s.name, s.churn_name),
                        stats.packets_in,
                        s.churn_delivered,
                        stats.packets_in - stats.packets_out,
                        rx.available() as u64,
                    );
                    s.churn_delivered = 0;
                }
                s.churn_name = format!("churn-{phase}");
                let rx = s.session.add_lane(&s.churn_name).expect("unique per phase");
                s.session
                    .insert_lane_filter(
                        &s.churn_name,
                        0,
                        &FilterSpec::new("drop-every").with_param("n", "4"),
                    )
                    .expect("drop-every is registered");
                s.churn_rx = Some(rx);
                s.backlog.extend((next_seq..next_seq + PACKETS_PER_PHASE).map(|seq| {
                    audio_packet(seq, 8)
                }));
            }
            next_seq += PACKETS_PER_PHASE;
            // Pump non-blockingly until the phase's traffic is in: a stall
            // that wedged the pool shows up as no-progress under the
            // watchdog, not as a blocked test.
            loop {
                let mut all_sent = true;
                for s in streams.iter_mut() {
                    if !s.backlog.is_empty() {
                        let pending = std::mem::take(&mut s.backlog);
                        s.backlog =
                            s.session.input().try_send_batch(pending).expect("inputs stay open");
                    }
                    while let Ok(batch) = s.base_rx.try_recv_up_to(BATCH_SIZE) {
                        s.base_delivered += batch.len() as u64;
                    }
                    if let Some(rx) = s.churn_rx.as_ref() {
                        while let Ok(batch) = rx.try_recv_up_to(BATCH_SIZE) {
                            s.churn_delivered += batch.len() as u64;
                        }
                    }
                    all_sent &= s.backlog.is_empty();
                }
                if all_sent {
                    break;
                }
                std::thread::yield_now();
            }
        }
        assert!(
            runtime.chaos_stalls_served() > 0,
            "the configured stalls never actually fired"
        );
        runtime.chaos_clear();

        // Teardown: every lane must conserve, the pool must come up empty.
        let total = PHASES * PACKETS_PER_PHASE;
        for mut s in streams {
            s.session.close_input();
            s.base_delivered += drain_count_to_eof(&s.base_rx, BATCH_SIZE);
            if let Some(rx) = s.churn_rx.take() {
                s.churn_delivered += drain_count_to_eof(&rx, BATCH_SIZE);
                let stats = s.session.lane_stats(&s.churn_name).expect("lane stats");
                assert_conservation(
                    &format!("{}/{}", s.name, s.churn_name),
                    stats.packets_in,
                    s.churn_delivered,
                    stats.packets_in - stats.packets_out,
                    rx.available() as u64,
                );
            }
            assert_eq!(
                s.base_delivered, total,
                "{}: the lossless whole-life lane must deliver every packet",
                s.name
            );
            s.session.shutdown().expect("clean session shutdown");
        }
        assert_eq!(runtime.live_tasks(), 0, "stall chaos leaked shard tasks");
        runtime.shutdown().expect("worker pool joins cleanly");
    });
}

// ---------------------------------------------------------------------------
// Socket drop-outs.
// ---------------------------------------------------------------------------

/// Blocks until the relay has accounted for `expected` data frames
/// (forwarded + dropped + delayed), so plan swaps land on a quiescent
/// relay and the test stays deterministic.
fn await_relay_accounted(stats: &ImpairedStats, expected: u64) {
    while stats.forwarded() + stats.dropped() + stats.delayed() < expected {
        std::thread::yield_now();
    }
}

#[test]
fn a_mid_run_socket_blackout_is_counted_never_silent() {
    watchdog("chaos-socket-blackout", WATCHDOG, || {
        const BEFORE: u64 = 100;
        const DURING: u64 = 50;
        const AFTER: u64 = 100;
        let ingress = UdpIngress::bind("127.0.0.1:0", &UdpConfig::default()).unwrap();
        let relay = ImpairedUdp::spawn(ingress.local_addr(), ImpairmentPlan::clean(7)).unwrap();
        let stats = relay.stats();
        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();

        for seq in 0..BEFORE {
            send_encoded(&tx, relay.local_addr(), &audio_packet(seq, 64));
        }
        await_relay_accounted(&stats, BEFORE);

        // Drop-out: a total blackout phase edited in while the stream runs.
        relay.set_plan(ImpairmentPlan::new(7, vec![(0, ImpairmentPhase::drop_rate(1.0))]));
        assert_eq!(relay.plan().phase_at(0).drop_rate, 1.0);
        for seq in BEFORE..BEFORE + DURING {
            send_encoded(&tx, relay.local_addr(), &audio_packet(seq, 64));
        }
        await_relay_accounted(&stats, BEFORE + DURING);
        assert_eq!(stats.dropped(), DURING, "the blackout must count every loss");

        // Recovery: the original plan comes back; traffic flows again.
        relay.set_plan(ImpairmentPlan::clean(7));
        for seq in BEFORE + DURING..BEFORE + DURING + AFTER {
            send_encoded(&tx, relay.local_addr(), &audio_packet(seq, 64));
        }
        await_relay_accounted(&stats, BEFORE + DURING + AFTER);
        send_encoded(&tx, relay.local_addr(), &fin_packet());

        // received ⇒ counted: everything the relay forwarded reaches the
        // application, everything else is in `dropped`, and the two sides
        // add back up to the send count.
        let mut received = Vec::new();
        loop {
            match ingress.recv_timeout(Duration::from_millis(50)) {
                Ok(packet) => received.push(packet),
                Err(rapidware::streams::TryRecvError::Empty) => continue,
                Err(_) => break,
            }
        }
        assert_eq!(received.len() as u64, stats.forwarded(), "forwarded ⇒ received");
        assert_conservation(
            "blackout relay",
            BEFORE + DURING + AFTER,
            stats.forwarded(),
            stats.dropped(),
            0,
        );
        let seqs: Vec<u64> = received.iter().map(|p| p.seq().value()).collect();
        let expected: Vec<u64> =
            (0..BEFORE).chain(BEFORE + DURING..BEFORE + DURING + AFTER).collect();
        assert_eq!(seqs, expected, "survivors arrive in order with the blackout window cut out");
        assert_eq!(stats.control(), 1, "the FIN passed the relay untouched");
    });
}

#[test]
fn a_blackout_on_a_shared_carrier_is_counted_and_poisons_no_stream() {
    // The shared-socket variant of the blackout: four streams multiplexed
    // over ONE reactor-driven carrier socket, the blackout edited into an
    // impairment relay in front of it mid-run.  Every datagram the relay
    // forwarded must reach exactly its own stream's app-side route, in
    // order; every datagram it dropped must be counted; and per-stream
    // `sent == delivered + lost + undelivered` must close from independent
    // tallies.  The carrier itself never drops, never mis-routes, and every
    // stream survives its socket-mates' outage window identically.
    watchdog("chaos-shared-blackout", WATCHDOG, || {
        const STREAMS: u32 = 4;
        const BEFORE: u64 = 40;
        const DURING: u64 = 20;
        const AFTER: u64 = 40;
        const CAPACITY: usize = 256;
        const CARRIER: &str = "carrier";

        let mut proxy = Proxy::with_runtime(
            "chaos-shared",
            RuntimeConfig::new(2, BATCH_SIZE).with_pipe_capacity(CAPACITY),
        );
        let carrier = proxy
            .add_udp_carrier(
                CARRIER,
                UdpCarrierConfig::new().with_capacity(CAPACITY).with_batch_size(BATCH_SIZE),
            )
            .expect("carrier binds");
        // The impairment relay sits between the app sender and the shared
        // carrier socket: everything inbound funnels through one faulty hop.
        let relay = ImpairedUdp::spawn(carrier.ingress_addr(), ImpairmentPlan::clean(23)).unwrap();
        let stats = relay.stats();

        // App side: one shared socket of its own, one route per stream.
        let app =
            SharedUdpIngress::bind("127.0.0.1:0", &UdpConfig::default().with_capacity(CAPACITY))
                .unwrap();
        let routes: Vec<_> = (1..=STREAMS)
            .map(|stream| app.open_stream(StreamId::new(stream)).unwrap())
            .collect();
        let handles: Vec<_> = (1..=STREAMS)
            .map(|stream| {
                proxy
                    .add_stream_udp_shared(
                        format!("stream-{stream}"),
                        SharedUdpStreamConfig::on_carrier(CARRIER, app.local_addr())
                            .with_stream(StreamId::new(stream))
                            .with_capacity(CAPACITY)
                            .with_batch_size(BATCH_SIZE),
                    )
                    .expect("shared stream placement")
            })
            .collect();
        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();

        // Interleave the streams round-robin so each carrier drain batch
        // demuxes neighbouring frames, and collect deliveries per stream
        // with a deadline-bounded non-blocking barrier after each phase.
        let mut received: Vec<Vec<u64>> = vec![Vec::new(); STREAMS as usize];
        let drain_until_each = |received: &mut Vec<Vec<u64>>, target: usize| {
            let deadline = Instant::now() + WATCHDOG / 2;
            loop {
                while app.drain_batch() == SharedDrain::MoreReady {}
                for (index, route) in routes.iter().enumerate() {
                    while let Ok(packet) = route.try_recv() {
                        assert_eq!(
                            packet.stream().value() as usize,
                            index + 1,
                            "frame routed to the wrong stream"
                        );
                        received[index].push(packet.seq().value());
                    }
                }
                if received.iter().all(|seqs| seqs.len() >= target) {
                    break;
                }
                assert!(Instant::now() < deadline, "shared blackout drain made no progress");
                std::thread::yield_now();
            }
        };
        let send_window = |range: std::ops::Range<u64>| {
            for seq in range {
                for stream in 1..=STREAMS {
                    send_encoded(
                        &tx,
                        relay.local_addr(),
                        &Packet::new(
                            StreamId::new(stream),
                            SeqNo::new(seq),
                            PacketKind::AudioData,
                            vec![stream as u8; 32],
                        ),
                    );
                }
            }
        };

        send_window(0..BEFORE);
        await_relay_accounted(&stats, STREAMS as u64 * BEFORE);
        drain_until_each(&mut received, BEFORE as usize);

        // The blackout: a total outage swapped in while all four streams
        // run, swapped back out after the window.
        relay.set_plan(ImpairmentPlan::new(23, vec![(0, ImpairmentPhase::drop_rate(1.0))]));
        send_window(BEFORE..BEFORE + DURING);
        await_relay_accounted(&stats, STREAMS as u64 * (BEFORE + DURING));
        assert_eq!(
            stats.dropped(),
            STREAMS as u64 * DURING,
            "the blackout must count every loss"
        );
        relay.set_plan(ImpairmentPlan::clean(23));
        send_window(BEFORE + DURING..BEFORE + DURING + AFTER);
        await_relay_accounted(&stats, STREAMS as u64 * (BEFORE + DURING + AFTER));
        drain_until_each(&mut received, (BEFORE + AFTER) as usize);

        // FIN isolation under the same faulty hop: ending stream 1 must
        // leave its three socket-mates open.
        handles[0].close_input();
        let deadline = Instant::now() + WATCHDOG / 2;
        loop {
            while app.drain_batch() == SharedDrain::MoreReady {}
            match routes[0].try_recv() {
                Err(TryRecvError::Eof | TryRecvError::Closed) => break,
                Err(TryRecvError::Empty) => {
                    assert!(Instant::now() < deadline, "stream 1 never reached EOF");
                    std::thread::yield_now();
                }
                Ok(packet) => panic!("stream 1 delivered {packet:?} after its drain"),
            }
        }
        for route in &routes[1..] {
            assert_eq!(
                route.try_recv().unwrap_err(),
                TryRecvError::Empty,
                "a socket-mate's FIN must not end a live stream"
            );
        }
        for handle in &handles[1..] {
            handle.close_input();
        }
        for route in &routes[1..] {
            loop {
                while app.drain_batch() == SharedDrain::MoreReady {}
                match route.try_recv() {
                    Err(TryRecvError::Eof | TryRecvError::Closed) => break,
                    Err(TryRecvError::Empty) => {
                        assert!(Instant::now() < deadline, "a stream never reached EOF");
                        std::thread::yield_now();
                    }
                    Ok(packet) => panic!("late delivery after the drain: {packet:?}"),
                }
            }
        }

        // Per-stream conservation from independent tallies, and exact
        // survivor order: the blackout window cut out, nothing reordered.
        let expected: Vec<u64> =
            (0..BEFORE).chain(BEFORE + DURING..BEFORE + DURING + AFTER).collect();
        for (index, seqs) in received.iter().enumerate() {
            let context = format!("shared blackout stream {}", index + 1);
            assert_eq!(seqs, &expected, "{context}: survivor order");
            assert_conservation(
                &context,
                BEFORE + DURING + AFTER,
                seqs.len() as u64,
                DURING,
                0,
            );
        }

        // The carrier was blameless: it demuxed every forwarded datagram to
        // a registered stream and dropped nothing itself.
        let status = proxy.status();
        let shared: Vec<_> = status.transports.iter().filter(|t| t.shared).collect();
        assert_eq!(shared.len(), 1, "one carrier serves all four streams");
        assert_eq!(
            shared[0].ingress.rx_packets,
            STREAMS as u64 * (BEFORE + AFTER),
            "every forwarded datagram was demuxed"
        );
        assert_eq!(shared[0].unknown_streams, 0);
        assert_eq!(shared[0].ingress.dropped, 0);
        assert_eq!(shared[0].egress.dropped, 0);
        assert_eq!(app.unknown_streams(), 0, "no frame escaped its route app-side");
        proxy.shutdown().expect("clean proxy shutdown");
    });
}

// ---------------------------------------------------------------------------
// Reordered and duplicated control markers.
// ---------------------------------------------------------------------------

/// A non-FIN control marker (the quiescence-marker shape the engine uses).
fn marker(id: u64) -> Packet {
    Packet::new(StreamId::new(u32::MAX), SeqNo::new(id), PacketKind::Control, Vec::new())
}

#[test]
fn reordered_and_duplicated_markers_conserve_every_data_frame() {
    watchdog("chaos-marker-storm", WATCHDOG, || {
        const TOTAL: u64 = 120;
        const MARKER_EVERY: u64 = 30;
        let ingress = UdpIngress::bind("127.0.0.1:0", &UdpConfig::default()).unwrap();
        // The relay holds every 5th data frame back 3 frames — a
        // deterministic reordering — while control frames pass immediately
        // (flushing any held frames first, so no data crosses a marker).
        let relay = ImpairedUdp::spawn(
            ingress.local_addr(),
            ImpairmentPlan::new(11, vec![(0, ImpairmentPhase::delay(5, 3))]),
        )
        .unwrap();
        let stats = relay.stats();
        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();

        let mut markers_sent = 0u64;
        for seq in 0..TOTAL {
            // Duplicated markers, and reordered relative to the stream: the
            // marker for a window is sent *before* that window's last data
            // frame, then again after it.
            if seq % MARKER_EVERY == MARKER_EVERY - 1 {
                send_encoded(&tx, relay.local_addr(), &marker(seq / MARKER_EVERY));
                markers_sent += 1;
            }
            send_encoded(&tx, relay.local_addr(), &audio_packet(seq, 64));
            if seq % MARKER_EVERY == MARKER_EVERY - 1 {
                send_encoded(&tx, relay.local_addr(), &marker(seq / MARKER_EVERY));
                markers_sent += 1;
            }
        }
        await_relay_accounted(&stats, TOTAL);
        // A duplicated FIN: the first ends the stream, the second must be
        // absorbed without wedging or reopening anything.
        send_encoded(&tx, relay.local_addr(), &fin_packet());
        send_encoded(&tx, relay.local_addr(), &fin_packet());

        let mut data = Vec::new();
        let mut markers_received = 0u64;
        loop {
            match ingress.recv_timeout(Duration::from_millis(50)) {
                Ok(packet) if packet.kind() == PacketKind::Control => markers_received += 1,
                Ok(packet) => data.push(packet),
                Err(rapidware::streams::TryRecvError::Empty) => continue,
                Err(_) => break,
            }
        }
        // received ⇒ counted: every data frame exactly once (the delays
        // reorder, never drop), every marker copy delivered, none invented.
        let mut seqs: Vec<u64> = data.iter().map(|p| p.seq().value()).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..TOTAL).collect::<Vec<_>>(), "each data frame exactly once");
        assert_eq!(markers_received, markers_sent, "every duplicated marker copy is delivered");
        assert!(stats.delayed() > 0, "the reordering schedule never actually held a frame");
        assert_conservation("marker relay", TOTAL, stats.forwarded(), stats.dropped(), 0);
        assert_eq!(stats.dropped(), 0);
        // The duplicate FIN arrived after the pipe closed; nothing to do,
        // nothing wedged — the drain loop above already returned on EOF.
    });
}

// ---------------------------------------------------------------------------
// Key rotation under chaos.
// ---------------------------------------------------------------------------

const SECURE_KEY: u64 = 0x5EED;

/// Seals `packet` through the sender's half of the channel, returning the
/// emitted frames (a sealed data frame, or a forwarded rekey control frame).
fn seal_through(encrypt: &mut EncryptFilter, packet: Packet) -> Vec<Packet> {
    let mut out: Vec<Packet> = Vec::new();
    encrypt.process(packet, &mut out).expect("the seal never fails");
    out
}

#[test]
fn a_duplicated_reordered_rekey_on_a_pooled_session_conserves() {
    // Key rotation rides the same control-frame path the marker storm
    // abuses, so it gets the same chaos: the rekey arrives REORDERED
    // (three frames before its boundary) and DUPLICATED (a second copy
    // five frames after).  Mixed in: two sealed frames tampered in flight
    // and one frame replayed under the superseded epoch.  Per-stream
    // conservation must close from independent tallies —
    // `sent == delivered + lost + rejected` — with the tampered and
    // replayed frames counted as rejects, never delivered, and every
    // delivered payload bit-exact plaintext.
    watchdog("chaos-rekey-pooled", WATCHDOG, || {
        const TOTAL: u64 = 160;
        const BOUNDARY: u64 = 80;
        const TAMPERED: [u64; 2] = [20, 100];
        let runtime = Runtime::start(RuntimeConfig::new(2, BATCH_SIZE).with_pipe_capacity(512));
        let session = runtime.add_session("secure");
        let rx = session.add_lane("plaintext").expect("fresh session");
        session
            .insert_lane_filter(
                "plaintext",
                0,
                &FilterSpec::new("decrypt").with_param("key", SECURE_KEY.to_string()),
            )
            .expect("decrypt is registered");

        // The sender's half of the channel, plus a stale sender that never
        // hears about the rotation (the replay source).
        let mut encrypt = EncryptFilter::new(SECURE_KEY);
        let mut stale = EncryptFilter::new(SECURE_KEY);

        let mut wire: Vec<Packet> = Vec::new();
        let mut sent_data = 0u64;
        for seq in 0..TOTAL {
            if seq == BOUNDARY - 3 || seq == BOUNDARY + 5 {
                wire.extend(seal_through(
                    &mut encrypt,
                    rekey_packet(StreamId::new(1), 1, BOUNDARY, seq * 20_000),
                ));
            }
            let mut frames = seal_through(&mut encrypt, audio_packet(seq, 64));
            if TAMPERED.contains(&seq) {
                for frame in &mut frames {
                    frame.payload_edit(|buf| buf[0] ^= 0x01);
                }
            }
            sent_data += frames.len() as u64;
            wire.append(&mut frames);
        }
        let replay = seal_through(&mut stale, audio_packet(BOUNDARY + 2, 64));
        sent_data += replay.len() as u64;
        wire.extend(replay);
        assert_eq!(sent_data, TOTAL + 1);
        assert_eq!(encrypt.stats().sealed(), TOTAL);
        assert_eq!(encrypt.stats().rekeys(), 1, "the duplicate install is idempotent");

        let mut backlog = wire;
        while !backlog.is_empty() {
            backlog = session.input().try_send_batch(backlog).expect("input stays open");
            std::thread::yield_now();
        }
        session.close_input();
        let delivered = drain_to_eof(&rx, Instant::now() + WATCHDOG / 2);

        // Exactly the untampered frames arrive, in order, as plaintext;
        // the rekey copies were consumed, never forwarded.
        let expected: Vec<u64> = (0..TOTAL).filter(|seq| !TAMPERED.contains(seq)).collect();
        let seqs: Vec<u64> = delivered.iter().map(|p| p.seq().value()).collect();
        assert_eq!(seqs, expected, "survivors in order with the rejects cut out");
        for packet in &delivered {
            assert_eq!(packet.kind(), PacketKind::AudioData, "no control frame leaked");
            assert_eq!(
                packet.payload(),
                &vec![(packet.seq().value() % 251) as u8; 64][..],
                "a corrupt payload reached the sink"
            );
        }

        // Conservation from independent tallies: the sender's count, the
        // sink's count, and the decryptor's reject counter.
        let secure = session.status().secure;
        assert_conservation(
            "pooled rekey",
            sent_data,
            delivered.len() as u64,
            0,
            secure.rejected,
        );
        assert_eq!(secure.rejected, 3, "two tampered frames and one stale replay");
        assert_eq!(secure.opened, delivered.len() as u64);
        assert_eq!(secure.rekeys, 1, "the duplicate rekey installs nothing new");

        session.shutdown().expect("clean session shutdown");
        assert_eq!(runtime.live_tasks(), 0, "rekey chaos leaked shard tasks");
        runtime.shutdown().expect("worker pool joins cleanly");
    });
}

#[test]
fn a_blackout_straddling_a_rekey_on_a_shared_carrier_conserves_per_stream() {
    // The rotation under real loss: two streams share one carrier socket,
    // their decrypt stages sit proxy-side, and a total blackout window
    // straddles the rekey boundary — every data frame of the rotation
    // window is lost while the rekey control frames (which always pass the
    // relay, like FINs) ride through, once during the outage and once
    // duplicated after it.  Per-stream conservation must close from
    // independent tallies (`sent == delivered + lost + rejected`), the
    // carrier must demux every sealed survivor to its own stream, and only
    // bit-exact plaintext may reach the app-side routes.
    watchdog("chaos-rekey-shared-blackout", WATCHDOG, || {
        const STREAMS: u32 = 2;
        const BEFORE: u64 = 40;
        const DURING: u64 = 20;
        const AFTER: u64 = 40;
        const TOTAL: u64 = BEFORE + DURING + AFTER;
        const TAMPER_AT: u64 = BEFORE + DURING + 10;
        const CAPACITY: usize = 256;
        const CARRIER: &str = "carrier";

        let mut proxy = Proxy::with_runtime(
            "chaos-rekey-shared",
            RuntimeConfig::new(2, BATCH_SIZE).with_pipe_capacity(CAPACITY),
        );
        let carrier = proxy
            .add_udp_carrier(
                CARRIER,
                UdpCarrierConfig::new().with_capacity(CAPACITY).with_batch_size(BATCH_SIZE),
            )
            .expect("carrier binds");
        let relay = ImpairedUdp::spawn(carrier.ingress_addr(), ImpairmentPlan::clean(31)).unwrap();
        let stats = relay.stats();

        let app =
            SharedUdpIngress::bind("127.0.0.1:0", &UdpConfig::default().with_capacity(CAPACITY))
                .unwrap();
        let routes: Vec<_> = (1..=STREAMS)
            .map(|stream| app.open_stream(StreamId::new(stream)).unwrap())
            .collect();
        let handles: Vec<_> = (1..=STREAMS)
            .map(|stream| {
                proxy
                    .add_stream_udp_shared(
                        format!("stream-{stream}"),
                        SharedUdpStreamConfig::on_carrier(CARRIER, app.local_addr())
                            .with_stream(StreamId::new(stream))
                            .with_capacity(CAPACITY)
                            .with_batch_size(BATCH_SIZE),
                    )
                    .expect("shared stream placement")
            })
            .collect();
        for stream in 1..=STREAMS {
            proxy
                .insert_filter(
                    &format!("stream-{stream}"),
                    0,
                    &FilterSpec::new("decrypt").with_param("key", SECURE_KEY.to_string()),
                )
                .expect("decrypt splices into a shared placement");
        }

        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
        let mut encrypts: Vec<EncryptFilter> =
            (0..STREAMS).map(|_| EncryptFilter::new(SECURE_KEY)).collect();
        let plaintext =
            |stream: u32, seq: u64| vec![((u64::from(stream) * 7 + seq) % 251) as u8; 32];

        let send_window = |range: std::ops::Range<u64>, encrypts: &mut Vec<EncryptFilter>| {
            for seq in range {
                for stream in 1..=STREAMS {
                    let packet = Packet::new(
                        StreamId::new(stream),
                        SeqNo::new(seq),
                        PacketKind::AudioData,
                        plaintext(stream, seq),
                    );
                    for mut frame in seal_through(&mut encrypts[(stream - 1) as usize], packet) {
                        if seq == TAMPER_AT {
                            frame.payload_edit(|buf| buf[0] ^= 0x80);
                        }
                        send_encoded(&tx, relay.local_addr(), &frame);
                    }
                }
            }
        };
        let send_rekeys = |encrypts: &mut Vec<EncryptFilter>, tx: &UdpSocket| {
            for stream in 1..=STREAMS {
                for frame in seal_through(
                    &mut encrypts[(stream - 1) as usize],
                    rekey_packet(StreamId::new(stream), 1, BEFORE, BEFORE * 20_000),
                ) {
                    send_encoded(tx, relay.local_addr(), &frame);
                }
            }
        };

        let mut received: Vec<Vec<Packet>> = vec![Vec::new(); STREAMS as usize];
        let drain_until_each = |received: &mut Vec<Vec<Packet>>, target: usize| {
            let deadline = Instant::now() + WATCHDOG / 2;
            loop {
                while app.drain_batch() == SharedDrain::MoreReady {}
                for (index, route) in routes.iter().enumerate() {
                    while let Ok(packet) = route.try_recv() {
                        assert_eq!(
                            packet.stream().value() as usize,
                            index + 1,
                            "frame routed to the wrong stream"
                        );
                        received[index].push(packet);
                    }
                }
                if received.iter().all(|packets| packets.len() >= target) {
                    break;
                }
                assert!(Instant::now() < deadline, "rekey blackout drain made no progress");
                std::thread::yield_now();
            }
        };

        // Clean run-up under the initial epoch.
        send_window(0..BEFORE, &mut encrypts);
        await_relay_accounted(&stats, u64::from(STREAMS) * BEFORE);
        drain_until_each(&mut received, BEFORE as usize);

        // The blackout straddles the rotation: the rekey and every data
        // frame of the rotation window ride through the outage — the
        // control frames pass, the data is counted dropped.
        relay.set_plan(ImpairmentPlan::new(31, vec![(0, ImpairmentPhase::drop_rate(1.0))]));
        send_rekeys(&mut encrypts, &tx);
        send_window(BEFORE..BEFORE + DURING, &mut encrypts);
        await_relay_accounted(&stats, u64::from(STREAMS) * (BEFORE + DURING));
        assert_eq!(
            stats.dropped(),
            u64::from(STREAMS) * DURING,
            "the blackout must count every sealed loss"
        );
        relay.set_plan(ImpairmentPlan::clean(31));

        // The duplicated rekey after the outage is consumed idempotently;
        // traffic resumes under the new epoch, with one tampered frame per
        // stream on the way.
        send_rekeys(&mut encrypts, &tx);
        send_window(BEFORE + DURING..TOTAL, &mut encrypts);
        await_relay_accounted(&stats, u64::from(STREAMS) * TOTAL);
        drain_until_each(&mut received, (BEFORE + AFTER - 1) as usize);
        assert_eq!(stats.control(), u64::from(STREAMS) * 2, "both rekey copies passed per stream");

        // Clean FINs for every stream.
        let deadline = Instant::now() + WATCHDOG / 2;
        for handle in &handles {
            handle.close_input();
        }
        for route in &routes {
            loop {
                while app.drain_batch() == SharedDrain::MoreReady {}
                match route.try_recv() {
                    Err(TryRecvError::Eof | TryRecvError::Closed) => break,
                    Err(TryRecvError::Empty) => {
                        assert!(Instant::now() < deadline, "a stream never reached EOF");
                        std::thread::yield_now();
                    }
                    Ok(packet) => panic!("late delivery after the drain: {packet:?}"),
                }
            }
        }

        // Per-stream conservation from independent tallies: the send loop's
        // count, the relay's drop counter, the decryptor's reject counter,
        // and the app-side delivery tally.
        let status = proxy.status();
        let expected: Vec<u64> = (0..BEFORE)
            .chain(BEFORE + DURING..TOTAL)
            .filter(|&seq| seq != TAMPER_AT)
            .collect();
        for (index, packets) in received.iter().enumerate() {
            let stream = index as u32 + 1;
            let context = format!("rekey blackout stream {stream}");
            let seqs: Vec<u64> = packets.iter().map(|p| p.seq().value()).collect();
            assert_eq!(seqs, expected, "{context}: survivor order");
            for packet in packets {
                assert_eq!(
                    packet.payload(),
                    &plaintext(stream, packet.seq().value())[..],
                    "{context}: a corrupt payload reached the sink"
                );
            }
            let stream_status = status
                .streams
                .iter()
                .find(|s| s.name == format!("stream-{stream}"))
                .expect("stream status present");
            assert_eq!(stream_status.secure.rejected, 1, "{context}: the tampered frame");
            assert_eq!(stream_status.secure.rekeys, 1, "{context}: one rotation installed");
            assert_eq!(stream_status.secure.opened, packets.len() as u64);
            assert_conservation(
                &context,
                TOTAL,
                packets.len() as u64,
                DURING,
                stream_status.secure.rejected,
            );
        }

        // The proxy-wide rollup agrees, and the carrier was blameless:
        // every forwarded datagram (sealed data and rekeys) was demuxed to
        // a registered stream, nothing dropped carrier-side.
        assert_eq!(status.secure.rejected, u64::from(STREAMS));
        assert_eq!(status.secure.rekeys, u64::from(STREAMS));
        let shared: Vec<_> = status.transports.iter().filter(|t| t.shared).collect();
        assert_eq!(shared.len(), 1, "one carrier serves both streams");
        assert_eq!(
            shared[0].ingress.rx_packets,
            u64::from(STREAMS) * (BEFORE + AFTER + 2),
            "every forwarded datagram was demuxed"
        );
        assert_eq!(shared[0].unknown_streams, 0);
        assert_eq!(shared[0].ingress.dropped, 0);
        assert_eq!(shared[0].egress.dropped, 0);
        assert_eq!(app.unknown_streams(), 0, "no frame escaped its route app-side");
        proxy.shutdown().expect("clean proxy shutdown");
    });
}
