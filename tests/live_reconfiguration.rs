//! Cross-crate integration test: live chain reconfiguration under load.
//!
//! Exercises the property at the core of the paper — filters can be
//! inserted, removed, and reordered on a running stream without losing,
//! duplicating, or reordering application data — on the threaded proxy
//! runtime, via the control protocol, and under repeated churn.

use rapidware::prelude::*;

fn audio_packet(seq: u64) -> Packet {
    Packet::new(
        StreamId::new(1),
        SeqNo::new(seq),
        PacketKind::AudioData,
        vec![(seq % 251) as u8; 120],
    )
}

#[test]
fn repeated_splice_churn_preserves_the_stream() {
    let chain = ThreadedChain::with_capacity(32).expect("chain");
    let input = chain.input();
    let output = chain.output();
    let total: u64 = 6_000;

    let producer = std::thread::spawn(move || {
        for seq in 0..total {
            input.send(audio_packet(seq)).unwrap();
        }
    });
    let consumer = std::thread::spawn(move || {
        let mut seqs = Vec::new();
        while let Ok(packet) = output.recv() {
            if packet.kind().is_payload() {
                seqs.push(packet.seq().value());
            }
        }
        seqs
    });

    // Churn: repeatedly add and remove filters while the stream runs.
    let registry = FilterRegistry::with_builtins();
    for round in 0..20 {
        let kind = match round % 4 {
            0 => "null",
            1 => "tap",
            2 => "scrambler",
            _ => "descrambler",
        };
        let spec = FilterSpec::new(kind).with_param("key", "9").with_param("name", "churn");
        chain
            .insert(chain.len().min(round % 2), registry.instantiate(&spec).unwrap())
            .unwrap();
        if chain.len() > 2 {
            chain.remove(chain.len() - 1).unwrap();
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    // Remove whatever is left so the payload reaches the output unscrambled
    // (scrambler/descrambler pairs may have been split by the churn).
    while !chain.is_empty() {
        chain.remove(0).unwrap();
    }

    producer.join().unwrap();
    chain.close_input();
    let seqs = consumer.join().unwrap();
    assert_eq!(seqs.len() as u64, total, "no loss or duplication under churn");
    for (index, seq) in seqs.iter().enumerate() {
        assert_eq!(*seq, index as u64, "order preserved under churn");
    }
    assert!(chain.stats().splices >= 20);
    chain.shutdown().unwrap();
}

#[test]
fn control_protocol_drives_a_live_proxy() {
    let mut proxy = Proxy::new("controlled");
    let (input, output) = proxy.add_stream("audio").unwrap();
    let mut manager = ControlManager::new(proxy);

    let consumer = std::thread::spawn(move || {
        let mut packets = Vec::new();
        while let Ok(packet) = output.recv() {
            packets.push(packet);
        }
        packets
    });

    // Configure the chain entirely over the text protocol.
    assert_eq!(
        manager.execute_line("insert stream=audio pos=0 kind=fec-encoder n=6 k=4"),
        "ok"
    );
    assert_eq!(
        manager.execute_line("insert stream=audio pos=1 kind=compressor"),
        "ok"
    );
    let status = manager.execute_line("query");
    assert!(status.contains("fec-encoder(6,4)"));
    assert!(status.contains("compressor"));

    // Traffic flows through the remotely-configured chain.
    let mut source = AudioSource::pcm_default(StreamId::new(1));
    for _ in 0..100 {
        input.send(source.next_packet()).unwrap();
    }

    // Reconfigure mid-stream: drop the compressor, keep FEC.
    assert_eq!(manager.execute_line("remove stream=audio pos=1"), "ok");
    for _ in 0..100 {
        input.send(source.next_packet()).unwrap();
    }

    input.close();
    let delivered = consumer.join().unwrap();
    let payload = delivered.iter().filter(|p| p.kind().is_payload()).count();
    let parity = delivered.iter().filter(|p| p.kind().is_parity()).count();
    assert_eq!(payload, 200);
    assert_eq!(parity, 100, "FEC(6,4) adds one parity per two sources");
    manager.proxy_mut().shutdown().unwrap();
}

#[test]
fn scrambler_pair_survives_being_spliced_in_and_out() {
    // Insert a scrambler/descrambler pair into a live stream, then remove
    // both; every payload byte must survive untouched end to end.
    let chain = ThreadedChain::new().expect("chain");
    let input = chain.input();
    let output = chain.output();
    let total = 300u64;

    let consumer = std::thread::spawn(move || {
        let mut packets = Vec::new();
        while let Ok(packet) = output.recv() {
            packets.push(packet);
        }
        packets
    });

    for seq in 0..100u64 {
        input.send(audio_packet(seq)).unwrap();
    }
    chain
        .insert(0, Box::new(rapidware::filters::ScramblerFilter::new(1234)))
        .unwrap();
    chain
        .insert(1, Box::new(rapidware::filters::DescramblerFilter::new(1234)))
        .unwrap();
    for seq in 100..200u64 {
        input.send(audio_packet(seq)).unwrap();
    }
    // Remove the upstream (scrambler) half first: its removal drains every
    // in-flight packet through the downstream descrambler before the pair is
    // split, so nothing can emerge scrambled.
    chain.remove(0).unwrap();
    chain.remove(0).unwrap();
    for seq in 200..total {
        input.send(audio_packet(seq)).unwrap();
    }
    chain.close_input();

    let delivered = consumer.join().unwrap();
    assert_eq!(delivered.len() as u64, total);
    for (index, packet) in delivered.iter().enumerate() {
        assert_eq!(packet.seq().value(), index as u64);
        assert_eq!(
            packet.payload(),
            audio_packet(index as u64).payload(),
            "payload intact end to end (seq {index})"
        );
    }
    chain.shutdown().unwrap();
}
