//! Transport integration: the proxy's UDP-backed streams and sessions,
//! end to end over real loopback sockets.
//!
//! * a flat chain (FEC encode → decode spliced live) round-trips every
//!   packet over socket → chain → socket;
//! * a 4-lane fanout session hosted on the **pooled runtime** delivers the
//!   full stream to every lane's socket;
//! * a seeded [`ImpairedUdp`] drop regime is fully repaired by FEC — the
//!   paper's claim, demonstrated on the wire instead of the simulator;
//! * a 50-session soak drives the transport at fleet scale on a fixed
//!   worker pool.
//!
//! Determinism rules: impairment is seeded (`ImpairmentPlan`), every
//! blocking wait is deadline-bounded (watchdog asserts, not sleeps), and
//! the stream content is drained before `close_input` — UDP has no
//! end-to-end back-pressure, so closing the chain while datagrams are
//! still in flight would discard them by design, exactly as a real socket
//! would.

mod common;

use std::net::UdpSocket;
use std::time::Instant;

use rapidware::filters::{FecDecoderFilter, Filter};
use rapidware::packet::Packet;
use rapidware::proxy::{FilterSpec, Proxy, RuntimeConfig, UdpSessionConfig, UdpStreamConfig};
use rapidware::transport::{ImpairedUdp, ImpairmentPlan, UdpConfig, UdpIngress};

use common::{audio_packet, drain_count, drain_to_eof, send_encoded, WATCHDOG};

fn packet(seq: u64) -> Packet {
    audio_packet(seq, 96)
}

#[test]
fn a_flat_fec_chain_round_trips_over_loopback_udp() {
    let deadline = Instant::now() + WATCHDOG;
    let app_rx = UdpIngress::bind("127.0.0.1:0", &UdpConfig::default()).unwrap();
    let mut proxy = Proxy::new("edge");
    let handle = proxy
        .add_stream_udp("audio", UdpStreamConfig::to_peer(app_rx.local_addr()))
        .unwrap();
    // Live splices through the ordinary control surface, on a stream whose
    // endpoints are sockets.
    proxy.insert_filter("audio", 0, &FilterSpec::new("fec-encoder")).unwrap();
    proxy.insert_filter("audio", 1, &FilterSpec::new("fec-decoder")).unwrap();

    let app_tx = UdpSocket::bind("127.0.0.1:0").unwrap();
    const TOTAL: u64 = 400;
    let consumer = {
        let rx = app_rx.receiver();
        std::thread::spawn(move || drain_count(&rx, TOTAL as usize, deadline))
    };
    // Window-paced against the ingress counters: UDP has no end-to-end
    // back-pressure, so an unpaced blast would overflow the kernel's
    // socket buffer and the OS would drop datagrams before the proxy ever
    // saw them.
    let ingress_stats = handle.ingress_stats();
    for window in 0..(TOTAL / 50) {
        for seq in window * 50..(window + 1) * 50 {
            send_encoded(&app_tx, handle.ingress_addr(), &packet(seq));
        }
        while ingress_stats.rx_datagrams() < (window + 1) * 50 {
            assert!(Instant::now() < deadline, "proxy ingress stalled");
            std::thread::yield_now();
        }
    }
    let received = consumer.join().unwrap();
    let seqs: Vec<u64> = received.iter().map(|p| p.seq().value()).collect();
    assert_eq!(seqs, (0..TOTAL).collect::<Vec<_>>(), "every packet, in order");

    // End the stream: the flush residue (none here) and the FIN arrive.
    handle.close_input();
    assert!(drain_to_eof(&app_rx.receiver(), deadline).is_empty());
    assert_eq!(handle.ingress_stats().rx_packets(), TOTAL);
    assert_eq!(handle.ingress_stats().decode_errors(), 0);
    let status = proxy.status();
    assert_eq!(status.transports.len(), 1);
    assert_eq!(status.transports[0].ingress.rx_packets, TOTAL);
    proxy.shutdown().unwrap();
}

#[test]
fn a_four_lane_fanout_session_on_the_pooled_runtime_serves_every_socket() {
    let deadline = Instant::now() + WATCHDOG;
    let config = UdpConfig::default();
    let lane_sockets: Vec<UdpIngress> = (0..4)
        .map(|_| UdpIngress::bind("127.0.0.1:0", &config).unwrap())
        .collect();
    let mut proxy = Proxy::with_runtime("edge", RuntimeConfig::new(4, 16));
    let mut session_config = UdpSessionConfig::new().pooled();
    for (index, socket) in lane_sockets.iter().enumerate() {
        session_config = session_config.with_lane(format!("lane-{index}"), socket.local_addr());
    }
    let handle = proxy.add_session_udp("fanout", session_config).unwrap();

    let app_tx = UdpSocket::bind("127.0.0.1:0").unwrap();
    const TOTAL: u64 = 200;
    let consumers: Vec<_> = lane_sockets
        .iter()
        .map(|socket| {
            let rx = socket.receiver();
            std::thread::spawn(move || drain_count(&rx, TOTAL as usize, deadline))
        })
        .collect();
    for seq in 0..TOTAL {
        send_encoded(&app_tx, handle.ingress_addr(), &packet(seq));
    }
    for (lane, consumer) in consumers.into_iter().enumerate() {
        let received = consumer.join().unwrap();
        let seqs: Vec<u64> = received.iter().map(|p| p.seq().value()).collect();
        assert_eq!(
            seqs,
            (0..TOTAL).collect::<Vec<_>>(),
            "lane {lane} must see the whole stream, in order"
        );
    }
    handle.close_input();
    for (lane, socket) in lane_sockets.iter().enumerate() {
        assert!(drain_to_eof(&socket.receiver(), deadline).is_empty());
        assert_eq!(
            handle.lane_stats(&format!("lane-{lane}")).unwrap().tx_packets(),
            TOTAL + 1,
            "lane {lane}: {TOTAL} data + 1 FIN"
        );
    }
    proxy.shutdown().unwrap();
}

#[test]
fn a_seeded_impaired_drop_regime_is_fully_repaired_by_fec() {
    // The paper's argument, on the wire: a proxy inserts FEC(6,4) ahead of
    // a lossy hop; the receiver repairs the losses without retransmission.
    // The lossy hop is an `ImpairedUdp` relay dropping every 5th frame —
    // a stride that provably never exceeds the 2 losses a (6,4) block
    // tolerates — so *complete* recovery is a hard assertion, not a
    // statistical hope, and the stride makes the survivor count exact.
    let deadline = Instant::now() + WATCHDOG;
    let app_rx = UdpIngress::bind("127.0.0.1:0", &UdpConfig::default()).unwrap();
    let relay = ImpairedUdp::spawn(app_rx.local_addr(), ImpairmentPlan::drop_every(2001, 5)).unwrap();
    let mut proxy = Proxy::new("edge");
    let handle = proxy
        .add_stream_udp("audio", UdpStreamConfig::to_peer(relay.local_addr()))
        .unwrap();
    proxy
        .insert_filter(
            "audio",
            0,
            &FilterSpec::new("fec-encoder").with_param("n", "6").with_param("k", "4"),
        )
        .unwrap();

    let app_tx = UdpSocket::bind("127.0.0.1:0").unwrap();
    const TOTAL: u64 = 200; // 50 complete (6,4) blocks → 100 parity frames
    const SURVIVORS: usize = 300 - 60; // every 5th of 300 frames dropped
    let consumer = {
        let rx = app_rx.receiver();
        std::thread::spawn(move || drain_count(&rx, SURVIVORS, deadline))
    };
    for seq in 0..TOTAL {
        send_encoded(&app_tx, handle.ingress_addr(), &packet(seq));
    }
    let mut survivors = consumer.join().unwrap();
    handle.close_input();
    survivors.extend(drain_to_eof(&app_rx.receiver(), deadline));

    // Decode at the receiver: every source packet must come back, either
    // delivered or reconstructed from parity.
    let mut decoder = FecDecoderFilter::new(6, 4).unwrap();
    let mut emitted = Vec::new();
    let mut received_data = 0u64;
    for survivor in &survivors {
        if survivor.kind().is_payload() {
            received_data += 1;
        }
        let _ = decoder.process(survivor.clone(), &mut emitted);
    }
    let mut seqs: Vec<u64> = emitted
        .iter()
        .filter(|p| p.kind().is_payload())
        .map(|p| p.seq().value())
        .collect();
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(
        seqs,
        (0..TOTAL).collect::<Vec<_>>(),
        "FEC must repair every dropped frame"
    );
    assert!(received_data < TOTAL, "the relay must actually have dropped data frames");
    assert_eq!(relay.stats().dropped(), 60);
    assert!(handle.egress_stats().tx_packets() >= 300, "parity rode the wire");
    proxy.shutdown().unwrap();
}

#[test]
fn fifty_udp_sessions_soak_the_pooled_runtime() {
    // Fleet-scale smoke: 50 UDP-backed streams multiplexed onto a 4-worker
    // pool (pump threads only, zero chain threads), each carrying its own
    // stream to its own socket, all inside the watchdog.
    const SESSIONS: usize = 50;
    const PER_SESSION: u64 = 40;
    let deadline = Instant::now() + WATCHDOG;
    let config = UdpConfig::default();
    let mut proxy = Proxy::with_runtime("fleet", RuntimeConfig::new(4, 16));
    let mut handles = Vec::with_capacity(SESSIONS);
    let mut consumers = Vec::with_capacity(SESSIONS);
    let mut app_sockets = Vec::with_capacity(SESSIONS);
    for index in 0..SESSIONS {
        let app_rx = UdpIngress::bind("127.0.0.1:0", &config).unwrap();
        let handle = proxy
            .add_stream_udp(
                format!("stream-{index}"),
                UdpStreamConfig::to_peer(app_rx.local_addr()).pooled(),
            )
            .unwrap();
        let rx = app_rx.receiver();
        consumers.push(std::thread::spawn(move || {
            drain_count(&rx, PER_SESSION as usize, deadline)
        }));
        app_sockets.push(app_rx);
        handles.push(handle);
    }
    let app_tx = UdpSocket::bind("127.0.0.1:0").unwrap();
    for seq in 0..PER_SESSION {
        for handle in &handles {
            send_encoded(&app_tx, handle.ingress_addr(), &packet(seq));
        }
    }
    for (index, consumer) in consumers.into_iter().enumerate() {
        let received = consumer.join().unwrap();
        let seqs: Vec<u64> = received.iter().map(|p| p.seq().value()).collect();
        assert_eq!(
            seqs,
            (0..PER_SESSION).collect::<Vec<_>>(),
            "session {index} lost or reordered traffic"
        );
    }
    let status = proxy.status();
    assert_eq!(status.transports.len(), SESSIONS);
    assert!(status.transports.iter().all(|t| t.ingress.rx_packets == PER_SESSION));
    proxy.shutdown().unwrap();
    assert_eq!(
        proxy.status().transports.len(),
        0,
        "shutdown must tear every transport down"
    );
}
