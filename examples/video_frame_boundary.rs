//! Frame-boundary-aligned filter insertion on a video stream.
//!
//! The paper's example for insertion points: "since the FEC filter may be
//! specific to video streams (e.g., placing more redundancy in I frames than
//! in B frames), we need to consider the format of the stream in order to
//! start the FEC filter at a 'frame boundary' in the stream."  This example
//! streams an MPEG-like GoP through a chain, requests a frame-aligned FEC
//! encoder mid-frame, and shows that the insertion is deferred until the
//! next frame boundary.
//!
//! Run with:
//!
//! ```text
//! cargo run --example video_frame_boundary
//! ```

use rapidware::filters::{FecEncoderFilter, FilterChain, RateLimiterFilter};
use rapidware::media::{VideoConfig, VideoSource};
use rapidware::packet::StreamId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut source = VideoSource::new(StreamId::new(9), VideoConfig::conference_quality());
    let mut chain = FilterChain::new();
    // A rate limiter sized for the 2 Mbps wireless hop is installed from the
    // start; it sheds B frames first when the stream bursts.
    chain.push_back(Box::new(RateLimiterFilter::with_bitrate(1_500_000)))?;

    // Send the first frame, one packet at a time.
    let first_frame = source.next_frame();
    println!("frame 0: {} packets ({})", first_frame.len(), first_frame[0].kind());
    let mut forwarded = 0usize;
    let mut iter = first_frame.into_iter();
    // Deliver only half of the frame ...
    for packet in iter.by_ref().take(4) {
        forwarded += chain.process(packet)?.len();
    }

    // ... then ask for a *frame-aligned* FEC encoder.  The chain defers it.
    chain.insert(1, Box::new(FecEncoderFilter::fec_6_4()?.frame_aligned()))?;
    println!(
        "requested frame-aligned FEC insertion: active filters = {:?}, deferred = {}",
        chain.names(),
        chain.pending_insertions()
    );

    // The rest of frame 0 is still *not* FEC-protected (no parity emitted).
    for packet in iter {
        forwarded += chain.process(packet)?.len();
    }
    println!("after finishing frame 0: filters = {:?}", chain.names());

    // Frame 1 starts with a boundary packet: the encoder activates there.
    let mut parity = 0usize;
    for frame_index in 1..=9 {
        for packet in source.next_frame() {
            for out in chain.process(packet)? {
                if out.kind().is_parity() {
                    parity += 1;
                } else {
                    forwarded += 1;
                }
            }
        }
        if frame_index == 1 {
            println!(
                "after the frame-1 boundary: filters = {:?} (FEC now active)",
                chain.names()
            );
        }
    }
    for out in chain.flush()? {
        if out.kind().is_parity() {
            parity += 1;
        } else {
            forwarded += 1;
        }
    }

    println!("\nforwarded {forwarded} video packets, emitted {parity} parity packets");
    for event in chain.take_events() {
        println!("chain event: {event:?}");
    }
    Ok(())
}
