//! One session, heterogeneous receivers: a lossy WLAN lane gains FEC while
//! its wired siblings carry the raw stream untouched.
//!
//! This is the repository's flagship workload.  A fanout `Session` owns one
//! upstream source and a shared head chain; each receiver gets its own
//! *lane* — a private tail chain plus its own adaptation loop.  The head
//! stage's work is done once no matter how many receivers are attached
//! (payloads fan out as `Arc`-backed clones), and per-receiver adaptations
//! land only on the lane that needs them.
//!
//! Run with `cargo run --release -p rapidware --example fanout_session`.

use rapidware::engine::{FanoutEngine, FanoutSpec};
use rapidware::packet::{Packet, PacketKind, SeqNo, StreamId};
use rapidware::proxy::Session;

fn main() {
    // Part 1 — the mechanics, on a live threaded session: zero-copy fanout
    // and per-lane filters.
    let session = Session::new("demo").expect("sessions are constructible");
    let wired = session.add_lane("wired").expect("unique lane names");
    let wlan = session.add_lane("wlan").expect("unique lane names");
    let input = session.input();
    input
        .send(Packet::new(StreamId::new(1), SeqNo::new(0), PacketKind::AudioData, vec![7u8; 64]))
        .expect("session accepts packets");
    let at_wired = wired.recv().expect("wired lane delivers");
    let at_wlan = wlan.recv().expect("wlan lane delivers");
    println!(
        "zero-copy fanout: both lanes share one payload allocation: {}",
        at_wired.shares_payload_with(&at_wlan)
    );
    session.shutdown().expect("clean shutdown");

    // Part 2 — the closed loop, end to end: one lossy WLAN receiver among
    // three wired peers, each lane running its own observer/responder
    // loop.  Loss rises on the WLAN lane mid-run; FEC appears there — and
    // only there — then disappears after the link recovers.
    let spec = FanoutSpec::wired_plus_lossy_wlan();
    let outcome = FanoutEngine::new(spec.clone()).run_sync();
    println!("\n{}", outcome.report);

    println!("adaptation timeline of the lossy lane:");
    for entry in &outcome.report.lanes[0].timeline {
        println!("  {entry}");
    }

    let problems = outcome.health_problems(&spec);
    assert!(problems.is_empty(), "unhealthy run: {problems:?}");
    assert!(
        outcome.report.lanes[1..].iter().all(|lane| lane.parity_sent == 0),
        "wired lanes must never carry parity"
    );
    println!("\nhealthy: FEC rode only the lossy lane; every non-lost packet was delivered");
}
