//! Telemetry snapshot: turn on the unified telemetry subsystem, stream
//! packets through a pooled FEC chain, and read the whole story back —
//! end-to-end latency percentiles, per-stage timings, runtime profiling,
//! and the legacy stats — from one `Proxy::telemetry()` snapshot and from
//! the control protocol's `telemetry` verb.
//!
//! Run with:
//!
//! ```text
//! cargo run --example telemetry_snapshot
//! ```

use rapidware::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A proxy on the sharded worker-pool runtime.  Telemetry goes on
    //    *before* any streams exist so every layer — chain spans, runtime
    //    poll/queue-wait histograms — is instrumented from the start.
    let mut proxy = Proxy::with_runtime("telemetry-demo", RuntimeConfig::new(2, 16));
    proxy.enable_telemetry();
    let (input, output) = proxy.add_stream_pooled("audio")?;

    // 2. An FEC(6,4) encode → decode round trip on the stream, spliced in
    //    live like any other reconfiguration.
    proxy.insert_filter(
        "audio",
        0,
        &FilterSpec::new("fec-encoder").with_param("n", "6").with_param("k", "4"),
    )?;
    proxy.insert_filter(
        "audio",
        1,
        &FilterSpec::new("fec-decoder").with_param("n", "6").with_param("k", "4"),
    )?;

    // 3. Two seconds of audio through the instrumented chain.
    let mut source = AudioSource::pcm_default(StreamId::new(1));
    for _ in 0..100 {
        input.send(source.next_packet()).expect("proxy accepts packets");
    }
    input.close();
    let mut delivered = 0usize;
    while output.recv().is_ok() {
        delivered += 1;
    }
    println!("delivered {delivered} packets through the pooled FEC chain\n");

    // 4. One snapshot carries everything: packet-lifecycle histograms with
    //    derivable percentiles, runtime profiling, and the legacy stats
    //    folded in as flat metrics.
    let snapshot = proxy.telemetry().expect("telemetry was enabled");
    let e2e = snapshot
        .histogram("stream.audio.e2e_ns")
        .expect("the stream's end-to-end span");
    println!(
        "stream.audio e2e latency: {} packets, p50={}ns p90={}ns p99={}ns",
        e2e.count(),
        e2e.percentile(0.50),
        e2e.percentile(0.90),
        e2e.percentile(0.99),
    );
    let polls = snapshot.histogram("runtime.poll_ns").expect("runtime profiling");
    println!(
        "runtime task polls:       {} polls, mean {}ns",
        polls.count(),
        polls.mean(),
    );
    println!(
        "legacy stats, same view:  packets_in={} packets_out={} runtime.polls={}",
        snapshot.stat("stream.audio.packets_in").unwrap_or(0),
        snapshot.stat("stream.audio.packets_out").unwrap_or(0),
        snapshot.stat("runtime.polls").unwrap_or(0),
    );

    // 5. The same document is one control verb away, next to `status` and
    //    `query` — this is what a remote dashboard would poll.
    let mut manager = ControlManager::new(proxy);
    println!("\ncontrol> telemetry");
    let response = manager.execute_line("telemetry");
    let json = response.to_string();
    println!("{}…", &json[..json.len().min(200)]);

    manager.proxy_mut().shutdown()?;
    Ok(())
}
