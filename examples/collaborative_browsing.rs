//! A Pavilion-style collaborative browsing session over heterogeneous
//! devices.
//!
//! The leader (a wired workstation) browses; every page she loads is
//! multicast to the group.  The wireless laptop gets the stream through a
//! proxy that adds FEC; the memory-limited palmtop additionally gets a
//! transcoded stream and a proxy-side cache.  Mid-session the floor passes
//! to another participant, exactly as Pavilion's leadership protocol allows.
//!
//! Run with:
//!
//! ```text
//! cargo run --example collaborative_browsing
//! ```

use rapidware::pavilion::{BrowsingWorkload, CollaborativeSession, DeviceProfile, ResourceCache};
use rapidware::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The session and its heterogeneous participants.
    let mut session = CollaborativeSession::new("systems-lecture");
    let alice = session.join("alice (workstation)", DeviceProfile::workstation());
    let bob = session.join("bob (wireless laptop)", DeviceProfile::wireless_laptop());
    let carol = session.join("carol (palmtop)", DeviceProfile::wireless_palmtop());
    println!("session '{}' with {} members", session.name(), session.members().len());
    println!("leader: {:?}", session.leader());
    println!("members needing a proxy: {:?}\n", session.members_needing_proxies());

    // 2. One proxy per constrained member, each configured from the member's
    //    device profile using the composable filter framework.
    let mut proxy = Proxy::new("session-proxy");
    let (laptop_in, laptop_out) = proxy.add_stream("laptop")?;
    let (palmtop_in, palmtop_out) = proxy.add_stream("palmtop")?;
    // Bob's wireless laptop: protect the multicast with FEC.
    proxy.insert_filter("laptop", 0, &FilterSpec::new("fec-encoder"))?;
    // Carol's palmtop: compress and scramble (her link crosses a public AP),
    // plus FEC — all composed dynamically from the same filter library.
    proxy.insert_filter("palmtop", 0, &FilterSpec::new("compressor"))?;
    proxy.insert_filter("palmtop", 1, &FilterSpec::new("scrambler").with_param("key", "77"))?;
    proxy.insert_filter("palmtop", 2, &FilterSpec::new("fec-encoder"))?;
    println!("laptop  proxy chain: {:?}", proxy.filter_names("laptop")?);
    println!("palmtop proxy chain: {:?}\n", proxy.filter_names("palmtop")?);

    let laptop_drain = std::thread::spawn(move || {
        let mut count = 0u64;
        let mut bytes = 0u64;
        while let Ok(packet) = laptop_out.recv() {
            count += 1;
            bytes += packet.payload_len() as u64;
        }
        (count, bytes)
    });
    let palmtop_drain = std::thread::spawn(move || {
        let mut count = 0u64;
        let mut bytes = 0u64;
        while let Ok(packet) = palmtop_out.recv() {
            count += 1;
            bytes += packet.payload_len() as u64;
        }
        (count, bytes)
    });

    // 3. The leader browses; the palmtop's proxy cache absorbs revisits.
    let mut workload = BrowsingWorkload::new(StreamId::new(42), 1_400);
    let mut palmtop_cache = ResourceCache::for_device_memory_kb(2_048);
    let pages = [
        "http://www.cse.msu.edu/rapidware/index.html",
        "http://www.cse.msu.edu/rapidware/figures/proxy.png",
        "http://www.cse.msu.edu/pavilion/lecture1.html",
        "http://www.cse.msu.edu/rapidware/index.html", // revisit: cache hit
        "http://www.cse.msu.edu/pavilion/images/topology.jpg",
    ];
    for (index, url) in pages.iter().enumerate() {
        let timestamp = index as u64 * 5_000_000;
        let (resource, packets) = workload.load_url(url, timestamp);
        let cached = palmtop_cache.lookup(url).is_some();
        if !cached {
            palmtop_cache.insert(url, resource.size);
        }
        println!(
            "leader loads {url} ({} bytes, {}) -> {} packets{}",
            resource.size,
            resource.content_type,
            packets.len(),
            if cached { " [palmtop served from proxy cache]" } else { "" }
        );
        for packet in packets {
            laptop_in.send(packet.clone()).expect("laptop stream accepts packets");
            if !cached {
                palmtop_in.send(packet).expect("palmtop stream accepts packets");
            }
        }
    }

    // 4. Floor control: alice hands the floor to bob.
    session.request_floor(bob)?;
    session.request_floor(carol)?;
    let new_leader = session.release_floor(alice)?;
    println!("\nfloor passed to {:?}; queue now {:?}", new_leader, session.floor_queue());

    // 5. Wrap up and report.
    laptop_in.close();
    palmtop_in.close();
    let (laptop_packets, laptop_bytes) = laptop_drain.join().expect("laptop drain");
    let (palmtop_packets, palmtop_bytes) = palmtop_drain.join().expect("palmtop drain");
    println!("\nlaptop  received {laptop_packets} packets / {laptop_bytes} bytes (incl. parity)");
    println!("palmtop received {palmtop_packets} packets / {palmtop_bytes} bytes (compressed + parity)");
    let cache_stats = palmtop_cache.stats();
    println!(
        "palmtop proxy cache: {} hits, {} misses, {:.0}% hit ratio, {} bytes used",
        cache_stats.hits,
        cache_stats.misses,
        cache_stats.hit_ratio() * 100.0,
        cache_stats.used_bytes
    );
    proxy.shutdown()?;
    Ok(())
}
