//! The paper's motivating scenario (Section 3): a user joins a collaborative
//! session in her office near the access point, then walks to a conference
//! room down the hall.  Packet loss rises sharply over a few tens of meters;
//! a loss-rate observer raplet notices and a responder raplet splices an FEC
//! encoder into the running audio stream, without disturbing the connection
//! to the source.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example adaptive_fec_walk
//! ```

use rapidware::netsim::{LinearWalk, SimTime};
use rapidware::scenario::{FecScenario, ScenarioConfig};

fn main() {
    // Three minutes of audio; the walk starts one minute in and covers
    // 5 m -> 35 m at 1 m/s.
    let config = ScenarioConfig::adaptive_walk()
        .with_packets(9_000)
        .with_walk(LinearWalk::new(5.0, 35.0, SimTime::from_secs(60), 1.0));
    println!("running the adaptive office-to-conference-room walk ...");
    let report = FecScenario::new(config).run();

    println!("\nadaptation log:");
    for record in &report.adaptation_log {
        println!("  {record}");
        for action in &record.actions {
            println!("    -> {action:?}");
        }
    }

    let receiver = &report.receivers[0];
    println!("\nper-window receipt (window = 432 packets):");
    println!("  window-start  received%  reconstructed%");
    for window in receiver.stats.windows() {
        println!(
            "  {:>12}  {:>8.2}  {:>13.2}",
            window.start_seq,
            window.received_pct(),
            window.reconstructed_pct()
        );
    }

    println!("\nsummary:");
    println!("  source packets sent   : {}", report.source_packets_sent);
    println!("  parity packets sent   : {}", report.parity_packets_sent);
    println!("  bandwidth overhead    : {:.1}%", report.overhead() * 100.0);
    println!("  raw receipt           : {:.2}%", receiver.received_pct());
    println!("  after reconstruction  : {:.2}%", receiver.reconstructed_pct());
    println!("  playout gaps          : {}", receiver.playout.gaps);
    println!("  final sender filters  : {:?}", report.final_sender_filters);
}
