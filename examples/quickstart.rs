//! Quickstart: build a proxy, stream packets through it, and reconfigure the
//! filter chain while the stream is running.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rapidware::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A proxy with one stream.  The stream starts as a "null proxy":
    //    packets pass straight from the input endpoint to the output
    //    endpoint.
    let mut proxy = Proxy::new("quickstart-proxy");
    let (input, output) = proxy.add_stream("audio")?;

    // A consumer thread plays the role of the wireless sender end point.
    let consumer = std::thread::spawn(move || {
        let mut delivered = Vec::new();
        while let Ok(packet) = output.recv() {
            delivered.push(packet);
        }
        delivered
    });

    // 2. Push the first second of audio through the unmodified proxy.
    let mut source = AudioSource::pcm_default(StreamId::new(1));
    for _ in 0..50 {
        input.send(source.next_packet()).expect("proxy accepts packets");
    }
    println!("configured filters: {:?}", proxy.filter_names("audio")?);

    // 3. The wireless link is getting lossy: splice an FEC(6,4) encoder into
    //    the *running* stream.  The upstream connection is never disturbed.
    proxy.insert_filter(
        "audio",
        0,
        &FilterSpec::new("fec-encoder").with_param("n", "6").with_param("k", "4"),
    )?;
    // ... and a tap after it so we can watch the redundancy flow.
    proxy.insert_filter("audio", 1, &FilterSpec::new("tap").with_param("name", "downlink-tap"))?;
    println!("after splice:       {:?}", proxy.filter_names("audio")?);

    // 4. Another second of audio, now FEC-protected.
    for _ in 0..50 {
        input.send(source.next_packet()).expect("proxy accepts packets");
    }

    // 5. Manage the proxy the way the paper's ControlManager does — over a
    //    text control protocol.
    let mut manager = ControlManager::new(proxy);
    println!("control> query");
    println!("{}", manager.execute_line("query"));
    println!("control> remove stream=audio pos=1");
    println!("{}", manager.execute_line("remove stream=audio pos=1"));
    println!("{}", manager.execute_line("query"));

    // 6. Shut down cleanly and see what made it through.
    input.close();
    let delivered = consumer.join().expect("consumer thread");
    let sources = delivered.iter().filter(|p| p.kind().is_payload()).count();
    let parities = delivered.iter().filter(|p| p.kind().is_parity()).count();
    println!("delivered {sources} audio packets and {parities} parity packets");
    manager.proxy_mut().shutdown()?;
    Ok(())
}
