//! A composable proxy on real UDP sockets.
//!
//! The smallest end-to-end wire setup: a sender application encodes
//! packets into datagrams and sends them to a proxy whose stream endpoints
//! are UDP sockets; the proxy runs them through a live-reconfigurable
//! filter chain (FEC protection is spliced in mid-stream, exactly as the
//! paper's control thread would) and forwards the output — over a
//! deterministic lossy relay — to a receiver application that repairs the
//! losses with the matching decoder.
//!
//! ```text
//!  sender app ──UDP──▶ proxy [fec-encoder] ──UDP──▶ ImpairedUdp ──UDP──▶ receiver app [fec-decoder]
//! ```
//!
//! Run with `cargo run --example udp_proxy`.

use std::net::UdpSocket;

use rapidware::filters::{FecDecoderFilter, Filter};
use rapidware::packet::{Packet, PacketKind, SeqNo, StreamId};
use rapidware::prelude::*;

fn main() {
    // The receiver application's socket: a transport ingress whose surface
    // is an ordinary detachable receiver.
    let receiver = UdpIngress::bind("127.0.0.1:0", &UdpConfig::default())
        .expect("binding the receiver socket");

    // A deterministic lossy hop in front of it: every 5th frame dropped,
    // seeded so the run is repeatable.
    let relay = ImpairedUdp::spawn(receiver.local_addr(), ImpairmentPlan::drop_every(2001, 5))
        .expect("spawning the impairment relay");

    // The proxy: one UDP-backed stream towards the lossy hop.
    let mut proxy = Proxy::new("edge-proxy");
    let handle = proxy
        .add_stream_udp("audio", UdpStreamConfig::to_peer(relay.local_addr()))
        .expect("binding the proxy's stream endpoints");

    // Protect the stream: splice FEC(6,4) into the live chain.
    proxy
        .insert_filter(
            "audio",
            0,
            &FilterSpec::new("fec-encoder").with_param("n", "6").with_param("k", "4"),
        )
        .expect("the registry knows fec-encoder");

    // The sender application: 80 audio packets, one datagram each.
    let sender = UdpSocket::bind("127.0.0.1:0").expect("binding the sender socket");
    let mut scratch = Vec::new();
    for seq in 0..80u64 {
        let packet =
            Packet::new(StreamId::new(1), SeqNo::new(seq), PacketKind::AudioData, vec![0u8; 160]);
        packet.encode_into(&mut scratch);
        sender.send_to(&scratch, handle.ingress_addr()).expect("loopback send");
    }

    // Receive through the lossy hop and repair with the matching decoder.
    // 80 sources + 40 parity minus every 5th frame = 96 survivors.
    let mut decoder = FecDecoderFilter::new(6, 4).expect("valid FEC parameters");
    let mut delivered = 0u64;
    let mut repaired = Vec::new();
    for _ in 0..96 {
        let survivor = receiver.recv().expect("the stream is still open");
        if survivor.kind().is_payload() {
            delivered += 1;
        }
        decoder.process(survivor, &mut repaired).expect("decoder accepts the stream");
    }
    let recovered = repaired.iter().filter(|p| p.kind().is_payload()).count() as u64;

    println!("sender transmitted : 80 source packets");
    println!("relay dropped      : {}", relay.stats().dropped());
    println!("receiver delivered : {delivered} raw, {recovered} after FEC repair");
    let status = proxy.status();
    println!(
        "proxy endpoint     : rx={} tx={} decode-errors={}",
        status.transports[0].ingress.rx_packets,
        status.transports[0].egress.tx_packets,
        status.transports[0].ingress.decode_errors,
    );
    assert_eq!(recovered, 80, "every source packet must be delivered or repaired");
    handle.close_input();
    proxy.shutdown().expect("clean shutdown");
    println!("all 80 source packets reached the application — the wire lost {}, FEC repaired them",
        80 - delivered);
}
